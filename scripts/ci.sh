#!/usr/bin/env bash
# Local CI gate: the tier-1 checks plus formatting and lints.
#
# Usage: scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> cargo build --release"
cargo build --release

# The parallel runtime promises bit-identical results at any worker count
# (DESIGN.md §3.2): run the suite sequentially and with a 4-worker pool so
# both the oracle path and the fan-out path gate the merge.
echo "==> cargo test (NLI_THREADS=1)"
NLI_THREADS=1 cargo test -q

echo "==> cargo test (NLI_THREADS=4)"
NLI_THREADS=4 cargo test -q

echo "CI gate passed."
