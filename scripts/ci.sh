#!/usr/bin/env bash
# Local CI gate: the tier-1 checks plus formatting, lints, and the
# conformance-fuzz smoke run.
#
# Usage: scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.
#
# Knobs:
#   NLI_THREADS   worker count for the deterministic parallel runtime.
#                 The suite and the fuzz smoke both run at 1 and 4 below,
#                 because the runtime promises bit-identical results at
#                 any worker count (DESIGN.md §3.2) — the fuzz driver's
#                 stdout is compared byte-for-byte across the two.
#   FUZZ_SEED / FUZZ_CASES
#                 fixed seed (default 42) and case count (default 500)
#                 for the fuzz smoke (DESIGN.md §3.4). Any oracle
#                 violation fails the gate; the driver prints a minimized
#                 reproducer plus its replay line.
#   NLI_BENCH=1   opt-in: run the benchmark baseline emitter in smoke mode
#                 (tiny iteration count) and validate the emitted JSON
#                 against the checked-in schema check (crates/bench's
#                 baseline::validate). Refreshing the committed
#                 BENCH_baseline.json uses a bigger --iters; see
#                 EXPERIMENTS.md.
#   NLI_BENCH_SCALED=1
#                 opt-in: run the scaled vectorization ladder on its 10k
#                 rung only (tree-walk vs vectorized, with the built-in
#                 result-conformance gate) and validate the emitted JSON
#                 (crates/bench's scaled::validate). Refreshing the
#                 committed BENCH_scaled.json uses the default rungs and a
#                 bigger --iters; the 1M rung is behind --full.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> cargo build --release"
cargo build --release

# The parallel runtime promises bit-identical results at any worker count
# (DESIGN.md §3.2): run the suite sequentially and with a 4-worker pool so
# both the oracle path and the fan-out path gate the merge.
echo "==> cargo test (NLI_THREADS=1)"
NLI_THREADS=1 cargo test -q

echo "==> cargo test (NLI_THREADS=4)"
NLI_THREADS=4 cargo test -q

# Conformance-fuzz smoke (DESIGN.md §3.4): a fixed-seed batch must be
# violation-free at 1 and 4 workers with byte-identical stdout, and the
# negative --inject-bug pass must prove the oracle still fires.
FUZZ_SEED="${FUZZ_SEED:-42}"
FUZZ_CASES="${FUZZ_CASES:-500}"
FUZZ_BIN=target/release/fuzz

echo "==> fuzz smoke (seed=$FUZZ_SEED cases=$FUZZ_CASES, NLI_THREADS=1)"
NLI_THREADS=1 "$FUZZ_BIN" --seed "$FUZZ_SEED" --cases "$FUZZ_CASES" > /tmp/nli_fuzz_t1.out

echo "==> fuzz smoke (seed=$FUZZ_SEED cases=$FUZZ_CASES, NLI_THREADS=4)"
NLI_THREADS=4 "$FUZZ_BIN" --seed "$FUZZ_SEED" --cases "$FUZZ_CASES" > /tmp/nli_fuzz_t4.out

echo "==> fuzz smoke output is byte-identical across worker counts"
cmp /tmp/nli_fuzz_t1.out /tmp/nli_fuzz_t4.out

echo "==> fuzz negative check (--inject-bug must be caught)"
"$FUZZ_BIN" --seed "$FUZZ_SEED" --cases 100 --inject-bug > /dev/null

# Opt-in perf-baseline smoke: emit with a tiny iteration count, then
# re-read the file through the schema check so emitter and validator
# cannot drift apart.
if [[ "${NLI_BENCH:-0}" == "1" ]]; then
  echo "==> bench baseline smoke (NLI_BENCH=1)"
  target/release/baseline --iters 5 --out /tmp/nli_bench_baseline.json
  target/release/baseline --check /tmp/nli_bench_baseline.json
fi

# Opt-in scaled-ladder smoke: single 10k rung with a tiny iteration count.
# The emitter aborts if the tree-walk and vectorized executors disagree on
# any ladder query, so this doubles as a cheap end-to-end conformance pass.
if [[ "${NLI_BENCH_SCALED:-0}" == "1" ]]; then
  echo "==> bench scaled smoke (NLI_BENCH_SCALED=1)"
  target/release/scaled --rungs 10000 --iters 3 --out /tmp/nli_bench_scaled.json
  target/release/scaled --check /tmp/nli_bench_scaled.json
fi

echo "CI gate passed."
