#!/usr/bin/env bash
# Local CI gate: the tier-1 checks plus formatting and lints.
#
# Usage: scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "CI gate passed."
