//! Offline stand-in for `serde_json`.
//!
//! A small but *real* JSON library: [`Value`] with insertion-ordered
//! objects, a recursive-descent parser ([`from_str`]), and compact/pretty
//! printers ([`to_string`], [`to_string_pretty`]). Unlike real serde_json it
//! has no generic serialization — callers build and inspect [`Value`]s
//! directly, which is how the workspace uses JSON (Vega-Lite documents,
//! benchmark reports). See `third_party/README.md` for why dependencies are
//! vendored.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON document node. Object keys keep insertion order so emitted
/// documents are deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Parse or structure error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

impl Value {
    /// An empty object (use [`Value::set`] / `IndexMut` to fill it).
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Build an object from key/value pairs.
    pub fn obj<K: Into<String>, V: Into<Value>>(pairs: impl IntoIterator<Item = (K, V)>) -> Value {
        Value::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace a member (no-op error on non-objects is silent by
    /// design: mirrors `doc["k"] = v` usage on a known object).
    pub fn set(&mut self, key: &str, value: impl Into<Value>) {
        if let Value::Object(pairs) = self {
            let value = value.into();
            match pairs.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => pairs.push((key.to_string(), value)),
            }
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, level + 1);
                })
            }
            Value::Object(pairs) => {
                write_seq(out, indent, level, '{', '}', pairs.len(), |out, i| {
                    write_escaped(&pairs[i].0, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, level + 1);
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * level));
        }
    }
    out.push(close);
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        f.write_str(&s)
    }
}

/// Compact JSON text.
pub fn to_string(value: &Value) -> Result<String> {
    Ok(value.to_string())
}

/// Two-space-indented JSON text.
pub fn to_string_pretty(value: &Value) -> Result<String> {
    let mut s = String::new();
    value.write(&mut s, Some(2), 0);
    Ok(s)
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    /// Missing members index to `Null`, as in serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl IndexMut<&str> for Value {
    /// Auto-inserts missing members on objects, as in serde_json.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        let Value::Object(pairs) = self else {
            panic!("cannot index-assign into non-object JSON value");
        };
        if let Some(i) = pairs.iter().position(|(k, _)| k == key) {
            return &mut pairs[i].1;
        }
        pairs.push((key.to_string(), Value::Null));
        &mut pairs.last_mut().unwrap().1
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<i32> for Value {
    fn from(n: i32) -> Value {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Array(items)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Parse JSON text into a [`Value`].
pub fn from_str(text: &str) -> Result<Value> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error("truncated \\u escape".into()));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                }
                _ => {
                    // UTF-8 continuation bytes pass through untouched; back
                    // up and copy the whole character.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_print_parse_roundtrip() {
        let doc = Value::obj([
            ("name", Value::from("O'Brien \"quoted\"")),
            ("count", Value::from(3i64)),
            ("ratio", Value::from(0.5)),
            ("flag", Value::from(true)),
            ("nothing", Value::Null),
            (
                "nested",
                Value::obj([("items", Value::Array(vec![1i64.into(), 2i64.into()]))]),
            ),
        ]);
        let text = to_string(&doc).unwrap();
        assert_eq!(from_str(&text).unwrap(), doc);
        let pretty = to_string_pretty(&doc).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), doc);
        assert!(pretty.contains("\n  \"name\""));
    }

    #[test]
    fn indexing_and_comparison() {
        let mut doc = Value::obj([("mark", Value::from("bar"))]);
        doc["title"] = Value::from("Revenue");
        assert_eq!(doc["mark"], "bar");
        assert_eq!(doc["title"].as_str(), Some("Revenue"));
        assert!(doc["missing"].is_null());
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Value::from(3i64).to_string(), "3");
        assert_eq!(Value::from(2.5).to_string(), "2.5");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("tru").is_err());
        assert!(from_str("1 2").is_err());
    }

    #[test]
    fn unicode_strings_survive() {
        let doc = Value::from("caf\u{e9} \u{2014} 中文");
        let text = to_string(&doc).unwrap();
        assert_eq!(from_str(&text).unwrap(), doc);
    }
}
