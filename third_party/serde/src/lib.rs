//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal local substitute (see `third_party/README.md`). `Serialize` and
//! `Deserialize` are blanket-implemented marker traits: every type satisfies
//! them, and the re-exported derives expand to nothing. Actual JSON
//! conversion in this workspace is hand-written against
//! `serde_json::Value`, which needs no trait machinery.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait; satisfied by every type.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}
