//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly, recovering the inner
//! value if a previous holder panicked. Performance is std's, which is fine
//! for this workspace's lock usage (coarse caches and counters); the point
//! is API compatibility without network access (see `third_party/README.md`).

use std::sync::{self, TryLockError};

/// Poison-free mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock() must not observe poisoning");
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
