//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal local substitutes for its external dependencies (see
//! `third_party/README.md`). Serialization in this workspace goes through
//! hand-written JSON conversions (`serde_json::Value`), so the derives only
//! need to *accept* the `#[derive(Serialize, Deserialize)]` / `#[serde(...)]`
//! syntax used across the crates; they expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
