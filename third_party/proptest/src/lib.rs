//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace uses — strategies,
//! combinators, a regex-subset string generator, and the `proptest!` /
//! `prop_assert*` macros — as deterministic generation-only property
//! testing. Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the exact generated inputs
//!   (every argument is `Debug`-printed before the body runs) but is not
//!   minimized.
//! * **Deterministic seeding.** The RNG seed is derived from the test
//!   function's name, so failures reproduce exactly on re-run.
//! * **Regex strategies** (`"[a-z]{1,12}"` as a `Strategy<Value = String>`)
//!   support the subset used here: literal characters, `.`, character
//!   classes with ranges, and `{m}`/`{m,n}` quantifiers.
//!
//! See `third_party/README.md` for why dependencies are vendored.

pub mod test_runner {
    /// Deterministic SplitMix64 stream; seeded per test function.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng(seed ^ 0x9E37_79B9_7F4A_7C15)
        }

        /// Seed from a test name so each property gets its own stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::rc::Rc;

    /// A recipe for generating values. Unlike real proptest there is no
    /// value tree: `generate` draws a fresh value and nothing shrinks.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Regenerate until the predicate holds (gives up loudly after a
        /// bounded number of draws instead of shrinking around rejections).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }

        /// Bounded recursive strategies: each of `depth` levels flips a coin
        /// between a leaf (`self`) and one application of `recurse`.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> SharedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(SharedStrategy<Self::Value>) -> R,
        {
            let leaf = self.shared();
            let mut level = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(level).shared();
                level = Union::new(vec![leaf.clone(), branch]).shared();
            }
            level
        }

        /// Type-erased, cloneable handle (the stub's `BoxedStrategy`).
        fn shared(self) -> SharedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            SharedStrategy {
                gen: Rc::new(move |rng| self.generate(rng)),
            }
        }

        /// Alias matching proptest's `boxed()` spelling.
        fn boxed(self) -> SharedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            self.shared()
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter gave up after 1000 rejections: {}", self.reason);
        }
    }

    /// Cloneable type-erased strategy; what `prop_recursive` closures see.
    pub struct SharedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for SharedStrategy<T> {
        fn clone(&self) -> Self {
            SharedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T: Debug> Strategy for SharedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<SharedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        pub fn new(options: Vec<SharedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )+};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    /// Regex-subset string strategy: literals, `.`, `[a-z09_]` classes,
    /// `{m}` / `{m,n}` quantifiers.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    struct PatternAtom {
        /// `None` means `.` (any printable ASCII character).
        chars: Option<Vec<char>>,
        min: u32,
        max: u32,
    }

    fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
        let mut atoms = Vec::new();
        let mut input = pattern.chars().peekable();
        while let Some(c) = input.next() {
            let chars = match c {
                '.' => None,
                '[' => {
                    let mut set = Vec::new();
                    let mut class = Vec::new();
                    for c in input.by_ref() {
                        if c == ']' {
                            break;
                        }
                        class.push(c);
                    }
                    let mut i = 0;
                    while i < class.len() {
                        if i + 2 < class.len() && class[i + 1] == '-' {
                            let (lo, hi) = (class[i], class[i + 2]);
                            assert!(lo <= hi, "bad class range in /{pattern}/");
                            for c in lo..=hi {
                                set.push(c);
                            }
                            i += 3;
                        } else {
                            set.push(class[i]);
                            i += 1;
                        }
                    }
                    assert!(!set.is_empty(), "empty character class in /{pattern}/");
                    Some(set)
                }
                '\\' => Some(vec![input.next().expect("dangling escape")]),
                c => Some(vec![c]),
            };
            let (min, max) = if input.peek() == Some(&'{') {
                input.next();
                let mut spec = String::new();
                for c in input.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.parse().expect("bad quantifier"),
                        n.parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n: u32 = spec.parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push(PatternAtom { chars, min, max });
        }
        atoms
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(pattern) {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as u32;
            for _ in 0..n {
                let c = match &atom.chars {
                    Some(set) => set[rng.below(set.len() as u64) as usize],
                    None => char::from(0x20 + rng.below(0x5F) as u8),
                };
                out.push(c);
            }
        }
        out
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $i:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Debug + Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for f64 {
        /// Finite values across magnitudes (no NaN/inf: comparisons in
        /// property bodies should stay total).
        fn arbitrary(rng: &mut TestRng) -> f64 {
            let mantissa = (rng.next_u64() as i64 % 1_000_000) as f64 / 1000.0;
            let scale = [0.001, 1.0, 1000.0][rng.below(3) as usize];
            mantissa * scale
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bound for [`vec`](fn@vec); built from the same range shapes
    /// proptest's `SizeRange` accepts.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    /// `None` a quarter of the time, matching proptest's default weighting.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, SharedStrategy, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::shared($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Property-test entry point. Each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that runs the body `config.cases` times over generated inputs,
/// printing the generated arguments if a case fails.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($body:tt)*) => {
        $crate::__proptest_impl! { ($config) $($body)* }
    };
    ($($body:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($body)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let __strategies = ( $($strategy,)+ );
            for __case in 0..__config.cases {
                let ( $($arg,)+ ) = {
                    let ( $(ref $arg,)+ ) = __strategies;
                    ( $($crate::strategy::Strategy::generate($arg, &mut __rng),)+ )
                };
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome = std::panic::catch_unwind(
                    std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed with inputs: {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __inputs,
                    );
                    std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generator() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!((1..=9).contains(&s.len()), "bad length: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..200 {
            let v = Strategy::generate(&(0..120i64), &mut rng);
            assert!((0..120).contains(&v));
            let w = Strategy::generate(&(1u8..=12), &mut rng);
            assert!((1..=12).contains(&w));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_multiple_args(
            x in 0..10i64,
            flag in any::<bool>(),
            name in prop_oneof![Just("a"), Just("b")],
            items in crate::collection::vec(0..5u8, 0..4),
            opt in crate::option::of(0..3i32),
        ) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(name == "a" || name == "b");
            prop_assert!(items.len() < 4);
            let _ = (flag, opt);
        }

        #[test]
        fn recursive_strategies_terminate(n in (0..4i64).prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a + b)
        })) {
            prop_assert!(n < 4 * 16);
        }
    }
}
