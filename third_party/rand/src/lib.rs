//! Offline stand-in for `rand`.
//!
//! The workspace's own `nli_core::Prng` is a self-contained xoshiro256**;
//! the only thing it takes from `rand` is the `TryRng` trait so it can speak
//! the ecosystem's sampling vocabulary. This stub provides exactly that
//! trait (see `third_party/README.md` for why dependencies are vendored).

pub mod rand_core {
    /// Fallible random source, mirroring `rand_core::TryRng`.
    pub trait TryRng {
        type Error;

        fn try_next_u32(&mut self) -> Result<u32, Self::Error>;
        fn try_next_u64(&mut self) -> Result<u64, Self::Error>;
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error>;
    }
}
