//! Offline stand-in for `criterion`.
//!
//! Keeps criterion's bench-authoring API (`criterion_group!`,
//! `criterion_main!`, `benchmark_group` / `bench_function` / `iter`) but
//! replaces the statistical machinery with a calibrated timing loop:
//! each benchmark is warmed up, the iteration count is chosen so a sample
//! takes a measurable slice of time, and `sample_size` samples are taken.
//! Results print as one human line and one machine-readable JSON line per
//! benchmark (`{"group":…,"bench":…,"mean_ns":…}`), so downstream tooling
//! can scrape stdout. See `third_party/README.md` for why dependencies are
//! vendored.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle passed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget per benchmark (split across samples).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let name = name.into();
        run_benchmark(&name, "", &name, self.sample_size, self.measurement_time, f);
        self
    }
}

/// Named family of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let bench = name.into();
        let label = format!("{}/{}", self.name, bench);
        run_benchmark(
            &label,
            &self.name,
            &bench,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

/// Handed to the closure under measurement; `iter` times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    group: &str,
    bench: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    // Calibrate: grow the iteration count until one sample is long enough
    // to time reliably.
    let budget_per_sample = measurement_time / sample_size as u32;
    let mut iters: u64 = 1;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let elapsed = b.elapsed.max(Duration::from_nanos(1));
        if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(4);
    };
    let sample_iters =
        ((budget_per_sample.as_secs_f64() / per_iter).ceil() as u64).clamp(1, 10_000_000);

    let mut samples_ns = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: sample_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_secs_f64() * 1e9 / sample_iters as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    let median = samples_ns[samples_ns.len() / 2];
    let (min, max) = (samples_ns[0], samples_ns[samples_ns.len() - 1]);

    println!(
        "{label:<40} mean {:>12}  median {:>12}  range [{} .. {}]  ({} samples x {} iters)",
        format_ns(mean),
        format_ns(median),
        format_ns(min),
        format_ns(max),
        sample_size,
        sample_iters,
    );
    println!(
        "{{\"group\":\"{}\",\"bench\":\"{}\",\"mean_ns\":{:.1},\"median_ns\":{:.1},\
         \"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
        escape(group),
        escape(bench),
        mean,
        median,
        min,
        max,
        sample_size,
        sample_iters,
    );
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declare a bench group: either the struct form with an explicit config
/// (`name = …; config = …; targets = …`) or the positional shorthand.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_produces_plausible_numbers() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        let mut group = c.benchmark_group("selftest");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }
}
