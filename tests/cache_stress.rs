//! Concurrency stress for [`nli_core::PlanCache`]: many threads hammering
//! `get_or_insert` over a mixed hit/miss key population against a tiny
//! capacity, so every pathological interleaving — racing double-compiles,
//! evictions under contention, hits on entries another thread just
//! inserted — happens constantly. The cache must never panic, never lose a
//! lookup, and its accounting must stay exact.

use nli_core::PlanCache;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

const THREADS: usize = 8;
const ROUNDS: usize = 400;
/// Tiny on purpose: far below the key population, so eviction churns.
const CAPACITY: usize = 4;

#[test]
fn concurrent_get_or_insert_never_loses_a_lookup() {
    let cache: PlanCache<String> = PlanCache::with_capacity(CAPACITY);
    let builds = AtomicU64::new(0);
    let barrier = Barrier::new(THREADS);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = &cache;
            let builds = &builds;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    // a few keys are shared by all threads (hot: mostly
                    // hits), the rest are drawn from a pool much larger
                    // than capacity (cold: mostly misses + evictions)
                    let (source, fp) = if round % 3 == 0 {
                        (format!("hot-{}", round % 2), 7u64)
                    } else {
                        (format!("cold-{}-{}", t, round % 16), (round % 5) as u64)
                    };
                    let plan = cache
                        .get_or_insert(&source, fp, 0, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            Ok(format!("plan:{source}:{fp}"))
                        })
                        .unwrap();
                    // a hit must hand back the plan for *this* key, never a
                    // neighbour's — even mid-eviction
                    assert_eq!(*plan, format!("plan:{source}:{fp}"));
                }
            });
        }
    });

    let stats = cache.stats();
    let lookups = (THREADS * ROUNDS) as u64;
    assert_eq!(
        stats.hits + stats.misses,
        lookups,
        "every lookup is exactly one hit or one miss: {stats:?}"
    );
    // every miss compiles (and racing threads may both compile), so builds
    // can only meet or exceed the miss count
    assert!(builds.load(Ordering::Relaxed) >= stats.misses, "{stats:?}");
    assert!(stats.hits > 0, "hot keys must produce hits: {stats:?}");
    assert!(stats.misses > 0, "cold keys must produce misses: {stats:?}");
    assert!(stats.len <= CAPACITY, "capacity breached: {stats:?}");
    let rate = stats.hit_rate();
    assert!(rate.is_finite() && (0.0..=1.0).contains(&rate), "{rate}");
}

#[test]
fn concurrent_failures_and_successes_keep_accounting_exact() {
    // half the keys always fail to build: errors must propagate, never
    // cache, and never corrupt the hit/miss totals under contention
    let cache: PlanCache<u32> = PlanCache::with_capacity(CAPACITY);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = &cache;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    let key = format!("k{}", (t + round) % 6);
                    let fails = key.as_bytes()[1] % 2 == 0;
                    let r = cache.get_or_insert(&key, u64::from(fails), 0, || {
                        if fails {
                            Err(nli_core::NliError::Syntax("always broken".into()))
                        } else {
                            Ok(7)
                        }
                    });
                    assert_eq!(r.is_err(), fails, "{key}");
                }
            });
        }
    });
    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses, (THREADS * ROUNDS) as u64);
    assert!(stats.len <= CAPACITY);
    assert!(stats.hit_rate().is_finite());
}
