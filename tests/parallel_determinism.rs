//! The determinism contract of the parallel runtime, checked end to end:
//! every migrated pipeline — SQL evaluation, vis evaluation, test-suite
//! matching, benchmark generation — must return byte-identical results at
//! any worker count. The single-threaded run is the oracle; 2, 4 and 8
//! workers must reproduce it exactly, including the rendered report rows
//! (the wall-clock `avg_micros` field is zeroed first — it is the one
//! value the contract deliberately excludes).

use nli_core::{with_threads, Prng};
use nli_data::domains;
use nli_data::nvbench_like::{self, NvBenchConfig};
use nli_data::schema_gen::{generate_database, DbGenConfig};
use nli_data::spider_like::{self, SpiderConfig};
use nli_metrics::{evaluate_sql, evaluate_vis, test_suite_match, SqlScores, TestSuite, VisScores};
use nli_text2sql::{GrammarConfig, GrammarParser};
use nli_text2vis::RuleVisParser;

const WORKER_COUNTS: [usize; 3] = [2, 4, 8];

fn sql_bench() -> nli_data::SqlBenchmark {
    spider_like::build(&SpiderConfig {
        n_databases: 13,
        n_dev_databases: 3,
        n_train: 20,
        n_dev: 60,
        ..Default::default()
    })
}

fn vis_bench() -> nli_data::VisBenchmark {
    nvbench_like::build(&NvBenchConfig {
        n_databases: 13,
        n_dev_databases: 3,
        n_train: 20,
        n_dev: 60,
        ..Default::default()
    })
}

/// Zero the one deliberately nondeterministic field (wall clock).
fn zt_sql(mut s: SqlScores) -> SqlScores {
    s.avg_micros = 0.0;
    s
}

fn zt_vis(mut s: VisScores) -> VisScores {
    s.avg_micros = 0.0;
    s
}

#[test]
fn evaluate_sql_is_bit_identical_across_worker_counts() {
    let bench = sql_bench();
    let parser = GrammarParser::new(GrammarConfig::llm_reasoner());
    let oracle = zt_sql(with_threads(1, || evaluate_sql(&parser, &bench)));
    for threads in WORKER_COUNTS {
        let scores = zt_sql(with_threads(threads, || evaluate_sql(&parser, &bench)));
        assert_eq!(scores, oracle, "{threads} workers diverged from 1");
        assert_eq!(
            scores.row(),
            oracle.row(),
            "report row at {threads} workers"
        );
    }
}

#[test]
fn evaluate_vis_is_bit_identical_across_worker_counts() {
    let bench = vis_bench();
    let parser = RuleVisParser::new();
    let oracle = zt_vis(with_threads(1, || evaluate_vis(&parser, &bench)));
    for threads in WORKER_COUNTS {
        let scores = zt_vis(with_threads(threads, || evaluate_vis(&parser, &bench)));
        assert_eq!(scores, oracle, "{threads} workers diverged from 1");
        assert_eq!(
            scores.row(),
            oracle.row(),
            "report row at {threads} workers"
        );
    }
}

#[test]
fn test_suite_match_is_identical_across_worker_counts() {
    let domain = domains::domain("retail").unwrap();
    let cfg = DbGenConfig {
        min_tables: 3,
        optional_col_p: 1.0,
        rows: (48, 48),
    };
    let base = generate_database(domain, 0, &cfg, &mut Prng::new(11));
    // suite construction itself fans out; build once per thread count and
    // demand the fuzzed variants agree byte for byte
    let suite_oracle = with_threads(1, || TestSuite::build(&base, 16, 0xD0_0D));
    let cases = [
        // semantically equal pair
        (
            "SELECT category, AVG(price) FROM products GROUP BY category",
            "SELECT category, AVG(price) FROM products GROUP BY category",
        ),
        // distinguishable pair: a fuzzed variant must separate them
        (
            "SELECT name FROM products WHERE price > 100",
            "SELECT name FROM products WHERE price > 50",
        ),
        // prediction that does not compile
        ("SELECT banana FROM nowhere", "SELECT * FROM products"),
    ];
    let verdict_oracle: Vec<bool> = with_threads(1, || {
        cases
            .iter()
            .map(|(p, g)| test_suite_match(p, g, &suite_oracle))
            .collect()
    });
    for threads in WORKER_COUNTS {
        let suite = with_threads(threads, || TestSuite::build(&base, 16, 0xD0_0D));
        assert_eq!(
            suite.variants, suite_oracle.variants,
            "suite build at {threads} workers"
        );
        let verdicts: Vec<bool> = with_threads(threads, || {
            cases
                .iter()
                .map(|(p, g)| test_suite_match(p, g, &suite))
                .collect()
        });
        assert_eq!(verdicts, verdict_oracle, "verdicts at {threads} workers");
    }
}

#[test]
fn benchmark_builder_is_bit_identical_across_worker_counts() {
    let oracle = with_threads(1, sql_bench);
    for threads in WORKER_COUNTS {
        let built = with_threads(threads, sql_bench);
        assert_eq!(built.databases, oracle.databases, "{threads} workers");
        assert_eq!(built.dev.len(), oracle.dev.len());
        for (a, b) in built
            .dev
            .iter()
            .chain(&built.train)
            .zip(oracle.dev.iter().chain(&oracle.train))
        {
            assert_eq!(a.question.text, b.question.text, "{threads} workers");
            assert_eq!(a.gold, b.gold, "{threads} workers");
            assert_eq!(a.db, b.db, "{threads} workers");
        }
    }
}

#[test]
fn thread_count_override_reaches_every_layer() {
    // sanity on the knob the whole suite leans on: with_threads pins the
    // count seen inside the closure and restores the previous value after
    let outer = nli_core::thread_count();
    let inner = with_threads(3, nli_core::thread_count);
    assert_eq!(inner, 3);
    assert_eq!(nli_core::thread_count(), outer);
}
