//! Fixed-seed metamorphic conformance suite (ISSUE 4 satellite).
//!
//! Positive direction: every rewrite rule holds over ≥128 generated
//! eligible queries — rewritten executions agree with the originals under
//! the rule's comparison mode.
//!
//! Negative direction: the oracle is proven non-vacuous by injecting a
//! miscompare (a flipped comparison operator, the classic off-by-one
//! engine bug) and asserting that (a) the differential comparison fires
//! and (b) the minimizer shrinks the catch to a minimal reproducer —
//! a single-item, single-table query whose WHERE is one bare comparison.

use nli_fuzz::oracle::{check_case, check_metamorphic, mutate_comparison, results_agree};
use nli_fuzz::rewrite::{apply_rule, CompareMode, Rule};
use nli_fuzz::{gen_case, minimize, GenConfig};
use nli_sql::ast::{BinOp, Expr, Query};
use nli_sql::interp::run_tree_walk;
use nli_sql::SqlEngine;

const SEED: u64 = 0xC0FFEE;
const PER_RULE: usize = 128;
const MAX_CASES: u64 = 6000;

fn salt_for(index: u64, rule: Rule) -> u64 {
    index.wrapping_mul(0x9E37_79B9).wrapping_add(rule as u64)
}

#[test]
fn every_rewrite_rule_holds_over_128_generated_queries() {
    let cfg = GenConfig::default();
    let engine = SqlEngine::new();
    let mut counts = [0usize; Rule::ALL.len()];
    let mut index = 0u64;
    while counts.iter().any(|&c| c < PER_RULE) && index < MAX_CASES {
        let case = gen_case(SEED, index, &cfg);
        if let Ok(base) = run_tree_walk(&case.query, &case.db) {
            for (ri, &rule) in Rule::ALL.iter().enumerate() {
                if counts[ri] >= PER_RULE {
                    continue;
                }
                let salt = salt_for(index, rule);
                if apply_rule(rule, &case.query, &case.db.schema, salt).is_none() {
                    continue;
                }
                counts[ri] += 1;
                let violation =
                    check_metamorphic(index, &case.query, &case.db, &engine, rule, salt, &base);
                assert!(
                    violation.is_none(),
                    "rule {} violated at case {index}: {:?}",
                    rule.name(),
                    violation
                );
            }
        }
        index += 1;
    }
    assert!(
        counts.iter().all(|&c| c >= PER_RULE),
        "corpus too small for some rule: counts {counts:?} after {index} cases"
    );
}

#[test]
fn differential_oracle_detects_an_injected_miscompare_and_shrinks_it() {
    let cfg = GenConfig::default();
    let engine = SqlEngine::new();

    // scan for the first case where flipping one comparison operator
    // actually changes the result (many flips are observationally silent)
    let mut found = None;
    for index in 0..200u64 {
        let case = gen_case(SEED, index, &cfg);
        let Some(mutated) = mutate_comparison(&case.query) else {
            continue;
        };
        let honest = run_tree_walk(&case.query, &case.db);
        let buggy = engine
            .prepare_ast(&mutated, &case.db.schema)
            .and_then(|p| p.execute(&case.db));
        let caught = match (&honest, &buggy) {
            (Ok(a), Ok(b)) => !b.matches_canonical(&a.to_canonical()),
            (Err(_), Err(_)) => false,
            _ => true,
        };
        if caught {
            found = Some((index, case));
            break;
        }
    }
    let (index, case) = found.expect("no injected bug caught in 200 cases — oracle is vacuous");

    // the differential predicate: "a buggy engine for this query would be
    // caught"; the minimizer must preserve catchability while shrinking
    let predicate = |q: &Query| {
        let Some(m) = mutate_comparison(q) else {
            return false;
        };
        let honest = run_tree_walk(q, &case.db);
        let buggy = engine
            .prepare_ast(&m, &case.db.schema)
            .and_then(|p| p.execute(&case.db));
        match (&honest, &buggy) {
            (Ok(a), Ok(b)) => !b.matches_canonical(&a.to_canonical()),
            (Err(_), Err(_)) => false,
            _ => true,
        }
    };
    let shrunk = minimize(&case.query, predicate, 400);
    assert!(shrunk.nodes_after <= shrunk.nodes_before);
    assert!(predicate(&shrunk.query), "shrunk case no longer fails");

    // minimal failing form: one table, one item, no modifiers, and a WHERE
    // that is exactly `column <cmp> literal` — 3 AST nodes
    let s = &shrunk.query.select;
    assert!(
        shrunk.query.compound.is_none(),
        "compound survived: {}",
        shrunk.query
    );
    assert!(
        s.order_by.is_empty() && s.group_by.is_empty(),
        "{}",
        shrunk.query
    );
    assert!(
        s.having.is_none() && s.limit.is_none() && !s.distinct,
        "{}",
        shrunk.query
    );
    assert_eq!(s.items.len(), 1, "items survived: {}", shrunk.query);
    assert_eq!(s.from.len(), 1, "join survived: {}", shrunk.query);
    match s
        .where_clause
        .as_ref()
        .expect("WHERE must survive — the bug lives there")
    {
        Expr::Binary { left, op, right } => {
            assert!(
                op.is_comparison(),
                "non-comparison op survived: {}",
                shrunk.query
            );
            assert!(
                matches!(**left, Expr::Column(_) | Expr::Literal(_))
                    && matches!(**right, Expr::Column(_) | Expr::Literal(_)),
                "WHERE not fully shrunk: {}",
                shrunk.query
            );
        }
        other => panic!("unexpected minimized WHERE shape: {other}"),
    }
    // replay line sanity: regenerating the case reproduces the same query
    let replayed = gen_case(SEED, index, &cfg);
    assert_eq!(replayed.query, case.query);
}

#[test]
fn metamorphic_comparison_is_not_vacuous() {
    // Pair each rule's rewrite with a deliberately broken rewritten query
    // (one comparison flipped); the comparison must report disagreement
    // for at least one generated case per rule that changes results.
    let cfg = GenConfig::default();
    let engine = SqlEngine::new();
    let mut caught = [false; Rule::ALL.len()];
    for index in 0..1500u64 {
        if caught.iter().all(|&c| c) {
            break;
        }
        let case = gen_case(SEED ^ 0xBAD, index, &cfg);
        let Ok(base) = run_tree_walk(&case.query, &case.db) else {
            continue;
        };
        for (ri, &rule) in Rule::ALL.iter().enumerate() {
            if caught[ri] {
                continue;
            }
            let salt = salt_for(index, rule);
            let Some(rw) = apply_rule(rule, &case.query, &case.db.schema, salt) else {
                continue;
            };
            let Some(broken) = mutate_comparison(&rw.rewritten) else {
                continue;
            };
            let Ok(broken_result) = engine
                .prepare_ast(&broken, &case.db.schema)
                .and_then(|p| p.execute(&case.db))
            else {
                continue;
            };
            if !results_agree(&base, &broken_result, &rw.compare) {
                caught[ri] = true;
            }
        }
    }
    assert!(
        caught.iter().all(|&c| c),
        "some rule's comparison never fired on a broken rewrite: {caught:?}"
    );
}

#[test]
fn rewrite_rules_respect_eligibility_gates() {
    // hand-built shapes that each rule must refuse
    let no_where: Query = nli_sql::parser::parse_query("SELECT a FROM t").unwrap();
    let schema = nli_core::Schema::new(
        "s",
        vec![nli_core::Table::new(
            "t",
            vec![nli_core::Column::new("a", nli_core::DataType::Int)],
        )],
    );
    assert!(apply_rule(Rule::CommuteBool, &no_where, &schema, 1).is_none());
    assert!(apply_rule(Rule::DoubleNegation, &no_where, &schema, 1).is_none());
    // not DISTINCT → split is unsound (UNION dedups) and must be refused
    assert!(apply_rule(Rule::PredicateSplit, &no_where, &schema, 1).is_none());
    // single item → nothing to permute
    assert!(apply_rule(Rule::PermuteColumns, &no_where, &schema, 1).is_none());
    // no ORDER BY / LIMIT → truncation rule does not apply
    assert!(apply_rule(Rule::LimitTruncate, &no_where, &schema, 1).is_none());

    let eligible = nli_sql::parser::parse_query("SELECT DISTINCT a FROM t WHERE a > 1").unwrap();
    let rw = apply_rule(Rule::PredicateSplit, &eligible, &schema, 7).unwrap();
    assert!(
        rw.rewritten.compound.is_some(),
        "split must produce a UNION"
    );
    assert_eq!(rw.compare, CompareMode::Multiset);

    let ordered =
        nli_sql::parser::parse_query("SELECT a FROM t WHERE a > 1 ORDER BY a LIMIT 3").unwrap();
    let rw = apply_rule(Rule::LimitTruncate, &ordered, &schema, 7).unwrap();
    assert_eq!(rw.compare, CompareMode::OrderedPrefix(3));
    assert!(rw.rewritten.select.limit.is_none());
}

#[test]
fn check_case_runs_the_full_battery_clean_on_a_fixed_prefix() {
    let cfg = GenConfig::default();
    let engine = SqlEngine::new();
    for index in 0..64u64 {
        let case = gen_case(SEED, index, &cfg);
        let report = check_case(index, &case.query, &case.db, &engine);
        assert!(
            report.violations.is_empty(),
            "case {index} violated: {:?}",
            report.violations
        );
    }
}

#[test]
fn mutate_comparison_flips_exactly_one_operator() {
    let q = nli_sql::parser::parse_query("SELECT a FROM t WHERE a < 3 AND b = 2").unwrap();
    let m = mutate_comparison(&q).unwrap();
    let Some(Expr::Binary { left, .. }) = m.select.where_clause else {
        panic!("shape changed");
    };
    match *left {
        Expr::Binary { op, .. } => assert_eq!(op, BinOp::Le),
        ref other => panic!("unexpected: {other}"),
    }
    // queries with no comparison have nothing to mutate
    let none = nli_sql::parser::parse_query("SELECT a FROM t WHERE a IS NULL").unwrap();
    assert!(mutate_comparison(&none).is_none());
}
