//! Golden-snapshot tests for `PreparedSql::explain()` and the
//! deterministic `EXPLAIN ANALYZE` render (ISSUE 5 satellite).
//!
//! One fixture per operator kind under `tests/golden/explain_*`, compared
//! byte-for-byte. Regenerate after an intentional format change with:
//!
//! ```text
//! NLI_UPDATE_GOLDEN=1 cargo test -p nli-sql --test explain_golden
//! ```
//!
//! The `EXPLAIN ANALYZE` fixture uses [`nli_sql::AnalyzedSql::render`],
//! which carries rows in/out, batches, and operator counters but no
//! wall-clock timings — the whole render is a pure function of
//! (query, database), so it goldens like any other plan text.

use nli_core::{Column, DataType, Database, Schema, Table, Value};
use nli_sql::SqlEngine;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Compare (or, under NLI_UPDATE_GOLDEN=1, rewrite) one fixture.
fn assert_golden(name: &str, rendered: &str) {
    let path = golden_dir().join(format!("{name}.txt"));
    if std::env::var_os("NLI_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden fixture {path:?} ({e}); run with NLI_UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        expected, rendered,
        "golden mismatch for {name}; if the change is intentional rerun with NLI_UPDATE_GOLDEN=1"
    );
}

/// Three joinable retail tables with a handful of fixed rows; the same
/// shape the crate's explain unit tests use.
fn retail_db() -> Database {
    let mut schema = Schema::new(
        "retail_golden",
        vec![
            Table::new(
                "stores",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("city", DataType::Text),
                ],
            ),
            Table::new(
                "products",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("category", DataType::Text),
                    Column::new("price", DataType::Float),
                ],
            ),
            Table::new(
                "sales",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("store_id", DataType::Int),
                    Column::new("product_id", DataType::Int),
                    Column::new("amount", DataType::Float),
                ],
            ),
        ],
    );
    schema
        .add_foreign_key("sales", "store_id", "stores", "id")
        .unwrap();
    schema
        .add_foreign_key("sales", "product_id", "products", "id")
        .unwrap();
    let mut db = Database::empty(schema);
    db.insert_all(
        "stores",
        vec![
            vec![1.into(), "Oslo".into()],
            vec![2.into(), "Bergen".into()],
        ],
    )
    .unwrap();
    db.insert_all(
        "products",
        vec![
            vec![1.into(), "Tools".into(), 9.5.into()],
            vec![2.into(), "Tools".into(), 19.0.into()],
            vec![3.into(), "Toys".into(), 4.25.into()],
        ],
    )
    .unwrap();
    db.insert_all(
        "sales",
        vec![
            vec![1.into(), 1.into(), 1.into(), 100.0.into()],
            vec![2.into(), 1.into(), 2.into(), 200.0.into()],
            vec![3.into(), 2.into(), 2.into(), 150.0.into()],
            vec![4.into(), 2.into(), 3.into(), 50.0.into()],
            vec![5.into(), Value::Null, 1.into(), 75.0.into()],
        ],
    )
    .unwrap();
    db
}

fn explain(sql: &str) -> String {
    SqlEngine::new()
        .prepare(sql, &retail_db().schema)
        .unwrap()
        .explain()
}

#[test]
fn golden_explain_scan() {
    assert_golden("explain_scan", &explain("SELECT * FROM products"));
}

#[test]
fn golden_explain_filter_pushdown() {
    // both conjuncts reference one table: pushed into the scan, no
    // residual Filter node
    assert_golden(
        "explain_filter_pushdown",
        &explain("SELECT category FROM products WHERE price > 5 AND category LIKE 'To%'"),
    );
}

#[test]
fn golden_explain_hash_join() {
    // left-deep two-step hash-join chain over three tables
    assert_golden(
        "explain_hash_join",
        &explain(
            "SELECT stores.city, products.category FROM sales \
             JOIN stores ON sales.store_id = stores.id \
             JOIN products ON sales.product_id = products.id",
        ),
    );
}

#[test]
fn golden_explain_cross_join() {
    // comma FROM without a connecting condition plus a residual predicate
    // that references both tables (not pushable, not hashable)
    assert_golden(
        "explain_cross_join",
        &explain("SELECT * FROM stores, products WHERE stores.id != products.id"),
    );
}

#[test]
fn golden_explain_aggregate_having() {
    assert_golden(
        "explain_aggregate_having",
        &explain(
            "SELECT category, AVG(price) FROM products \
             GROUP BY category HAVING COUNT(*) > 1",
        ),
    );
}

#[test]
fn golden_explain_sort_distinct_limit() {
    assert_golden(
        "explain_sort_distinct_limit",
        &explain("SELECT DISTINCT category FROM products ORDER BY category ASC LIMIT 2"),
    );
}

#[test]
fn golden_explain_set_op() {
    assert_golden(
        "explain_set_op",
        &explain("SELECT id FROM products UNION SELECT product_id FROM sales"),
    );
}

#[test]
fn golden_explain_subquery() {
    // IN (SELECT ...) stays a residual filter with a <subquery> placeholder
    assert_golden(
        "explain_subquery",
        &explain(
            "SELECT category FROM products WHERE id IN \
             (SELECT product_id FROM sales WHERE amount > 120)",
        ),
    );
}

#[test]
fn golden_explain_analyze_three_way() {
    // the deterministic EXPLAIN ANALYZE render: per-operator rows in/out,
    // batches, and counters for the 3-table join + aggregate
    let db = retail_db();
    let analyzed = SqlEngine::new()
        .prepare(
            "SELECT stores.city, SUM(sales.amount) FROM sales \
             JOIN stores ON sales.store_id = stores.id \
             JOIN products ON sales.product_id = products.id \
             WHERE products.price > 5 GROUP BY stores.city \
             ORDER BY SUM(sales.amount) DESC",
            &db.schema,
        )
        .unwrap()
        .explain_analyze(&db)
        .unwrap();
    assert_golden("explain_analyze_three_way", &analyzed.render());
}

#[test]
fn explain_fixtures_are_committed_for_every_case() {
    // mirror of the VQL golden guard, scoped to the explain_* namespace
    let mut names: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("tests/golden missing")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("explain_"))
        .collect();
    names.sort();
    let expected = [
        "explain_aggregate_having.txt",
        "explain_analyze_three_way.txt",
        "explain_cross_join.txt",
        "explain_filter_pushdown.txt",
        "explain_hash_join.txt",
        "explain_scan.txt",
        "explain_set_op.txt",
        "explain_sort_distinct_limit.txt",
        "explain_subquery.txt",
    ];
    assert_eq!(names, expected);
}
