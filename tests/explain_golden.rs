//! Golden-snapshot tests for `PreparedSql::explain()` and the
//! deterministic `EXPLAIN ANALYZE` render (ISSUE 5 satellite; cost-based
//! cases and the stale-fixture guard added in ISSUE 6).
//!
//! Every fixture under `tests/golden/explain_*` is declared once in
//! [`CASES`], compared byte-for-byte. Regenerate after an intentional
//! format change with:
//!
//! ```text
//! NLI_UPDATE_GOLDEN=1 cargo test -p nli-sql --test explain_golden
//! ```
//!
//! The update path is guarded: rewriting the fixtures fails loudly if the
//! golden directory holds an `explain_*` file no [`CASES`] entry
//! references (e.g. a renamed case leaving its old fixture behind), so a
//! stale snapshot can never linger and green-wash a later rename.
//!
//! The `EXPLAIN ANALYZE` fixtures use [`nli_sql::AnalyzedSql::render`],
//! which carries rows in/out, batches, and operator counters but no
//! wall-clock timings — the whole render is a pure function of
//! (query, database), so it goldens like any other plan text.
//!
//! The `explain_cost_*` cases prepare *against the database*
//! (`SqlEngine::prepare_on`), so the planner sees table statistics: their
//! fixtures pin the cost-chosen join order, strategy, and the `est=`
//! cardinality annotations.

use nli_core::{Column, DataType, Database, Schema, Table, Value};
use nli_sql::SqlEngine;
use std::path::PathBuf;

/// The three-way join + aggregate ladder query both ANALYZE fixtures use.
const THREE_WAY: &str = "SELECT stores.city, SUM(sales.amount) FROM sales \
     JOIN stores ON sales.store_id = stores.id \
     JOIN products ON sales.product_id = products.id \
     WHERE products.price > 5 GROUP BY stores.city \
     ORDER BY SUM(sales.amount) DESC";

/// Every golden case: fixture name → rendered plan text. The guard test
/// derives the set of legal fixture files from this table.
type Case = (&'static str, fn() -> String);
const CASES: &[Case] = &[
    ("explain_scan", || explain("SELECT * FROM products")),
    // both conjuncts reference one table: pushed into the scan, no
    // residual Filter node
    ("explain_filter_pushdown", || {
        explain("SELECT category FROM products WHERE price > 5 AND category LIKE 'To%'")
    }),
    // left-deep two-step hash-join chain over three tables
    ("explain_hash_join", || {
        explain(
            "SELECT stores.city, products.category FROM sales \
             JOIN stores ON sales.store_id = stores.id \
             JOIN products ON sales.product_id = products.id",
        )
    }),
    // comma FROM without a connecting condition plus a residual predicate
    // that references both tables (not pushable, not hashable)
    ("explain_cross_join", || {
        explain("SELECT * FROM stores, products WHERE stores.id != products.id")
    }),
    ("explain_aggregate_having", || {
        explain(
            "SELECT category, AVG(price) FROM products \
             GROUP BY category HAVING COUNT(*) > 1",
        )
    }),
    ("explain_sort_distinct_limit", || {
        explain("SELECT DISTINCT category FROM products ORDER BY category ASC LIMIT 2")
    }),
    ("explain_set_op", || {
        explain("SELECT id FROM products UNION SELECT product_id FROM sales")
    }),
    // IN (SELECT ...) stays a residual filter with a <subquery> placeholder
    ("explain_subquery", || {
        explain(
            "SELECT category FROM products WHERE id IN \
             (SELECT product_id FROM sales WHERE amount > 120)",
        )
    }),
    // the deterministic EXPLAIN ANALYZE render: per-operator rows in/out,
    // batches, and counters for the 3-table join + aggregate
    ("explain_analyze_three_way", || {
        let db = retail_db();
        SqlEngine::new()
            .prepare(THREE_WAY, &db.schema)
            .unwrap()
            .explain_analyze(&db)
            .unwrap()
            .render()
    }),
    // the same ladder query prepared against the database: the cost pass
    // sees row counts/NDVs, annotates every node with `est=`, and is free
    // to reorder the join chain away from FROM order
    ("explain_cost_three_way", || {
        let db = retail_db();
        SqlEngine::new()
            .prepare_on(THREE_WAY, &db)
            .unwrap()
            .explain_analyze(&db)
            .unwrap()
            .render()
    }),
    // sorted-key equijoin prepared with stats: the cost pass upgrades the
    // hash step to a MergeJoin (both primary-key columns stored ascending
    // and null-free; sales.store_id would not qualify — it has a NULL)
    ("explain_cost_merge_join", || {
        let db = retail_db();
        SqlEngine::new()
            .prepare_on(
                "SELECT stores.city, products.category FROM stores \
                 JOIN products ON stores.id = products.id",
                &db,
            )
            .unwrap()
            .explain()
    }),
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Compare (or, under NLI_UPDATE_GOLDEN=1, rewrite) one fixture.
fn assert_golden(name: &str, rendered: &str) {
    let path = golden_dir().join(format!("{name}.txt"));
    if std::env::var_os("NLI_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        assert_no_stale_fixtures();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden fixture {path:?} ({e}); run with NLI_UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        expected, rendered,
        "golden mismatch for {name}; if the change is intentional rerun with NLI_UPDATE_GOLDEN=1"
    );
}

/// Fail loudly if the golden directory holds an `explain_*` fixture no
/// [`CASES`] entry references. Runs on every update-mode write, so a
/// renamed or deleted case can't silently leave its old snapshot behind.
fn assert_no_stale_fixtures() {
    let stale: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("tests/golden missing")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("explain_"))
        .filter(|n| {
            !CASES
                .iter()
                .any(|(case, _)| format!("{case}.txt") == n.as_str())
        })
        .collect();
    assert!(
        stale.is_empty(),
        "stale golden fixtures not referenced by any CASES entry: {stale:?}; \
         delete them (or re-add their cases) before updating"
    );
}

/// Three joinable retail tables with a handful of fixed rows; the same
/// shape the crate's explain unit tests use.
fn retail_db() -> Database {
    let mut schema = Schema::new(
        "retail_golden",
        vec![
            Table::new(
                "stores",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("city", DataType::Text),
                ],
            ),
            Table::new(
                "products",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("category", DataType::Text),
                    Column::new("price", DataType::Float),
                ],
            ),
            Table::new(
                "sales",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("store_id", DataType::Int),
                    Column::new("product_id", DataType::Int),
                    Column::new("amount", DataType::Float),
                ],
            ),
        ],
    );
    schema
        .add_foreign_key("sales", "store_id", "stores", "id")
        .unwrap();
    schema
        .add_foreign_key("sales", "product_id", "products", "id")
        .unwrap();
    let mut db = Database::empty(schema);
    db.insert_all(
        "stores",
        vec![
            vec![1.into(), "Oslo".into()],
            vec![2.into(), "Bergen".into()],
        ],
    )
    .unwrap();
    db.insert_all(
        "products",
        vec![
            vec![1.into(), "Tools".into(), 9.5.into()],
            vec![2.into(), "Tools".into(), 19.0.into()],
            vec![3.into(), "Toys".into(), 4.25.into()],
        ],
    )
    .unwrap();
    db.insert_all(
        "sales",
        vec![
            vec![1.into(), 1.into(), 1.into(), 100.0.into()],
            vec![2.into(), 1.into(), 2.into(), 200.0.into()],
            vec![3.into(), 2.into(), 2.into(), 150.0.into()],
            vec![4.into(), 2.into(), 3.into(), 50.0.into()],
            vec![5.into(), Value::Null, 1.into(), 75.0.into()],
        ],
    )
    .unwrap();
    db
}

fn explain(sql: &str) -> String {
    SqlEngine::new()
        .prepare(sql, &retail_db().schema)
        .unwrap()
        .explain()
}

#[test]
fn golden_explain_cases() {
    for (name, render) in CASES {
        assert_golden(name, &render());
    }
}

#[test]
fn cost_based_plan_differs_from_rule_based_in_order_and_strategy() {
    // The acceptance spot-check behind the explain_cost_* fixtures: on the
    // ladder query, preparing with statistics must change both the join
    // *order* (sales is the largest table, so the cost pass no longer
    // starts from it) and the *strategy* (est= annotations and, for the
    // sorted-key pair, a MergeJoin) relative to the rule-based plan.
    let db = retail_db();
    let engine = SqlEngine::new();
    let rule = engine.prepare(THREE_WAY, &db.schema).unwrap().explain();
    let cost = engine.prepare_on(THREE_WAY, &db).unwrap().explain();
    assert_ne!(rule, cost, "stats did not change the plan");
    assert!(
        !rule.contains("est="),
        "rule-based plans must not carry cardinality estimates:\n{rule}"
    );
    assert!(
        cost.contains("est="),
        "cost-based plan is missing est= annotations:\n{cost}"
    );
    // The join chain's first input is the first scan line at maximum
    // indentation (the render puts the chain's root scan before its
    // sibling build scan at the same depth).
    let deepest_scan = |plan: &str| {
        let mut best: Option<(usize, &str)> = None;
        for l in plan.lines() {
            let depth = l.len() - l.trim_start().len();
            if l.trim_start().starts_with("Scan ") && best.is_none_or(|(d, _)| depth > d) {
                best = Some((depth, l.trim_start()));
            }
        }
        best.unwrap().1.to_string()
    };
    assert!(
        deepest_scan(&rule).starts_with("Scan sales"),
        "rule-based plan should start from the FROM-order table:\n{rule}"
    );
    assert!(
        !deepest_scan(&cost).starts_with("Scan sales"),
        "cost-based plan should not start from the 5-row sales table:\n{cost}"
    );

    let merge = engine
        .prepare_on(
            "SELECT stores.city, products.category FROM stores \
             JOIN products ON stores.id = products.id",
            &db,
        )
        .unwrap()
        .explain();
    assert!(
        merge.contains("MergeJoin"),
        "sorted Int key columns should plan a MergeJoin:\n{merge}"
    );
}

#[test]
fn explain_fixtures_are_committed_for_every_case() {
    // mirror of the VQL golden guard, scoped to the explain_* namespace
    let mut names: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("tests/golden missing")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("explain_"))
        .collect();
    names.sort();
    let mut expected: Vec<String> = CASES
        .iter()
        .map(|(case, _)| format!("{case}.txt"))
        .collect();
    expected.sort();
    assert_eq!(names, expected);
}
