//! The observability layer's side of the determinism contract
//! (DESIGN.md §3.3): recording and exporting traces is strictly
//! observational. Evaluation output must be byte-identical whether
//! `NLI_TRACE` is set or not, at any worker count, and the deterministic
//! sections of the trace must replay exactly across identical runs.
//!
//! Every test here touches the process-global registry, so the tests
//! serialize on one mutex — the workloads themselves still fan out over
//! the worker pool under test.

use nli_core::{obs, with_threads, Prng};
use nli_data::schema_gen::{generate_database, DbGenConfig};
use nli_data::spider_like::{self, SpiderConfig};
use nli_metrics::{evaluate_sql, SqlScores};
use nli_sql::SqlEngine;
use nli_text2sql::{GrammarConfig, GrammarParser};
use std::collections::BTreeMap;
use std::sync::Mutex;

static GLOBAL_REGISTRY_LOCK: Mutex<()> = Mutex::new(());

fn sql_bench() -> nli_data::SqlBenchmark {
    spider_like::build(&SpiderConfig {
        n_databases: 9,
        n_dev_databases: 2,
        n_train: 12,
        n_dev: 40,
        ..Default::default()
    })
}

/// Zero the one deliberately nondeterministic field (wall clock), exactly
/// as `tests/parallel_determinism.rs` does.
fn zt(mut s: SqlScores) -> SqlScores {
    s.avg_micros = 0.0;
    s
}

/// Per-key increase between two snapshots of a monotone counter map.
fn delta(before: &BTreeMap<String, u64>, after: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    after
        .iter()
        .map(|(k, v)| (k.clone(), v - before.get(k).copied().unwrap_or(0)))
        .collect()
}

fn span_counts(snap: &obs::Snapshot) -> BTreeMap<String, u64> {
    snap.spans
        .iter()
        .map(|(k, h)| (k.clone(), h.count))
        .collect()
}

#[test]
fn tracing_does_not_alter_evaluation_output() {
    let _serial = GLOBAL_REGISTRY_LOCK.lock().unwrap();
    let bench = sql_bench();
    let parser = GrammarParser::new(GrammarConfig::neural());
    let trace_path = std::env::temp_dir().join(format!("nli-trace-{}.json", std::process::id()));

    for threads in [1, 4] {
        // Baseline: tracing disabled (no NLI_TRACE, nothing exported).
        std::env::remove_var("NLI_TRACE");
        assert_eq!(obs::export_trace_if_requested().unwrap(), None);
        let baseline = zt(with_threads(threads, || evaluate_sql(&parser, &bench)));

        // Traced run: NLI_TRACE set, full trace exported afterwards.
        std::env::set_var("NLI_TRACE", &trace_path);
        let traced = zt(with_threads(threads, || evaluate_sql(&parser, &bench)));
        let written = obs::export_trace_if_requested().unwrap();
        std::env::remove_var("NLI_TRACE");

        assert_eq!(
            traced, baseline,
            "exporting a trace changed evaluation output at {threads} workers"
        );
        assert_eq!(traced.row(), baseline.row());
        let trace = std::fs::read_to_string(written.expect("trace path")).unwrap();
        assert!(trace.contains("\"plan_cache.hits\""), "{trace}");
        assert!(trace.contains("\"sql.execute\""), "{trace}");
        assert!(trace.contains("\"eval.sql.examples\""), "{trace}");
    }
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn deterministic_trace_sections_replay_across_identical_runs() {
    let _serial = GLOBAL_REGISTRY_LOCK.lock().unwrap();
    let bench = sql_bench();
    let parser = GrammarParser::new(GrammarConfig::neural());
    let registry = obs::global();

    // Two identical sequential runs must advance every deterministic
    // counter — and every span count — by exactly the same amount. (At >1
    // workers the parse/plan span counts and the plan-cache hit/miss split
    // may differ by the benign double-compile race, which is why those live
    // in the scheduling section; the sequential oracle has no such race.)
    let s0 = registry.snapshot();
    with_threads(1, || evaluate_sql(&parser, &bench));
    let s1 = registry.snapshot();
    with_threads(1, || evaluate_sql(&parser, &bench));
    let s2 = registry.snapshot();

    let first = delta(&s0.counters, &s1.counters);
    let second = delta(&s1.counters, &s2.counters);
    assert_eq!(first, second, "deterministic counters diverged");
    assert!(
        first.get("eval.sql.examples").copied() == Some(bench.dev.len() as u64),
        "{first:?}"
    );

    let first_spans = delta(&span_counts(&s0), &span_counts(&s1));
    let second_spans = delta(&span_counts(&s1), &span_counts(&s2));
    assert_eq!(first_spans, second_spans, "span counts diverged");
    assert!(first_spans["sql.execute"] > 0, "{first_spans:?}");
}

#[test]
fn parallel_runs_record_pool_and_worker_telemetry() {
    let _serial = GLOBAL_REGISTRY_LOCK.lock().unwrap();
    let bench = sql_bench();
    let parser = GrammarParser::new(GrammarConfig::neural());
    let registry = obs::global();

    let before = registry.snapshot();
    with_threads(4, || evaluate_sql(&parser, &bench));
    let after = registry.snapshot();

    let fanouts = delta(&before.counters, &after.counters);
    assert!(fanouts["par.fanouts"] > 0, "{fanouts:?}");
    assert!(
        fanouts["par.items"] >= bench.dev.len() as u64,
        "{fanouts:?}"
    );
    assert_eq!(after.gauges.get("par.workers"), Some(&4));
    // Per-worker task counters exist for each of the 4 workers and the
    // per-fan-out totals add up to the items dispatched.
    let tasks = delta(&before.scheduling, &after.scheduling);
    let per_worker: u64 = (0..4)
        .map(|w| {
            tasks
                .get(&format!("par.worker.{w}.tasks"))
                .copied()
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(per_worker, fanouts["par.items"], "{tasks:?}");
}

/// The generated retail database and three-table join + aggregate query
/// the `EXPLAIN ANALYZE` determinism tests below run against (same
/// generator arguments as the benchmark baseline emitter).
fn retail_db() -> nli_core::Database {
    let cfg = DbGenConfig {
        min_tables: 3,
        optional_col_p: 1.0,
        rows: (200, 200),
    };
    generate_database(
        nli_data::domains::domain("retail").unwrap(),
        0,
        &cfg,
        &mut Prng::new(42),
    )
}

const THREE_WAY: &str = "SELECT stores.city, SUM(sales.amount) FROM sales \
     JOIN stores ON sales.store_id = stores.id \
     JOIN products ON sales.product_id = products.id \
     WHERE products.price > 50 GROUP BY stores.city \
     ORDER BY SUM(sales.amount) DESC";

#[test]
fn explain_analyze_row_counts_are_identical_across_worker_counts() {
    // The deterministic EXPLAIN ANALYZE render (rows in/out, batches,
    // operator counters; no timings) must be byte-identical at any worker
    // count — instrumented execution sits on the same deterministic
    // runtime the evaluators use.
    let _serial = GLOBAL_REGISTRY_LOCK.lock().unwrap();
    let db = retail_db();
    let engine = SqlEngine::new();
    let stmt = engine.prepare(THREE_WAY, &db.schema).unwrap();
    let render_at = |threads| with_threads(threads, || stmt.explain_analyze(&db).unwrap().render());

    let sequential = render_at(1);
    let parallel = render_at(4);
    assert_eq!(
        sequential, parallel,
        "EXPLAIN ANALYZE diverged across worker counts"
    );
    assert_eq!(sequential, render_at(1), "replay across identical runs");
    // The report actually carries per-operator row flow for the full tree.
    for needle in ["rows_in=", "rows_out=", "HashJoin", "Aggregate", "Scan"] {
        assert!(sequential.contains(needle), "{sequential}");
    }
}

#[test]
fn traced_queries_appear_as_nested_trace_events_in_export() {
    // With NLI_TRACE set, span-tree recording turns on and the export's
    // `trace_events` section carries the per-query trees — including
    // parent/child nesting for spans opened inside an enclosing span.
    let _serial = GLOBAL_REGISTRY_LOCK.lock().unwrap();
    let registry = obs::global();
    let trace_path =
        std::env::temp_dir().join(format!("nli-trace-events-{}.json", std::process::id()));
    std::env::set_var("NLI_TRACE", &trace_path);
    obs::enable_trace_events_from_env();
    let _ = registry.drain_trace_trees(); // discard trees from earlier tests

    let db = retail_db();
    let engine = SqlEngine::new();
    let stmt = engine.prepare(THREE_WAY, &db.schema).unwrap();
    {
        // `sql.execute` nests under this enclosing span on the same thread.
        let _root = registry.trace_span("test.query");
        stmt.execute(&db).unwrap();
    }
    stmt.explain_analyze(&db).unwrap();

    let written = obs::export_trace_if_requested().unwrap().expect("path");
    registry.set_trace_events(false);
    let _ = registry.drain_trace_trees();
    std::env::remove_var("NLI_TRACE");

    let json = std::fs::read_to_string(written).unwrap();
    assert!(json.contains("\"trace_events\""), "{json}");
    // Root events export with a null parent, nested ones with their
    // parent's id: sql.execute recorded as a child of test.query.
    assert!(
        json.contains("\"parent\": null, \"label\": \"test.query\""),
        "{json}"
    );
    assert!(
        json.contains("\"parent\": 0, \"label\": \"sql.execute\""),
        "{json}"
    );
    assert!(
        json.contains("\"label\": \"sql.explain_analyze\""),
        "{json}"
    );
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn trace_export_bytes_are_stable_for_one_snapshot() {
    // The satellite bugfix, end to end: however metric registration was
    // interleaved across worker threads, one snapshot always renders the
    // same bytes (sorted keys, fixed layout).
    let _serial = GLOBAL_REGISTRY_LOCK.lock().unwrap();
    let bench = sql_bench();
    let parser = GrammarParser::new(GrammarConfig::neural());
    with_threads(4, || evaluate_sql(&parser, &bench));
    let snap = obs::global().snapshot();
    assert_eq!(snap.to_json(), snap.to_json());
    assert_eq!(snap.deterministic_json(), snap.deterministic_json());
    let keys: Vec<&String> = snap.counters.keys().collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "counter keys must export sorted");
}
