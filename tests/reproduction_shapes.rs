//! The reproduction's load-bearing claims: the qualitative *shapes* the
//! survey reports must hold on freshly generated corpora. These are the
//! same orderings the Table 2–4 harnesses print, pinned as tests.

use nli_data::bird_like::{self, BirdConfig};
use nli_data::nvbench_like::{self, NvBenchConfig};
use nli_data::robustness;
use nli_data::spider_like::{self, SpiderConfig};
use nli_data::wikisql_like::{self, WikiSqlConfig};
use nli_lm::{DemoSelection, LlmKind, PromptStrategy, TrainingExample};
use nli_metrics::{evaluate_sql, evaluate_vis};
use nli_text2sql::{
    GrammarConfig, GrammarParser, LlmParser, PlmParser, RuleBasedParser, SkeletonParser,
};
use nli_text2vis::{NcNetParser, RgVisNetParser, Seq2VisParser};

fn spider_cfg() -> SpiderConfig {
    SpiderConfig {
        n_databases: 20,
        n_dev_databases: 5,
        n_train: 120,
        n_dev: 80,
        ..Default::default()
    }
}

fn training_of(b: &nli_data::SqlBenchmark) -> Vec<TrainingExample> {
    b.train
        .iter()
        .map(|e| TrainingExample {
            question: e.question.text.clone(),
            sql: e.gold.clone(),
        })
        .collect()
}

#[test]
fn skeleton_family_cannot_do_spider_but_handles_wikisql() {
    let wiki = wikisql_like::build(&WikiSqlConfig {
        n_databases: 60,
        n_train: 150,
        n_dev: 80,
        ..Default::default()
    });
    let spider = spider_like::build(&spider_cfg());

    let mut skel_wiki = SkeletonParser::new(true);
    skel_wiki.train(&training_of(&wiki));
    let mut skel_spider = SkeletonParser::new(true);
    skel_spider.train(&training_of(&spider));

    let on_wiki = evaluate_sql(&skel_wiki, &wiki);
    let on_spider = evaluate_sql(&skel_spider, &spider);
    assert!(on_wiki.execution > 0.6, "wikisql EX: {on_wiki:?}");
    assert!(
        on_spider.exact_set < on_wiki.execution - 0.2,
        "the skeleton grammar must collapse on Spider-class queries: {on_spider:?} vs {on_wiki:?}"
    );
}

#[test]
fn plm_beats_rule_based_on_spider_class_queries() {
    let spider = spider_like::build(&spider_cfg());
    let mut plm = PlmParser::new();
    plm.train(&training_of(&spider));
    let plm_scores = evaluate_sql(&plm, &spider);
    let rule_scores = evaluate_sql(&RuleBasedParser::new(), &spider);
    assert!(
        plm_scores.execution > rule_scores.execution,
        "PLM {plm_scores:?} must beat rule {rule_scores:?}"
    );
}

#[test]
fn llm_decomposition_does_not_lose_to_zero_shot() {
    let spider = spider_like::build(&SpiderConfig {
        n_dev: 60,
        ..spider_cfg()
    });
    let mut zero_total = 0.0;
    let mut dec_total = 0.0;
    for seed in 0..4 {
        let zero = LlmParser::new(LlmKind::ChatGpt, PromptStrategy::ZeroShot, seed);
        let dec = LlmParser::new(
            LlmKind::ChatGpt,
            PromptStrategy::Decomposed {
                k: 4,
                selection: DemoSelection::Similarity,
            },
            seed,
        );
        zero_total += evaluate_sql(&zero, &spider).execution;
        dec_total += evaluate_sql(&dec, &spider).execution;
    }
    assert!(
        dec_total >= zero_total,
        "decomposed {dec_total} lost to zero-shot {zero_total}"
    );
}

#[test]
fn synonym_perturbation_hurts_the_plm_more_than_the_world_knowledge_parser() {
    let cfg = spider_cfg();
    let spider = spider_like::build(&cfg);
    let syn = robustness::synonymize(&spider, 0.9, 42);

    let mut plm = PlmParser::new();
    plm.train(&training_of(&spider));
    let plm_gap = evaluate_sql(&plm, &spider).execution - evaluate_sql(&plm, &syn).execution;

    let reasoner = GrammarParser::new(GrammarConfig::llm_reasoner());
    let reasoner_gap =
        evaluate_sql(&reasoner, &spider).execution - evaluate_sql(&reasoner, &syn).execution;

    assert!(
        plm_gap > 0.1,
        "perturbation should hurt the PLM: gap {plm_gap}"
    );
    assert!(
        reasoner_gap < plm_gap,
        "world knowledge must absorb synonym noise better: {reasoner_gap} vs {plm_gap}"
    );
}

#[test]
fn evidence_matters_on_knowledge_grounded_benchmarks() {
    let bird = bird_like::build(&BirdConfig {
        n_databases: 8,
        n_dev_databases: 2,
        n_train: 40,
        n_dev: 60,
        ..Default::default()
    });
    // the same parser, with and without evidence use
    let with = GrammarParser::new(GrammarConfig::llm_reasoner());
    let without = GrammarParser::new(GrammarConfig {
        use_evidence: false,
        ..GrammarConfig::llm_reasoner()
    });
    let w = evaluate_sql(&with, &bird);
    let wo = evaluate_sql(&without, &bird);
    assert!(
        w.execution > wo.execution + 0.05,
        "evidence must help on BIRD-like data: with {w:?} vs without {wo:?}"
    );
}

#[test]
fn multilingual_questions_break_english_parsers() {
    let spider = spider_like::build(&spider_cfg());
    let zh = nli_data::multilingual::translate(&spider, nli_core::Language::Chinese);
    let parser = GrammarParser::new(GrammarConfig::llm_reasoner());
    let en = evaluate_sql(&parser, &spider);
    let cn = evaluate_sql(&parser, &zh);
    assert!(
        cn.execution < en.execution * 0.3,
        "pseudo-Chinese must break the English parser: {cn:?} vs {en:?}"
    );
}

#[test]
fn vis_stage_ordering_seq2vis_then_ncnet_then_rgvisnet() {
    let nv = nvbench_like::build(&NvBenchConfig {
        n_databases: 20,
        n_dev_databases: 5,
        n_train: 100,
        n_dev: 80,
        ..Default::default()
    });
    let pairs: Vec<(String, nli_vql::VisQuery)> = nv
        .train
        .iter()
        .map(|e| (e.question.text.clone(), e.gold.clone()))
        .collect();
    let sql_training: Vec<TrainingExample> = nv
        .train
        .iter()
        .map(|e| TrainingExample {
            question: e.question.text.clone(),
            sql: e.gold.query.clone(),
        })
        .collect();

    let mut seq2vis = Seq2VisParser::new();
    seq2vis.train(pairs.clone());
    let mut ncnet = NcNetParser::new();
    ncnet.train(&sql_training);
    let mut rgvisnet = RgVisNetParser::new();
    rgvisnet.index(pairs);

    let s = evaluate_vis(&seq2vis, &nv).overall;
    let n = evaluate_vis(&ncnet, &nv).overall;
    let r = evaluate_vis(&rgvisnet, &nv).overall;
    assert!(s < n, "seq2vis {s} must trail ncnet {n}");
    assert!(n <= r, "ncnet {n} must not beat rgvisnet {r}");
    assert!(s < 0.5, "cross-domain seq2vis must stay low: {s}");
}

#[test]
fn skeleton_grammar_gap_widens_under_compositional_split() {
    // §6.5: the grammar parser composes; the skeleton's fixed sketch cannot
    let spider = spider_like::build(&spider_cfg());
    let cg = nli_data::robustness::compositional_split(&spider);
    let mut skel = SkeletonParser::new(true);
    skel.train(&training_of(&cg));
    let grammar = GrammarParser::new(GrammarConfig::neural());
    let s = evaluate_sql(&skel, &cg).execution;
    let g = evaluate_sql(&grammar, &cg).execution;
    assert!(
        g > s + 0.2,
        "grammar ({g}) must beat the skeleton ({s}) on compositions by a wide margin"
    );
}

#[test]
fn grappa_style_pretraining_narrows_the_cross_domain_gap() {
    // §4.1.3 "additional pretraining": synthesizing pairs over the *dev*
    // databases (schemas + content, no gold annotations) teaches the
    // alignment the unseen domains' vocabulary
    let spider = spider_like::build(&spider_cfg());
    let mut base = PlmParser::new();
    base.train(&training_of(&spider));
    let mut pretrained = PlmParser::new();
    let mut pairs = training_of(&spider);
    pairs.extend(nli_data::pretrain::synthesize(&spider.databases, 300, 17));
    pretrained.train(&pairs);
    let b = evaluate_sql(&base, &spider).execution;
    let p = evaluate_sql(&pretrained, &spider).execution;
    assert!(
        p >= b,
        "pretraining must not hurt cross-domain accuracy: {p} vs {b}"
    );
}
