//! Cross-crate integration: generation → parsing → execution → evaluation
//! → interactive systems, through the public APIs only.

use nli_core::{ExecutionEngine, NlQuestion, SemanticParser};
use nli_data::nvbench_like::{self, NvBenchConfig};
use nli_data::spider_like::{self, SpiderConfig};
use nli_lm::TrainingExample;
use nli_metrics::{evaluate_sql, evaluate_vis};
use nli_sql::SqlEngine;
use nli_systems::{recommend, Environment, Expertise, Session, SystemOutput, UserProfile};
use nli_text2sql::{GrammarConfig, GrammarParser, PlmParser};
use nli_text2vis::NcNetParser;

fn small_spider() -> nli_data::SqlBenchmark {
    spider_like::build(&SpiderConfig {
        n_databases: 13,
        n_dev_databases: 3,
        n_train: 60,
        n_dev: 40,
        ..Default::default()
    })
}

#[test]
fn generated_benchmark_trains_and_evaluates_a_plm() {
    let bench = small_spider();
    let training: Vec<TrainingExample> = bench
        .train
        .iter()
        .map(|e| TrainingExample {
            question: e.question.text.clone(),
            sql: e.gold.clone(),
        })
        .collect();
    let mut plm = PlmParser::new();
    plm.train(&training);
    let scores = evaluate_sql(&plm, &bench);
    assert_eq!(scores.n, 40);
    assert!(scores.execution > 0.5, "PLM EX too low: {scores:?}");
    assert!(scores.valid > 0.9, "PLM validity too low: {scores:?}");
}

#[test]
fn grammar_parser_answers_generated_questions_executably() {
    let bench = small_spider();
    let parser = GrammarParser::new(GrammarConfig::llm_reasoner());
    let engine = SqlEngine::new();
    let mut parsed = 0;
    for ex in &bench.dev {
        let db = bench.db_of(ex);
        if let Ok(q) = parser.parse(&ex.question, db) {
            parsed += 1;
            engine
                .execute(&q, db)
                .unwrap_or_else(|e| panic!("unexecutable output for '{}': {e}\n{q}", ex.question));
        }
    }
    assert!(
        parsed * 10 >= bench.dev.len() * 9,
        "parsed only {parsed}/{}",
        bench.dev.len()
    );
}

#[test]
fn vis_pipeline_end_to_end() {
    let bench = nvbench_like::build(&NvBenchConfig {
        n_databases: 13,
        n_dev_databases: 3,
        n_train: 40,
        n_dev: 40,
        ..Default::default()
    });
    let parser = NcNetParser::new();
    let scores = evaluate_vis(&parser, &bench);
    assert!(scores.overall > 0.5, "ncnet overall too low: {scores:?}");
    // executed charts agree with exact matches at least as often
    assert!(scores.execution >= scores.overall - 0.05);
}

#[test]
fn session_loop_queries_refines_and_charts() {
    let bench = small_spider();
    // pick a retail database (domain is stable across seeds)
    let (db_idx, db) = bench
        .databases
        .iter()
        .enumerate()
        .find(|(_, d)| d.schema.domain == "retail")
        .expect("retail db generated");
    let _ = db_idx;
    let mut session = Session::new();
    let r1 = session
        .ask(&NlQuestion::new("How many sales are there?"), db)
        .expect("count question");
    assert!(matches!(r1.output, SystemOutput::Table(_)));
    let r2 = session
        .ask(
            &NlQuestion::new("Only those with amount greater than 10."),
            db,
        )
        .expect("refinement");
    match (r1.output, r2.output) {
        (SystemOutput::Table(a), SystemOutput::Table(b)) => {
            let count = |rs: &nli_sql::ResultSet| match &rs.rows[0][0] {
                nli_core::Value::Int(i) => *i,
                other => panic!("{other:?}"),
            };
            assert!(count(&b) <= count(&a), "refinement must narrow the count");
        }
        other => panic!("{other:?}"),
    }
    let r3 = session
        .ask(
            &NlQuestion::new("Show a bar chart of the total amount for each category."),
            db,
        )
        .expect("chart");
    assert!(matches!(r3.output, SystemOutput::Chart(_)));
    assert_eq!(session.history().len(), 3);
}

#[test]
fn advisor_covers_every_profile() {
    for expertise in [
        Expertise::Basic,
        Expertise::Technical,
        Expertise::Professional,
    ] {
        for environment in [
            Environment::Stable,
            Environment::Complex,
            Environment::FastPaced,
        ] {
            let rec = recommend(&UserProfile {
                expertise,
                environment,
                needs_flexibility: false,
            });
            assert!(!rec.rationale.is_empty());
        }
    }
}

#[test]
fn multiturn_benchmark_round_trips_through_the_dialogue_parser() {
    use nli_data::multiturn::{build, DialogueKind, MultiTurnConfig};
    use nli_text2sql::DialogueParser;
    let bench = build(&MultiTurnConfig {
        kind: DialogueKind::Sparc,
        n_databases: 6,
        n_dialogues: 20,
        ..Default::default()
    });
    let engine = SqlEngine::new();
    let mut correct = 0usize;
    let mut total = 0usize;
    for d in &bench.dialogues {
        let db = &bench.databases[d.db];
        let mut parser = DialogueParser::new(GrammarConfig::llm_reasoner());
        for (q, gold) in &d.turns {
            total += 1;
            if let Ok(pred) = parser.parse_turn(q, db) {
                if let (Ok(a), Ok(b)) = (engine.execute(&pred, db), engine.execute(gold, db)) {
                    correct += usize::from(a.same_result(&b));
                }
            }
        }
    }
    assert!(
        correct * 3 >= total * 2,
        "dialogue accuracy too low: {correct}/{total}"
    );
}
