//! Batch-size conformance for the vectorized executor (ISSUE 6 satellite).
//!
//! The columnar pipeline chunks every stage by `NLI_BATCH_ROWS` (default
//! 4096). Chunking must be invisible: for any generated query, running the
//! cost-based plan at batch size 1 (degenerate row-at-a-time), 7 (prime,
//! never divides the row counts), and the default must each produce a
//! result byte-identical to the reference tree-walk interpreter — same
//! columns, same rows in the same order, same `ordered` flag, or the same
//! error outcome. A kernel that mishandles a chunk boundary (carry-over
//! state, off-by-one at the seam, partial-batch nulls) diverges at one of
//! the odd sizes even when the default size happens to hide it.

use nli_core::{Database, Prng};
use nli_data::spider_like::{self, SpiderConfig};
use nli_data::sql_gen::{plan_to_query, sample_plan, SqlProfile};
use nli_sql::interp::run_tree_walk;
use nli_sql::{with_batch_rows, SqlEngine};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Batch sizes under test: degenerate, prime/non-divisible, default.
const BATCH_SIZES: &[Option<usize>] = &[Some(1), Some(7), None];

fn corpus_databases() -> &'static Vec<Database> {
    static DBS: OnceLock<Vec<Database>> = OnceLock::new();
    DBS.get_or_init(|| {
        spider_like::build(&SpiderConfig {
            n_databases: 8,
            n_dev_databases: 2,
            n_train: 0,
            n_dev: 0,
            ..Default::default()
        })
        .databases
    })
}

/// Run one generated query through the tree-walk reference and through the
/// stats-aware planned pipeline at every batch size; assert all agree.
/// Returns whether a query was actually drawn for this seed.
fn check_one(engine: &SqlEngine, seed: u64) -> bool {
    let dbs = corpus_databases();
    let db = &dbs[(seed % dbs.len() as u64) as usize];
    let mut rng = Prng::new(seed);
    let Some(plan) = sample_plan(db, &SqlProfile::spider(), &mut rng) else {
        return false;
    };
    let q = plan_to_query(db, &plan);
    let reference = run_tree_walk(&q, db);
    for &batch in BATCH_SIZES {
        let run = || engine.prepare_ast_on(&q, db).and_then(|p| p.execute(db));
        let vectorized = match batch {
            Some(n) => with_batch_rows(n, run),
            None => run(),
        };
        let label = batch.map_or("default".to_string(), |n| n.to_string());
        match (&reference, vectorized) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    a.columns, b.columns,
                    "columns diverged on {q} (batch={label})"
                );
                assert_eq!(
                    a.ordered, b.ordered,
                    "ordered flag diverged on {q} (batch={label})"
                );
                assert_eq!(
                    a.rows, b.rows,
                    "rows diverged on {q} (batch={label}, db {})",
                    db.schema.name
                );
            }
            (Err(_), Err(_)) => {}
            (Ok(_), Err(e)) => {
                panic!("vectorized failed where tree-walk succeeded on {q} (batch={label}): {e}")
            }
            (Err(e), Ok(_)) => {
                panic!("tree-walk failed where vectorized succeeded on {q} (batch={label}): {e}")
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// For any seed, the sampled query agrees between the reference
    /// interpreter and the vectorized executor at every batch size.
    #[test]
    fn vectorized_executor_is_batch_size_invariant(seed in any::<u64>()) {
        let engine = SqlEngine::new();
        check_one(&engine, seed);
    }
}

/// Deterministic floor: a fixed seed sweep that always draws enough
/// queries, independent of proptest's shrink/skip behavior.
#[test]
fn batch_size_sweep_covers_a_fixed_corpus() {
    let engine = SqlEngine::new();
    let mut drawn = 0usize;
    for seed in 0..256u64 {
        if check_one(&engine, seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)) {
            drawn += 1;
        }
    }
    assert!(drawn >= 96, "only {drawn} queries drawn (need >= 96)");
}
