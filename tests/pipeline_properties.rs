//! Whole-pipeline invariants over generated corpora: every gold program
//! executes, reparses, and survives normalization; corruption never panics
//! and stays schema-plausible; the executor honours LIMIT/DISTINCT; whole
//! benchmark builds replay bit-for-bit from their seeds.

use nli_core::{with_threads, ExecutionEngine, Prng};
use nli_data::nvbench_like::{self, NvBenchConfig};
use nli_data::spider_like::{self, SpiderConfig};
use nli_lm::{llm::corrupt_query, CapabilityProfile};
use nli_sql::{normalize, parse_query, SqlEngine};
use nli_vql::VisEngine;
use proptest::prelude::*;

fn bench() -> nli_data::SqlBenchmark {
    spider_like::build(&SpiderConfig {
        n_databases: 16,
        n_dev_databases: 4,
        n_train: 80,
        n_dev: 80,
        ..Default::default()
    })
}

#[test]
fn every_gold_query_executes_reparses_and_normalizes_stably() {
    let b = bench();
    let engine = SqlEngine::new();
    for ex in b.train.iter().chain(&b.dev) {
        let db = &b.databases[ex.db];
        let text = ex.gold.to_string();
        // executes
        engine
            .execute(&ex.gold, db)
            .unwrap_or_else(|e| panic!("{text}: {e}"));
        // reparses to the same AST
        let reparsed = parse_query(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(reparsed, ex.gold, "round-trip changed the AST: {text}");
        // normalization is idempotent and a fixed point on canonical text
        let n1 = normalize::normalize(&text);
        assert_eq!(n1, text);
        assert_eq!(normalize::normalize(&n1), n1);
    }
}

#[test]
fn limit_and_distinct_semantics_hold_on_generated_corpora() {
    let b = bench();
    let engine = SqlEngine::new();
    for ex in b.dev.iter() {
        let db = &b.databases[ex.db];
        let rs = engine.execute(&ex.gold, db).unwrap();
        if let Some(limit) = ex.gold.select.limit {
            assert!(
                rs.rows.len() <= limit as usize,
                "LIMIT {limit} violated: {} rows for {}",
                rs.rows.len(),
                ex.gold
            );
        }
        if ex.gold.select.distinct {
            let mut seen = std::collections::HashSet::new();
            for row in &rs.rows {
                let key: Vec<String> = row.iter().map(|v| v.canonical()).collect();
                assert!(
                    seen.insert(key),
                    "DISTINCT produced duplicates: {}",
                    ex.gold
                );
            }
        }
        if !ex.gold.select.order_by.is_empty() {
            assert!(rs.ordered, "ORDER BY must mark the result ordered");
        }
    }
}

#[test]
fn corruption_is_total_and_schema_plausible() {
    let b = bench();
    let heavy = CapabilityProfile {
        schema_link: 0.5,
        join: 0.5,
        value: 0.5,
        clause: 0.5,
        aggregate: 0.5,
        syntax: 0.2,
    };
    let mut rng = Prng::new(31337);
    let mut parseable = 0usize;
    let mut total = 0usize;
    for ex in b.dev.iter() {
        let db = &b.databases[ex.db];
        for k in 0..3u64 {
            let mut r = rng.fork(total as u64 * 7 + k);
            let text = corrupt_query(&ex.gold, &db.schema, &heavy, &mut r);
            total += 1;
            if parse_query(&text).is_ok() {
                parseable += 1;
            }
        }
    }
    // syntax rate 0.2 → roughly 80% should still parse
    assert!(
        parseable as f64 / total as f64 > 0.6,
        "too many corruptions unparseable: {parseable}/{total}"
    );
}

#[test]
fn benchmark_builds_replay_bit_for_bit() {
    let a = bench();
    let b = bench();
    assert_eq!(a.dev.len(), b.dev.len());
    for (x, y) in a.dev.iter().zip(&b.dev) {
        assert_eq!(x.question.text, y.question.text);
        assert_eq!(x.gold, y.gold);
    }
    assert_eq!(a.databases, b.databases);
}

#[test]
fn vis_gold_charts_always_render() {
    let nv = nvbench_like::build(&NvBenchConfig {
        n_databases: 13,
        n_dev_databases: 3,
        n_train: 60,
        n_dev: 60,
        ..Default::default()
    });
    let engine = VisEngine::new();
    for ex in nv.train.iter().chain(&nv.dev) {
        let db = &nv.databases[ex.db];
        let chart = engine
            .execute(&ex.gold, db)
            .unwrap_or_else(|e| panic!("{}: {e}", ex.gold));
        // ascii rendering never panics and mentions the chart kind
        let ascii = chart.render_ascii();
        assert!(ascii.contains("chart"));
        // VQL text round-trips
        let reparsed = nli_vql::parse_vis(&ex.gold.to_string()).unwrap();
        assert_eq!(reparsed, ex.gold);
    }
}

#[test]
fn executor_agrees_with_itself_across_equivalent_spellings() {
    // comma-join and explicit-join spellings of the same query agree on
    // every generated database with a foreign key
    let b = bench();
    let engine = SqlEngine::new();
    let mut checked = 0;
    for db in &b.databases {
        let Some(fk) = db.schema.foreign_keys.first() else {
            continue;
        };
        let child = &db.schema.tables[fk.from.table].name;
        let parent = &db.schema.tables[fk.to.table].name;
        let fk_col = &db.schema.column(fk.from).name;
        let pk_col = &db.schema.column(fk.to).name;
        let join = format!(
            "SELECT COUNT(*) FROM {child} JOIN {parent} ON {child}.{fk_col} = {parent}.{pk_col}"
        );
        let comma = format!(
            "SELECT COUNT(*) FROM {child}, {parent} WHERE {child}.{fk_col} = {parent}.{pk_col}"
        );
        let a = engine.run_sql(&join, db).unwrap();
        let c = engine.run_sql(&comma, db).unwrap();
        assert!(
            a.same_result(&c),
            "join spellings disagree on {}",
            db.schema.name
        );
        checked += 1;
    }
    assert!(checked > 5);
}

proptest! {
    // whole-benchmark evaluation is expensive; a handful of generated
    // (thread count × corpus shape) points already covers uneven splits,
    // worker counts above the item count, and the degenerate 1-thread case
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn parallel_evaluation_equals_the_single_thread_oracle(
        threads in 1..=16usize,
        n_dev in 1..40usize,
        seed in 1..1000u64,
    ) {
        let bench = spider_like::build(&SpiderConfig {
            n_databases: 13,
            n_dev_databases: 3,
            n_train: 0,
            n_dev,
            seed,
            ..Default::default()
        });
        let parser = nli_text2sql::GrammarParser::new(nli_text2sql::GrammarConfig::llm_reasoner());
        let mut oracle = with_threads(1, || nli_metrics::evaluate_sql(&parser, &bench));
        let mut scores = with_threads(threads, || nli_metrics::evaluate_sql(&parser, &bench));
        // wall clock is the one field outside the determinism contract
        oracle.avg_micros = 0.0;
        scores.avg_micros = 0.0;
        prop_assert_eq!(&scores, &oracle, "threads={}", threads);
        prop_assert_eq!(scores.row(), oracle.row());
    }
}

#[test]
fn reasoner_inverts_the_clean_generation_channel() {
    // With lexical noise off, the NL channel and the analyzer/grounder are
    // inverse functions up to residual ambiguity: the world-knowledge
    // parser must recover the vast majority of gold programs.
    use nli_core::SemanticParser;
    let bench = spider_like::build(&SpiderConfig {
        n_databases: 16,
        n_dev_databases: 4,
        n_train: 0,
        n_dev: 120,
        style: nli_data::nl_gen::NlStyle {
            synonym_p: 0.0,
            implicit_col_p: 0.0,
            knowledge_p: 0.0,
        },
        ..Default::default()
    });
    let parser = nli_text2sql::GrammarParser::new(nli_text2sql::GrammarConfig::llm_reasoner());
    let engine = SqlEngine::new();
    let mut exec_ok = 0usize;
    for ex in &bench.dev {
        let db = &bench.databases[ex.db];
        if let Ok(pred) = parser.parse(&ex.question, db) {
            if let (Ok(a), Ok(b)) = (engine.execute(&pred, db), engine.execute(&ex.gold, db)) {
                exec_ok += usize::from(a.same_result(&b));
            }
        }
    }
    assert!(
        exec_ok * 100 >= bench.dev.len() * 85,
        "reasoner recovered only {exec_ok}/{} noiseless questions",
        bench.dev.len()
    );
}
