//! Differential testing of the plan-based executor against the reference
//! tree-walk interpreter.
//!
//! `nli-sql` executes queries in two stages (logical plan, then physical
//! operators — including hash joins and pushed-down scan filters), while
//! `nli_sql::interp` keeps the original single-pass tree-walk as a
//! reference implementation. The two must agree on every well-typed query:
//! same columns, same rows in the same order, same `ordered` flag — or the
//! same error outcome.
//!
//! Queries come from `nli-data::sql_gen`, the generator behind the
//! Spider-like corpora, so the distribution covers joins, aggregates,
//! grouping, HAVING, ordering, nesting (IN-subqueries), and set operators.

use nli_core::{Database, Prng};
use nli_data::spider_like::{self, SpiderConfig};
use nli_data::sql_gen::{plan_to_query, sample_plan, SqlProfile};
use nli_sql::interp::run_tree_walk;
use nli_sql::SqlEngine;
use proptest::prelude::*;
use std::sync::OnceLock;

/// The hard floor from the acceptance criteria.
const MIN_QUERIES: usize = 256;

fn corpus_databases() -> &'static Vec<Database> {
    static DBS: OnceLock<Vec<Database>> = OnceLock::new();
    DBS.get_or_init(|| {
        spider_like::build(&SpiderConfig {
            n_databases: 10,
            n_dev_databases: 2,
            n_train: 0,
            n_dev: 0,
            ..Default::default()
        })
        .databases
    })
}

/// Run one generated query through both executors and assert agreement.
/// Returns whether a query was actually drawn for this seed.
fn check_one(engine: &SqlEngine, seed: u64) -> bool {
    let dbs = corpus_databases();
    let db = &dbs[(seed % dbs.len() as u64) as usize];
    let mut rng = Prng::new(seed);
    let Some(plan) = sample_plan(db, &SqlProfile::spider(), &mut rng) else {
        return false;
    };
    let q = plan_to_query(db, &plan);
    let reference = run_tree_walk(&q, db);
    let planned = engine
        .prepare_ast(&q, &db.schema)
        .and_then(|p| p.execute(db));
    match (reference, planned) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.columns, b.columns, "columns diverged on {q}");
            assert_eq!(a.ordered, b.ordered, "ordered flag diverged on {q}");
            assert_eq!(
                a.rows, b.rows,
                "rows diverged on {q} (db {})",
                db.schema.name
            );
        }
        (Err(_), Err(_)) => {}
        (Ok(_), Err(e)) => panic!("plan pipeline failed where tree-walk succeeded on {q}: {e}"),
        (Err(e), Ok(_)) => panic!("tree-walk failed where plan pipeline succeeded on {q}: {e}"),
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Property form of the differential check: for any seed, the sampled
    /// well-typed query agrees between the two executors.
    #[test]
    fn plan_executor_and_tree_walk_agree_for_any_seed(seed in any::<u64>()) {
        let engine = SqlEngine::new();
        check_one(&engine, seed);
    }
}

#[test]
fn plan_executor_agrees_with_tree_walk_on_generated_queries() {
    let bench = spider_like::build(&SpiderConfig {
        n_databases: 12,
        n_dev_databases: 3,
        n_train: 0,
        n_dev: 0,
        ..Default::default()
    });
    let engine = SqlEngine::new();
    let profile = SqlProfile::spider();
    let mut rng = Prng::new(0xD1FF_E4EC);
    let mut checked = 0usize;

    for db in &bench.databases {
        // 24 queries per database over 15 databases comfortably clears the
        // 256-query floor even when some draws fail to sample.
        let mut drawn = 0usize;
        let mut attempts = 0usize;
        while drawn < 24 && attempts < 200 {
            attempts += 1;
            let Some(plan) = sample_plan(db, &profile, &mut rng) else {
                continue;
            };
            let q = plan_to_query(db, &plan);
            drawn += 1;

            let reference = run_tree_walk(&q, db);
            let planned = engine
                .prepare_ast(&q, &db.schema)
                .and_then(|p| p.execute(db));
            match (reference, planned) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.columns, b.columns, "columns diverged on {q}");
                    assert_eq!(a.ordered, b.ordered, "ordered flag diverged on {q}");
                    assert_eq!(
                        a.rows, b.rows,
                        "rows diverged on {q} (db {})",
                        db.schema.name
                    );
                }
                (Err(_), Err(_)) => {}
                (Ok(_), Err(e)) => {
                    panic!("plan pipeline failed where tree-walk succeeded on {q}: {e}")
                }
                (Err(e), Ok(_)) => {
                    panic!("tree-walk failed where plan pipeline succeeded on {q}: {e}")
                }
            }
            checked += 1;
        }
    }

    assert!(
        checked >= MIN_QUERIES,
        "differential test exercised only {checked} queries (need >= {MIN_QUERIES})"
    );
}

/// The same agreement must hold when the engine replays a cached plan: the
/// second execution of a query goes through the plan cache, and its result
/// must still match the reference interpreter.
#[test]
fn cached_plans_stay_faithful_to_the_reference() {
    let bench = spider_like::build(&SpiderConfig {
        n_databases: 6,
        n_dev_databases: 2,
        n_train: 0,
        n_dev: 0,
        ..Default::default()
    });
    let engine = SqlEngine::new();
    let profile = SqlProfile::wikisql();
    let mut rng = Prng::new(0xCAC4E);
    let mut checked = 0usize;

    for db in &bench.databases {
        let mut drawn = 0usize;
        let mut attempts = 0usize;
        while drawn < 8 && attempts < 80 {
            attempts += 1;
            let Some(plan) = sample_plan(db, &profile, &mut rng) else {
                continue;
            };
            let q = plan_to_query(db, &plan);
            drawn += 1;
            let sql = q.to_string();
            let Ok(reference) = run_tree_walk(&q, db) else {
                continue;
            };
            // run twice through the string API: the second hit is served
            // from the plan cache
            let first = engine.run_sql(&sql, db).unwrap();
            let second = engine.run_sql(&sql, db).unwrap();
            assert_eq!(reference.rows, first.rows, "first run diverged on {sql}");
            assert_eq!(first.rows, second.rows, "cached replay diverged on {sql}");
            checked += 1;
        }
    }
    assert!(checked >= 32, "only {checked} cached replays checked");
    assert!(
        engine.cache_stats().hits >= checked as u64,
        "second executions should be cache hits"
    );
}
