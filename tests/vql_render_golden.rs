//! Golden-snapshot tests for the VQL renderer (ISSUE 4 satellite).
//!
//! Each case executes a VQL program on a fixed hand-built database and
//! compares the full rendered artifact — the ASCII chart plus the
//! Vega-Lite-style spec JSON — against a committed plain-text fixture in
//! `tests/golden/`. Regenerate fixtures after an intentional renderer
//! change with:
//!
//! ```text
//! NLI_UPDATE_GOLDEN=1 cargo test -p nli-fuzz --test vql_render_golden
//! ```
//!
//! Coverage: every chart kind (bar, line, pie, scatter), the BIN
//! transform, and the axis/encoding edge cases — empty result, single
//! row, all-NULL y column, NULL x labels, quantitative vs nominal vs
//! temporal x inference.

use nli_core::{Column, DataType, Database, Date, Schema, Table, Value};
use nli_vql::VisEngine;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Compare (or, under NLI_UPDATE_GOLDEN=1, rewrite) one fixture.
fn assert_golden(name: &str, rendered: &str) {
    let path = golden_dir().join(format!("{name}.txt"));
    if std::env::var_os("NLI_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden fixture {path:?} ({e}); run with NLI_UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        expected, rendered,
        "golden mismatch for {name}; if the change is intentional rerun with NLI_UPDATE_GOLDEN=1"
    );
}

/// Full rendered artifact: ASCII chart, then the spec JSON.
fn artifact(vql: &str, db: &Database) -> String {
    let chart = VisEngine::new().run_vql(vql, db).unwrap();
    format!(
        "{}\n---\n{}\n",
        chart.render_ascii().trim_end(),
        chart.spec.to_vega_lite()
    )
}

/// A fixed retail-flavoured database exercising every value type, with
/// NULLs in both a measure column and a dimension column.
fn db() -> Database {
    let schema = Schema::new(
        "golden_shop",
        vec![Table::new(
            "sales",
            vec![
                Column::new("id", DataType::Int).primary(),
                Column::new("category", DataType::Text),
                Column::new("amount", DataType::Float),
                Column::new("rating", DataType::Float),
                Column::new("sold_on", DataType::Date),
            ],
        )],
    );
    let mut db = Database::empty(schema);
    let rows: Vec<Vec<Value>> = vec![
        vec![
            Value::Int(1),
            Value::Text("Tools".into()),
            Value::Float(120.0),
            Value::Null,
            Value::Date(Date::new(2024, 1, 5)),
        ],
        vec![
            Value::Int(2),
            Value::Text("Tools".into()),
            Value::Float(80.5),
            Value::Null,
            Value::Date(Date::new(2024, 2, 11)),
        ],
        vec![
            Value::Int(3),
            Value::Text("Toys".into()),
            Value::Float(45.25),
            Value::Null,
            Value::Date(Date::new(2024, 2, 20)),
        ],
        vec![
            Value::Int(4),
            Value::Null,
            Value::Float(10.0),
            Value::Null,
            Value::Date(Date::new(2024, 4, 2)),
        ],
        vec![
            Value::Int(5),
            Value::Text("Garden".into()),
            Value::Float(64.0),
            Value::Null,
            Value::Date(Date::new(2024, 4, 19)),
        ],
    ];
    db.insert_all("sales", rows).unwrap();
    db
}

#[test]
fn golden_bar_sum_by_category() {
    // nominal x with a NULL dimension label among the groups
    assert_golden(
        "bar_sum_by_category",
        &artifact(
            "VISUALIZE BAR SELECT category, SUM(amount) FROM sales GROUP BY category",
            &db(),
        ),
    );
}

#[test]
fn golden_line_amount_over_dates() {
    // temporal x inference (all-Date column), unordered input sorted by x
    assert_golden(
        "line_amount_over_dates",
        &artifact("VISUALIZE LINE SELECT sold_on, amount FROM sales", &db()),
    );
}

#[test]
fn golden_line_month_bin() {
    // BIN transform: buckets summed and ordered, time_unit in the spec
    assert_golden(
        "line_month_bin",
        &artifact(
            "VISUALIZE LINE SELECT sold_on, amount FROM sales BIN sold_on BY month",
            &db(),
        ),
    );
}

#[test]
fn golden_pie_count_by_category() {
    assert_golden(
        "pie_count_by_category",
        &artifact(
            "VISUALIZE PIE SELECT category, COUNT(*) FROM sales GROUP BY category",
            &db(),
        ),
    );
}

#[test]
fn golden_scatter_amount_vs_id() {
    // quantitative x inference
    assert_golden(
        "scatter_amount_vs_id",
        &artifact("VISUALIZE SCATTER SELECT id, amount FROM sales", &db()),
    );
}

#[test]
fn golden_bar_empty_result() {
    // empty result: renderer must produce the "(no data)" form, and the
    // spec must still carry the declared encodings
    assert_golden(
        "bar_empty_result",
        &artifact(
            "VISUALIZE BAR SELECT category, amount FROM sales WHERE amount < 0",
            &db(),
        ),
    );
}

#[test]
fn golden_scatter_empty_result() {
    // scatter's quantitative-x validation must not fire on zero points
    assert_golden(
        "scatter_empty_result",
        &artifact(
            "VISUALIZE SCATTER SELECT category, amount FROM sales WHERE amount < 0",
            &db(),
        ),
    );
}

#[test]
fn golden_bar_single_row() {
    assert_golden(
        "bar_single_row",
        &artifact(
            "VISUALIZE BAR SELECT category, amount FROM sales WHERE id = 1",
            &db(),
        ),
    );
}

#[test]
fn golden_bar_all_null_y() {
    // all-NULL measure column: every y renders as 0 with no bar glyphs
    assert_golden(
        "bar_all_null_y",
        &artifact("VISUALIZE BAR SELECT category, rating FROM sales", &db()),
    );
}

#[test]
fn golden_pie_all_null_y() {
    // zero total: percentages are all 0.0% with the minimum one glyph
    assert_golden(
        "pie_all_null_y",
        &artifact("VISUALIZE PIE SELECT category, rating FROM sales", &db()),
    );
}

#[test]
fn golden_bar_weekday_bin() {
    assert_golden(
        "bar_weekday_bin",
        &artifact(
            "VISUALIZE BAR SELECT sold_on, amount FROM sales BIN sold_on BY weekday",
            &db(),
        ),
    );
}

#[test]
fn fixtures_are_committed_for_every_case() {
    // guard against a fixture silently vanishing from the repo: the
    // directory must contain exactly the cases above (explain_* fixtures
    // belong to tests/explain_golden.rs, which carries its own guard)
    let mut names: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("tests/golden missing")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| !n.starts_with("explain_"))
        .collect();
    names.sort();
    let expected = [
        "bar_all_null_y.txt",
        "bar_empty_result.txt",
        "bar_single_row.txt",
        "bar_sum_by_category.txt",
        "bar_weekday_bin.txt",
        "line_amount_over_dates.txt",
        "line_month_bin.txt",
        "pie_all_null_y.txt",
        "pie_count_by_category.txt",
        "scatter_amount_vs_id.txt",
        "scatter_empty_result.txt",
    ];
    assert_eq!(names, expected);
}
