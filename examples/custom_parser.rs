//! Extending the framework: implement your own semantic parser against the
//! `SemanticParser` trait and evaluate it with the standard harness.
//!
//! The toy parser here handles exactly one pattern — "how many X are
//! there" — and refuses everything else; the point is the integration
//! surface: anything implementing `SemanticParser<Expr = Query>` plugs into
//! `nli_metrics::evaluate_sql`, the system architectures, and the bench
//! harnesses unchanged.
//!
//! Run with: `cargo run --example custom_parser`

use nli_core::{Database, NlQuestion, NliError, Result, SemanticParser};
use nli_data::wikisql_like::{self, WikiSqlConfig};
use nli_metrics::evaluate_sql;
use nli_nlu::tokenize_words;
use nli_sql::{Expr, Query, Select, SelectItem};

/// A deliberately minimal parser: COUNT(*) questions only.
struct CountOnlyParser;

impl SemanticParser for CountOnlyParser {
    type Expr = Query;

    fn parse(&self, question: &NlQuestion, db: &Database) -> Result<Query> {
        let words = tokenize_words(&question.text);
        let is_count = words.windows(2).any(|w| w[0] == "how" && w[1] == "many")
            || words.first().map(String::as_str) == Some("count");
        if !is_count {
            return Err(NliError::Parse("I only do counting".into()));
        }
        // find the table whose display form appears in the question
        let table = db
            .schema
            .tables
            .iter()
            .find(|t| {
                words
                    .iter()
                    .any(|w| nli_nlu::stem(w) == nli_nlu::stem(&t.display))
            })
            .ok_or_else(|| NliError::Parse("no table mentioned".into()))?;
        Ok(Query::single(Select::simple(
            &table.name,
            vec![SelectItem::plain(Expr::count_star())],
        )))
    }

    fn name(&self) -> &str {
        "count-only"
    }
}

fn main() {
    let bench = wikisql_like::build(&WikiSqlConfig {
        n_databases: 40,
        n_train: 0,
        n_dev: 120,
        ..Default::default()
    });
    let scores = evaluate_sql(&CountOnlyParser, &bench);
    println!("custom parser on {}:", bench.name);
    println!("{}", scores.row());
    println!(
        "\nthe parser answers only unfiltered count questions, so execution accuracy\n\
         equals roughly the share of such questions in the corpus — everything else\n\
         is refused or misses the WHERE clause. Swap in a real implementation and\n\
         the same harness, metrics, and system architectures apply."
    );
}
