//! Evaluate several parser families on a freshly generated cross-domain
//! benchmark — a miniature of the Table 2 harness, showing the evaluation
//! API end-to-end: generate → train → parse → score with every metric.
//!
//! Run with: `cargo run --release --example benchmark_eval`

use nli_data::spider_like::{self, SpiderConfig};
use nli_lm::{DemoSelection, LlmKind, PromptStrategy, TrainingExample};
use nli_metrics::evaluate_sql;
use nli_text2sql::{GrammarConfig, GrammarParser, LlmParser, PlmParser, RuleBasedParser};

fn main() {
    // a small cross-domain benchmark with unseen dev databases
    let bench = spider_like::build(&SpiderConfig {
        n_databases: 20,
        n_dev_databases: 5,
        n_train: 120,
        n_dev: 80,
        ..Default::default()
    });
    println!(
        "benchmark: {} ({} train / {} dev over {} databases, {} domains)\n",
        bench.name,
        bench.train.len(),
        bench.dev.len(),
        bench.databases.len(),
        bench.domain_count()
    );

    // supervised training data for the PLM family
    let training: Vec<TrainingExample> = bench
        .train
        .iter()
        .map(|e| TrainingExample {
            question: e.question.text.clone(),
            sql: e.gold.clone(),
        })
        .collect();
    let mut plm = PlmParser::new();
    plm.train(&training);

    let rule = RuleBasedParser::new();
    let grammar = GrammarParser::new(GrammarConfig::neural());
    let llm = LlmParser::new(
        LlmKind::Frontier,
        PromptStrategy::Decomposed {
            k: 4,
            selection: DemoSelection::Similarity,
        },
        7,
    );

    println!("{:<26} {:>4}  scores", "parser", "n");
    println!("{}", "-".repeat(100));
    for scores in [
        evaluate_sql(&rule, &bench),
        evaluate_sql(&grammar, &bench),
        evaluate_sql(&plm, &bench),
        evaluate_sql(&llm, &bench),
    ] {
        println!("{}", scores.row());
    }
    println!(
        "\n(EM = exact set match, EX = execution accuracy, comp = partial component\n\
         credit, valid = executable-output rate; expect rule < grammar < PLM,\n\
         with the LLM competitive out of the box)"
    );
}
