//! The business-analyst scenario from the paper's introduction: "a business
//! analyst might use natural language to query a sales database for total
//! revenue by product category ... and then request a bar chart showing the
//! revenue breakdown to include in their quarterly report."
//!
//! Uses the interactive [`Session`] (the Fig. 1 feedback loop) over a
//! generated retail database, mixing data questions, refinements, and chart
//! requests in one conversation.
//!
//! Run with: `cargo run --example sales_report`

use nli_core::{NlQuestion, Prng};
use nli_data::domains;
use nli_data::schema_gen::{generate_database, DbGenConfig};
use nli_systems::{Session, SystemOutput};

fn main() {
    // a realistic retail database from the generator substrate
    let domain = domains::domain("retail").expect("built-in domain");
    let cfg = DbGenConfig {
        min_tables: 3,
        optional_col_p: 1.0,
        rows: (30, 30),
    };
    let db = generate_database(domain, 0, &cfg, &mut Prng::new(2025));
    println!(
        "database: {} ({} rows)\n{}",
        db.schema.name,
        db.row_count(),
        db.schema.describe()
    );

    let mut session = Session::new();
    let turns = [
        // the quarterly-report conversation
        "What is the total amount of sales for each product category?",
        "Show a bar chart of the total amount for each product category.",
        "Make it a pie chart instead.",
        // drill-down with conversational refinement
        "How many sales are there?",
        "Only those with amount greater than 1000.",
        "What is the average price of products?",
    ];

    for (i, text) in turns.iter().enumerate() {
        println!("({}) analyst: {text}", i + 1);
        match session.ask(&NlQuestion::new(*text), &db) {
            Ok(response) => {
                if let Some(p) = &response.program {
                    println!("    program: {p}");
                }
                match response.output {
                    SystemOutput::Table(rs) => {
                        println!("    {} row(s): {}", rs.rows.len(), rs.columns.join(" | "));
                        for row in rs.rows.iter().take(5) {
                            let cells: Vec<String> = row.iter().map(|v| v.canonical()).collect();
                            println!("      {}", cells.join(" | "));
                        }
                    }
                    SystemOutput::Chart(chart) => {
                        for line in chart.render_ascii().lines() {
                            println!("      {line}");
                        }
                    }
                    SystemOutput::Clarification(cands) => {
                        println!("    did you mean:");
                        for c in cands {
                            println!("      - {c}");
                        }
                    }
                }
            }
            Err(e) => println!("    (system could not answer: {e})"),
        }
        println!();
    }

    println!("-- report appendix: full conversation transcript --");
    for e in session.history() {
        println!("  {} => {}", e.question, e.program);
    }
}
