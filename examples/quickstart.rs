//! Quickstart — the paper's Fig. 2 worked example.
//!
//! Builds the sales database from the figure, then runs the figure's two
//! requests through the public API: a natural-language *query* ("total
//! amount of sales per quarter") and a natural-language *visualization*
//! ("bar chart of sales by quarter"), printing the SQL / VQL functional
//! representations and the executed results.
//!
//! Run with: `cargo run --example quickstart`

use nli_core::{
    Column, DataType, Database, Date, ExecutionEngine, NlQuestion, Schema, SemanticParser, Table,
};
use nli_sql::SqlEngine;
use nli_text2sql::{GrammarConfig, GrammarParser};
use nli_text2vis::RuleVisParser;
use nli_vql::VisEngine;

fn sales_database() -> Database {
    let schema = Schema::new(
        "sales_db",
        vec![Table::new(
            "sales",
            vec![
                Column::new("id", DataType::Int).primary(),
                Column::new("product", DataType::Text),
                Column::new("amount", DataType::Float),
                Column::new("sold_on", DataType::Date).with_display("sale date"),
            ],
        )
        .with_display("sale")],
    );
    let mut db = Database::empty(schema);
    let rows = [
        (1, "Widget", 120.0, Date::new(2025, 1, 15)),
        (2, "Widget", 180.0, Date::new(2025, 2, 3)),
        (3, "Gadget", 340.0, Date::new(2025, 4, 20)),
        (4, "Gadget", 95.0, Date::new(2025, 5, 2)),
        (5, "Widget", 210.0, Date::new(2025, 7, 14)),
        (6, "Gadget", 400.0, Date::new(2025, 10, 9)),
    ];
    for (id, product, amount, date) in rows {
        db.insert(
            "sales",
            vec![id.into(), product.into(), amount.into(), date.into()],
        )
        .unwrap();
    }
    db
}

fn main() {
    let db = sales_database();
    println!("schema:\n{}", db.schema.describe());

    // ---- Fig. 2, left: natural language -> SQL -> data -------------------
    let parser = GrammarParser::new(GrammarConfig::neural());
    let question = NlQuestion::new("What is the total amount of sales?");
    let sql = parser.parse(&question, &db).expect("parse");
    println!("Q: {question}");
    println!("SQL: {sql}");
    let result = SqlEngine::new().execute(&sql, &db).expect("execute");
    println!("result: {}\n", result.rows[0][0]);

    // a filtered variant, showing value grounding
    let question = NlQuestion::new("How many sales with amount greater than 150 are there?");
    let sql = parser.parse(&question, &db).expect("parse");
    println!("Q: {question}");
    println!("SQL: {sql}");
    let result = SqlEngine::new().execute(&sql, &db).expect("execute");
    println!("result: {}\n", result.rows[0][0]);

    // ---- Fig. 2, right: natural language -> VQL -> chart -------------------
    let vis = RuleVisParser::new();
    let request =
        NlQuestion::new("Draw a bar chart of amount of sales over sale date binned by quarter.");
    let vql = vis.parse(&request, &db).expect("parse vis");
    println!("Q: {request}");
    println!("VQL: {vql}");
    let chart = VisEngine::new().execute(&vql, &db).expect("render");
    println!("{}", chart.render_ascii());

    // the chart also carries a Vega-Lite-style specification
    println!(
        "Vega-Lite spec:\n{}",
        serde_json::to_string_pretty(&chart.spec.to_vega_lite()).unwrap()
    );
}
