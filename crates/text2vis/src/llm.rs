//! Chat2VIS/NL2INTERFACE-class LLM-prompted visualization.
//!
//! The internal reasoner grounds the request with full world knowledge,
//! then the simulated LLM corrupts the emitted program at strategy-scaled
//! rates. Besides the SQL-level failure modes, the vis task adds a chart
//! confusion mode (emitting a bar where a pie was asked), which we tie to
//! the profile's aggregate error rate.

use crate::rule::ground_vis;
use crate::vis_analysis::analyze_vis;
use nli_core::{Database, NlQuestion, NliError, Prng, Result, SemanticParser};
use nli_lm::{llm::corrupt_query, LlmKind, Prompt, PromptStrategy, SimulatedLlm};
use nli_text2sql::{GrammarConfig, GrammarParser};
use nli_vql::{parse_vis, ChartType, VisQuery};

/// LLM-prompted Text-to-Vis parser.
pub struct LlmVisParser {
    gp: GrammarParser,
    model: SimulatedLlm,
    strategy: PromptStrategy,
    seed: u64,
    name: String,
}

impl LlmVisParser {
    pub fn new(kind: LlmKind, strategy: PromptStrategy, seed: u64) -> LlmVisParser {
        LlmVisParser {
            gp: GrammarParser::new(GrammarConfig::llm_reasoner().named("vis-llm")),
            model: SimulatedLlm::new(kind),
            strategy,
            seed,
            name: format!("vis-llm-{}-{}", kind.name(), strategy.name()),
        }
    }

    pub fn model(&self) -> &SimulatedLlm {
        &self.model
    }

    fn question_rng(&self, text: &str) -> Prng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        Prng::new(self.seed ^ h)
    }
}

impl SemanticParser for LlmVisParser {
    type Expr = VisQuery;

    fn parse(&self, question: &NlQuestion, db: &Database) -> Result<VisQuery> {
        let a = analyze_vis(&question.text);
        let intent = ground_vis(&self.gp, &a, db)?;
        let mut rng = self.question_rng(&question.text);
        let prompt = Prompt::build(
            &question.text,
            question.evidence.as_deref(),
            db,
            &[],
            0,
            nli_lm::DemoSelection::Random,
            &mut rng,
        );
        // meter usage and corrupt the data query
        let profile = self.model.effective_profile(self.strategy);
        let _ = self.model.generate(
            &intent.query,
            &db.schema,
            &prompt,
            self.strategy,
            &mut rng.fork(1),
        );
        let sql_text = corrupt_query(&intent.query, &db.schema, &profile, &mut rng);

        // chart confusion at the aggregate-error rate
        let chart = if rng.chance(profile.aggregate) {
            let all = ChartType::ALL;
            let i = all.iter().position(|c| *c == intent.chart).unwrap_or(0);
            all[(i + 1 + rng.below(all.len() - 1)) % all.len()]
        } else {
            intent.chart
        };

        let mut text = format!("VISUALIZE {chart} {sql_text}");
        if let Some(b) = &intent.bin {
            text.push_str(&format!(" BIN {} BY {}", b.column, b.unit.name()));
        }
        parse_vis(&text).map_err(|e| NliError::Model(format!("degenerate vis sample: {e}")))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Schema, Table};

    fn db() -> Database {
        let schema = Schema::new(
            "d",
            vec![Table::new(
                "sales",
                vec![
                    Column::new("category", DataType::Text),
                    Column::new("amount", DataType::Float),
                ],
            )
            .with_display("sale")],
        );
        let mut d = Database::empty(schema);
        d.insert("sales", vec!["Tools".into(), 5.0.into()]).unwrap();
        d
    }

    #[test]
    fn frontier_zero_shot_mostly_clean() {
        let d = db();
        let gold = "VISUALIZE BAR SELECT category, SUM(amount) FROM sales GROUP BY category";
        let mut hits = 0;
        for seed in 0..20 {
            let p = LlmVisParser::new(LlmKind::Frontier, PromptStrategy::ZeroShot, seed);
            let q = NlQuestion::new("Show a bar chart of the total amount for each category.");
            if let Ok(v) = p.parse(&q, &d) {
                if v.to_string() == gold {
                    hits += 1;
                }
            }
        }
        assert!(hits >= 14, "only {hits}/20 clean");
    }

    #[test]
    fn deterministic_per_seed_and_question() {
        let p = LlmVisParser::new(LlmKind::Codex, PromptStrategy::ZeroShot, 5);
        let d = db();
        let q = NlQuestion::new("Show a bar chart of the total amount for each category.");
        let a = p.parse(&q, &d).map(|v| v.to_string()).ok();
        let b = p.parse(&q, &d).map(|v| v.to_string()).ok();
        assert_eq!(a, b);
    }

    #[test]
    fn usage_is_metered() {
        let p = LlmVisParser::new(LlmKind::ChatGpt, PromptStrategy::ZeroShot, 1);
        let d = db();
        let q = NlQuestion::new("Show a bar chart of the total amount for each category.");
        let _ = p.parse(&q, &d);
        assert!(p.model().usage().calls >= 1);
    }

    #[test]
    fn unknown_requests_error_before_the_model_runs() {
        let p = LlmVisParser::new(LlmKind::ChatGpt, PromptStrategy::ZeroShot, 1);
        assert!(p.parse(&NlQuestion::new("draw me a sheep"), &db()).is_err());
    }
}
