//! # nli-text2vis
//!
//! One working Text-to-Vis parser per cell of the survey's §4.2 taxonomy:
//!
//! | Stage | Family | Parser here | Real-world exemplars |
//! |---|---|---|---|
//! | Traditional | rule/template | [`rule::RuleVisParser`] | DataTone, NL4DV, ADVISor |
//! | Neural | seq2seq memorizer | [`seq2vis_like::Seq2VisParser`] | Data2Vis, Seq2Vis |
//! | Neural | transformer + vis-aware decoding | [`ncnet_like::NcNetParser`] | ncNet |
//! | Neural | retrieval–generation | [`rgvisnet_like::RgVisNetParser`] | RGVisNet |
//! | FM / LLM | prompted LLM | [`llm::LlmVisParser`] | Chat2VIS, NL2INTERFACE |
//! | — | conversational vis | [`dialogue::VisDialogueParser`] | MMCoVisNet, Dial-NVBench systems |
//!
//! All parsers emit [`nli_vql::VisQuery`] programs; the shared question
//! analysis lives in [`vis_analysis`].

pub mod dialogue;
pub mod llm;
pub mod ncnet_like;
pub mod rgvisnet_like;
pub mod rule;
pub mod seq2vis_like;
pub mod vis_analysis;

pub use dialogue::VisDialogueParser;
pub use llm::LlmVisParser;
pub use ncnet_like::NcNetParser;
pub use rgvisnet_like::RgVisNetParser;
pub use rule::RuleVisParser;
pub use seq2vis_like::Seq2VisParser;
pub use vis_analysis::{analyze_vis, VisAnalysis, VisShape};
