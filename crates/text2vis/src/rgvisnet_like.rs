//! RGVisNet-class parsing: retrieval + grammar-aware revision.
//!
//! RGVisNet retrieves a similar VQL from a codebase of past queries and
//! revises it against the target question/schema with a grammar-aware
//! decoder. Here: the primary path grounds the request directly with the
//! strongest linker (synonyms + embeddings — the retrieval component's
//! "prototype knowledge"); when direct grounding fails, the parser falls
//! back to the retrieved prototype and re-grounds its identifiers against
//! the target schema. The two mechanisms together are why this family
//! out-scores pure generation (Table 2: RGVisNet 44.9 vs ncNet 25.78).

use crate::rule::ground_vis;
use crate::vis_analysis::analyze_vis;
use nli_core::{Database, NlQuestion, NliError, Result, SemanticParser};
use nli_nlu::Embedding;
use nli_text2sql::{GrammarConfig, GrammarParser};
use nli_vql::VisQuery;

/// A codebase entry.
struct Prototype {
    embedding: Embedding,
    vql: VisQuery,
}

/// RGVisNet-class parser.
pub struct RgVisNetParser {
    gp: GrammarParser,
    codebase: Vec<Prototype>,
}

impl RgVisNetParser {
    pub fn new() -> RgVisNetParser {
        RgVisNetParser {
            gp: GrammarParser::new(GrammarConfig::llm_reasoner().named("rgvisnet")),
            codebase: Vec::new(),
        }
    }

    /// Index a codebase of (question, VQL) prototypes.
    pub fn index(&mut self, pairs: impl IntoIterator<Item = (String, VisQuery)>) {
        for (q, vql) in pairs {
            self.codebase.push(Prototype {
                embedding: Embedding::of(&q),
                vql,
            });
        }
    }

    pub fn codebase_size(&self) -> usize {
        self.codebase.len()
    }

    fn retrieve(&self, question: &str) -> Option<&Prototype> {
        let q = Embedding::of(question);
        self.codebase
            .iter()
            .max_by(|a, b| q.cosine(&a.embedding).total_cmp(&q.cosine(&b.embedding)))
    }

    /// Revise a retrieved prototype: re-ground its table and column
    /// identifiers against the target schema.
    fn revise(&self, proto: &VisQuery, db: &Database) -> Option<VisQuery> {
        let mut v = proto.clone();
        // re-ground the (single) FROM table: exact/lexical match first,
        // else the table that can ground the most prototype columns
        let table_name = v.query.select.from.first()?.name.clone();
        let mut proto_cols: Vec<String> = Vec::new();
        nli_lm::walk_exprs(&v.query, &mut |e| {
            if let nli_sql::Expr::Column(c) = e {
                proto_cols.push(c.column.replace('_', " "));
            }
        });
        let t = self
            .gp
            .ground_table(&table_name.replace('_', " "), db)
            .or_else(|| db.schema.table_index(&table_name))
            .or_else(|| {
                let mut best: Option<(usize, usize)> = None; // (hits, table)
                for t in 0..db.schema.tables.len() {
                    let hits = proto_cols
                        .iter()
                        .filter(|p| self.gp.ground_column(p, db, &[t], t, false).is_some())
                        .count();
                    if hits > 0 && best.is_none_or(|(bh, _)| hits > bh) {
                        best = Some((hits, t));
                    }
                }
                best.map(|(_, t)| t)
            })?;
        let new_table = db.schema.tables[t].name.clone();
        v.query.select.from[0].name = new_table;
        // re-ground every column identifier within that table
        let mut ok = true;
        let remap = |name: &str, gp: &GrammarParser| -> Option<String> {
            let phrase = name.replace('_', " ");
            gp.ground_column(&phrase, db, &[t], t, false)
                .map(|r| db.schema.column(r).name.clone())
        };
        nli_lm::walk_exprs_mut(&mut v.query, &mut |e| {
            if let nli_sql::Expr::Column(c) = e {
                match remap(&c.column, &self.gp) {
                    Some(new) => {
                        c.column = new;
                        c.table = None;
                    }
                    None => ok = false,
                }
            }
        });
        if let Some(b) = &mut v.bin {
            match remap(&b.column.column, &self.gp) {
                Some(new) => b.column = nli_sql::ColName::new(&new),
                None => ok = false,
            }
        }
        ok.then_some(v)
    }
}

impl Default for RgVisNetParser {
    fn default() -> Self {
        RgVisNetParser::new()
    }
}

impl SemanticParser for RgVisNetParser {
    type Expr = VisQuery;

    fn parse(&self, question: &NlQuestion, db: &Database) -> Result<VisQuery> {
        let a = analyze_vis(&question.text);
        // primary: direct grounding with full world knowledge
        if let Ok(v) = ground_vis(&self.gp, &a, db) {
            return Ok(v);
        }
        // fallback: retrieve a prototype and revise it
        if let Some(proto) = self.retrieve(&question.text) {
            if let Some(mut v) = self.revise(&proto.vql, db) {
                if let Some(chart) = a.chart {
                    v.chart = chart;
                }
                return Ok(v);
            }
        }
        Err(NliError::Parse(
            "neither grounding nor retrieval succeeded".into(),
        ))
    }

    fn name(&self) -> &str {
        "rgvisnet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Schema, Table};
    use nli_vql::parse_vis;

    fn db() -> Database {
        let schema = Schema::new(
            "d",
            vec![Table::new(
                "projects",
                vec![
                    Column::new("department", DataType::Text),
                    Column::new("cost", DataType::Float),
                ],
            )
            .with_display("project")],
        );
        let mut d = Database::empty(schema);
        d.insert("projects", vec!["research".into(), 100.0.into()])
            .unwrap();
        d
    }

    #[test]
    fn direct_grounding_handles_synonyms() {
        let p = RgVisNetParser::new();
        // "division" is a synonym of "department" in the lexicon
        let q = NlQuestion::new("Show a bar chart of the total cost for each division.");
        let v = p.parse(&q, &db()).unwrap();
        assert_eq!(
            v.to_string(),
            "VISUALIZE BAR SELECT department, SUM(cost) FROM projects GROUP BY department"
        );
    }

    #[test]
    fn retrieval_fallback_revises_prototypes() {
        let mut p = RgVisNetParser::new();
        p.index(vec![(
            "visualize spending by department".to_string(),
            parse_vis(
                "VISUALIZE BAR SELECT department, SUM(cost) FROM budgets GROUP BY department",
            )
            .unwrap(),
        )]);
        assert_eq!(p.codebase_size(), 1);
        // the request shape is unrecognizable to the analyzer, forcing the
        // retrieval path; the prototype's table "budgets" re-grounds onto
        // "projects"
        let q = NlQuestion::new("visualize spending by department please");
        let v = p.parse(&q, &db()).unwrap();
        assert!(v.to_string().contains("FROM projects"), "{v}");
    }

    #[test]
    fn empty_codebase_and_unknown_request_errors() {
        let p = RgVisNetParser::new();
        assert!(p.parse(&NlQuestion::new("hello world"), &db()).is_err());
    }
}
