//! Rule/template Text-to-Vis (DataTone/NL4DV/ADVISor-class) and the shared
//! grounding core the neural-stage parsers reuse.
//!
//! The rule parser grounds the [`VisAnalysis`] sketch with the traditional
//! lexical linker and assembles the VQL through fixed templates; when the
//! chart type is not stated it falls back to NL4DV-style recommendation by
//! data type (nominal×quantitative → bar, quantitative×quantitative →
//! scatter, temporal x → line).

use crate::vis_analysis::{analyze_vis, VisAnalysis, VisShape};
use nli_core::{ColumnRef, DataType, Database, NlQuestion, NliError, Result, SemanticParser};
use nli_sql::{AggFunc, BinOp, ColName, Expr, Query, Select, SelectItem};
use nli_text2sql::{GrammarConfig, GrammarParser};
use nli_vql::{BinUnit, ChartType, VisQuery};

/// Ground a vis sketch into a [`VisQuery`] using `gp`'s linker. Shared by
/// the rule, ncNet and RGVisNet parsers (they differ in `gp`'s config).
pub(crate) fn ground_vis(gp: &GrammarParser, a: &VisAnalysis, db: &Database) -> Result<VisQuery> {
    // pick the table that can ground the shape's phrases
    let pick_table = |phrases: &[&str], hint: Option<&str>| -> Option<usize> {
        if let Some(h) = hint {
            if let Some(t) = gp.ground_table(h, db) {
                return Some(t);
            }
        }
        let mut best: Option<(usize, usize)> = None; // (hits, table)
        for t in 0..db.schema.tables.len() {
            let hits = phrases
                .iter()
                .filter(|p| gp.ground_column(p, db, &[t], t, false).is_some())
                .count();
            if hits > 0 && best.is_none_or(|(bh, _)| hits > bh) {
                best = Some((hits, t));
            }
        }
        best.map(|(_, t)| t)
    };

    let col_expr = |r: ColumnRef| Expr::Column(ColName::new(&db.schema.column(r).name));

    let (chart_default, query, bin): (ChartType, Query, Option<(ColumnRef, BinUnit)>) =
        match &a.shape {
            VisShape::Grouped {
                func,
                y_phrase,
                key_phrase,
                table_phrase,
            } => {
                let mut phrases: Vec<&str> = vec![key_phrase.as_str()];
                if let Some(y) = y_phrase {
                    phrases.push(y.as_str());
                }
                // single-table grounding first (the nvBench shape), else a
                // one-hop FK join when the measure and the key live on
                // different tables (the paper's Fig. 2 "revenue by product
                // category" shape)
                let select = ground_grouped_single(
                    gp,
                    a,
                    db,
                    *func,
                    y_phrase.as_deref(),
                    key_phrase,
                    pick_table(&phrases, table_phrase.as_deref()),
                )
                .or_else(|| ground_grouped_joined(gp, db, *func, y_phrase.as_deref()?, key_phrase))
                .ok_or_else(|| NliError::Parse("cannot ground the grouped chart".into()))?;
                (ChartType::Bar, Query::single(select), None)
            }
            VisShape::Pair {
                x_phrase,
                y_phrase,
                table_phrase,
            } => {
                let t = pick_table(&[x_phrase, y_phrase], table_phrase.as_deref())
                    .ok_or_else(|| NliError::Parse("no table grounds the chart".into()))?;
                let x = gp
                    .ground_column(x_phrase, db, &[t], t, false)
                    .ok_or_else(|| NliError::Parse("cannot ground x".into()))?;
                let y = gp
                    .ground_column(y_phrase, db, &[t], t, false)
                    .ok_or_else(|| NliError::Parse("cannot ground y".into()))?;
                let mut s = Select::simple(
                    &db.schema.tables[t].name,
                    vec![
                        SelectItem::plain(col_expr(x)),
                        SelectItem::plain(col_expr(y)),
                    ],
                );
                attach_conds(gp, a, db, t, &mut s);
                (ChartType::Scatter, Query::single(s), None)
            }
            VisShape::Temporal {
                y_phrase,
                date_phrase,
                unit,
                table_phrase,
            } => {
                let t = pick_table(&[y_phrase, date_phrase], table_phrase.as_deref())
                    .ok_or_else(|| NliError::Parse("no table grounds the chart".into()))?;
                let date = gp
                    .ground_column(date_phrase, db, &[t], t, false)
                    .filter(|r| db.schema.column(*r).dtype == DataType::Date)
                    .or_else(|| {
                        // fall back to the table's (unique) date column
                        db.schema.tables[t]
                            .columns
                            .iter()
                            .position(|c| c.dtype == DataType::Date)
                            .map(|ci| ColumnRef {
                                table: t,
                                column: ci,
                            })
                    })
                    .ok_or_else(|| NliError::Parse("cannot ground the date axis".into()))?;
                let y = gp
                    .ground_column(y_phrase, db, &[t], t, false)
                    .ok_or_else(|| NliError::Parse("cannot ground y".into()))?;
                let mut s = Select::simple(
                    &db.schema.tables[t].name,
                    vec![
                        SelectItem::plain(col_expr(date)),
                        SelectItem::plain(col_expr(y)),
                    ],
                );
                attach_conds(gp, a, db, t, &mut s);
                (ChartType::Line, Query::single(s), Some((date, *unit)))
            }
            VisShape::Unknown => return Err(NliError::Parse("unrecognized chart request".into())),
        };

    let chart = a.chart.unwrap_or(chart_default);
    let mut v = VisQuery::new(chart, query);
    if let Some((date, unit)) = bin {
        v = v.with_bin(ColName::new(&db.schema.column(date).name), unit);
    }
    Ok(v)
}

/// Single-table grounding of a grouped chart.
fn ground_grouped_single(
    gp: &GrammarParser,
    a: &VisAnalysis,
    db: &Database,
    func: AggFunc,
    y_phrase: Option<&str>,
    key_phrase: &str,
    table: Option<usize>,
) -> Option<Select> {
    let t = table?;
    let key = gp.ground_column(key_phrase, db, &[t], t, false)?;
    let agg = match y_phrase {
        Some(y) => {
            let col = gp.ground_column(y, db, &[t], t, false)?;
            if !db.schema.column(col).dtype.is_numeric() && func != AggFunc::Count {
                return None;
            }
            Expr::agg(
                func,
                Expr::Column(ColName::new(&db.schema.column(col).name)),
            )
        }
        None => Expr::count_star(),
    };
    let key_expr = Expr::Column(ColName::new(&db.schema.column(key).name));
    let mut s = Select::simple(
        &db.schema.tables[t].name,
        vec![SelectItem::plain(key_expr.clone()), SelectItem::plain(agg)],
    );
    s.group_by = vec![key_expr];
    attach_conds(gp, a, db, t, &mut s);
    Some(s)
}

/// FK-join grounding of a grouped chart: the numeric measure on the child
/// table, the group key on its FK parent.
fn ground_grouped_joined(
    gp: &GrammarParser,
    db: &Database,
    func: AggFunc,
    y_phrase: &str,
    key_phrase: &str,
) -> Option<Select> {
    for fk in &db.schema.foreign_keys {
        let child = fk.from.table;
        let parent = fk.to.table;
        let Some(ycol) = gp.ground_column(y_phrase, db, &[child], child, false) else {
            continue;
        };
        if !db.schema.column(ycol).dtype.is_numeric() {
            continue;
        }
        let Some(key) = gp.ground_column(key_phrase, db, &[parent], parent, false) else {
            continue;
        };
        let qual = |r: ColumnRef| {
            Expr::Column(ColName::qualified(
                &db.schema.tables[r.table].name,
                &db.schema.column(r).name,
            ))
        };
        let key_expr = qual(key);
        let mut s = Select::simple(
            &db.schema.tables[child].name,
            vec![
                SelectItem::plain(key_expr.clone()),
                SelectItem::plain(Expr::agg(func, qual(ycol))),
            ],
        );
        s.from.push(nli_sql::TableRef {
            name: db.schema.tables[parent].name.clone(),
        });
        s.joins.push(nli_sql::JoinCond {
            left: ColName::qualified(
                &db.schema.tables[child].name,
                &db.schema.column(fk.from).name,
            ),
            right: ColName::qualified(
                &db.schema.tables[parent].name,
                &db.schema.column(fk.to).name,
            ),
        });
        s.group_by = vec![key_expr];
        return Some(s);
    }
    None
}

fn attach_conds(gp: &GrammarParser, a: &VisAnalysis, db: &Database, table: usize, s: &mut Select) {
    let mut exprs = Vec::new();
    for c in &a.conds {
        if let Some(e) = gp.ground_condition(c, db, &[table], table, false) {
            exprs.push(e);
        }
    }
    s.where_clause = exprs
        .into_iter()
        .reduce(|x, y| Expr::binary(x, BinOp::And, y));
}

/// Rule/template-based Text-to-Vis parser.
pub struct RuleVisParser {
    gp: GrammarParser,
}

impl RuleVisParser {
    pub fn new() -> RuleVisParser {
        RuleVisParser {
            gp: GrammarParser::new(GrammarConfig::traditional().named("vis-rule")),
        }
    }
}

impl Default for RuleVisParser {
    fn default() -> Self {
        RuleVisParser::new()
    }
}

impl SemanticParser for RuleVisParser {
    type Expr = VisQuery;

    fn parse(&self, question: &NlQuestion, db: &Database) -> Result<VisQuery> {
        let a = analyze_vis(&question.text);
        ground_vis(&self.gp, &a, db)
    }

    fn name(&self) -> &str {
        "vis-rule"
    }
}

/// NL4DV-style chart recommendation from encoding data types, exposed for
/// parsers that face chart-less requests.
pub fn recommend_chart(x: DataType, agg: Option<AggFunc>) -> ChartType {
    match x {
        DataType::Date => ChartType::Line,
        DataType::Int | DataType::Float if agg.is_none() => ChartType::Scatter,
        _ => ChartType::Bar,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, Date, Schema, Table};

    pub(crate) fn db() -> Database {
        let schema = Schema::new(
            "shop",
            vec![Table::new(
                "sales",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("category", DataType::Text),
                    Column::new("amount", DataType::Float),
                    Column::new("price", DataType::Float),
                    Column::new("sold_on", DataType::Date).with_display("sale date"),
                ],
            )
            .with_display("sale")],
        );
        let mut d = Database::empty(schema);
        d.insert_all(
            "sales",
            vec![
                vec![
                    1.into(),
                    "Tools".into(),
                    100.0.into(),
                    9.5.into(),
                    Date::new(2024, 1, 5).into(),
                ],
                vec![
                    2.into(),
                    "Toys".into(),
                    50.0.into(),
                    4.0.into(),
                    Date::new(2024, 4, 9).into(),
                ],
            ],
        )
        .unwrap();
        d
    }

    #[test]
    fn grouped_bar_chart() {
        let p = RuleVisParser::new();
        let q = NlQuestion::new("Show a bar chart of the total amount for each category.");
        let v = p.parse(&q, &db()).unwrap();
        assert_eq!(
            v.to_string(),
            "VISUALIZE BAR SELECT category, SUM(amount) FROM sales GROUP BY category"
        );
    }

    #[test]
    fn scatter_chart() {
        let p = RuleVisParser::new();
        let q = NlQuestion::new("Plot a scatter chart of amount against price for sales.");
        let v = p.parse(&q, &db()).unwrap();
        assert_eq!(
            v.to_string(),
            "VISUALIZE SCATTER SELECT price, amount FROM sales"
        );
    }

    #[test]
    fn line_chart_with_bin() {
        let p = RuleVisParser::new();
        let q = NlQuestion::new(
            "Draw a line chart of amount of sales over sale date binned by quarter.",
        );
        let v = p.parse(&q, &db()).unwrap();
        assert_eq!(
            v.to_string(),
            "VISUALIZE LINE SELECT sold_on, amount FROM sales BIN sold_on BY QUARTER"
        );
    }

    #[test]
    fn conditions_attach_to_the_data_query() {
        let p = RuleVisParser::new();
        let q = NlQuestion::new(
            "Show a bar chart of the total amount for each category with price above 5.",
        );
        let v = p.parse(&q, &db()).unwrap();
        assert!(v.to_string().contains("WHERE price > 5"), "{v}");
    }

    #[test]
    fn pie_chart_count() {
        let p = RuleVisParser::new();
        let q = NlQuestion::new("Draw a pie chart of the number of sales for each category.");
        let v = p.parse(&q, &db()).unwrap();
        assert_eq!(
            v.to_string(),
            "VISUALIZE PIE SELECT category, COUNT(*) FROM sales GROUP BY category"
        );
    }

    #[test]
    fn unknown_request_errors() {
        let p = RuleVisParser::new();
        assert!(p.parse(&NlQuestion::new("make art"), &db()).is_err());
    }

    #[test]
    fn recommendation_rules() {
        assert_eq!(recommend_chart(DataType::Date, None), ChartType::Line);
        assert_eq!(recommend_chart(DataType::Float, None), ChartType::Scatter);
        assert_eq!(
            recommend_chart(DataType::Text, Some(AggFunc::Sum)),
            ChartType::Bar
        );
    }
}
