//! Conversational visualization (MMCoVisNet/Dial-NVBench-class).
//!
//! Visualization dialogues refine an existing chart: switch the mark type,
//! add a filter, re-bin the time axis. The dialogue parser keeps the
//! previous turn's VQL and edits it, opening fresh requests through a base
//! single-turn parser.

use crate::ncnet_like::NcNetParser;
use crate::vis_analysis::analyze_vis;
use nli_core::{Database, NlQuestion, NliError, Result, SemanticParser};
use nli_nlu::tokenize_words;
use nli_sql::{BinOp, Expr};
use nli_text2sql::{GrammarConfig, GrammarParser};
use nli_vql::{BinUnit, ChartType, VisQuery};

/// Stateful visualization dialogue parser.
pub struct VisDialogueParser {
    base: NcNetParser,
    helper: GrammarParser,
    prev: Option<VisQuery>,
}

impl VisDialogueParser {
    pub fn new() -> VisDialogueParser {
        VisDialogueParser {
            base: NcNetParser::new(),
            helper: GrammarParser::new(GrammarConfig::neural().named("vis-dialogue")),
            prev: None,
        }
    }

    pub fn reset(&mut self) {
        self.prev = None;
    }

    /// Parse one turn, editing previous state for follow-ups.
    pub fn parse_turn(&mut self, question: &NlQuestion, db: &Database) -> Result<VisQuery> {
        let words = tokenize_words(&question.text);
        let is_chart_switch = words.contains(&"instead".to_string())
            || words.first().map(String::as_str) == Some("make");
        let is_filter = words.first().map(String::as_str) == Some("only");
        let is_rebin = words.contains(&"binned".to_string()) && words.len() <= 5;

        if let Some(prev) = self.prev.clone() {
            if is_chart_switch {
                // "Make it a pie chart instead."
                let chart = words
                    .iter()
                    .find_map(|w| ChartType::parse(w))
                    .ok_or_else(|| NliError::Parse("no chart type in switch".into()))?;
                let mut v = prev;
                v.chart = chart;
                self.prev = Some(v.clone());
                return Ok(v);
            }
            if is_filter {
                // "Only include <cond>."
                let a = analyze_vis(&question.text);
                let table = prev
                    .query
                    .tables()
                    .first()
                    .and_then(|n| db.schema.table_index(n))
                    .ok_or_else(|| NliError::Parse("lost chart scope".into()))?;
                let mut v = prev;
                let mut added = false;
                for c in &a.conds {
                    if let Some(e) = self.helper.ground_condition(c, db, &[table], table, false) {
                        v.query.select.where_clause =
                            Some(match v.query.select.where_clause.take() {
                                Some(w) => Expr::binary(w, BinOp::And, e),
                                None => e,
                            });
                        added = true;
                    }
                }
                if !added {
                    return Err(NliError::Parse("could not ground the filter".into()));
                }
                self.prev = Some(v.clone());
                return Ok(v);
            }
            if is_rebin {
                // "Binned by year." — retarget the bin unit
                let unit = words
                    .iter()
                    .find_map(|w| BinUnit::parse(w))
                    .ok_or_else(|| NliError::Parse("no bin unit".into()))?;
                let mut v = prev;
                match &mut v.bin {
                    Some(b) => b.unit = unit,
                    None => return Err(NliError::Parse("previous chart is unbinned".into())),
                }
                self.prev = Some(v.clone());
                return Ok(v);
            }
        }

        let v = self.base.parse(question, db)?;
        self.prev = Some(v.clone());
        Ok(v)
    }
}

impl Default for VisDialogueParser {
    fn default() -> Self {
        VisDialogueParser::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Date, Schema, Table};

    fn db() -> Database {
        let schema = Schema::new(
            "d",
            vec![Table::new(
                "sales",
                vec![
                    Column::new("category", DataType::Text),
                    Column::new("amount", DataType::Float),
                    Column::new("sold_on", DataType::Date).with_display("sale date"),
                ],
            )
            .with_display("sale")],
        );
        let mut d = Database::empty(schema);
        d.insert(
            "sales",
            vec!["Tools".into(), 5.0.into(), Date::new(2024, 3, 3).into()],
        )
        .unwrap();
        d
    }

    #[test]
    fn chart_switch_edit() {
        let mut p = VisDialogueParser::new();
        let d = db();
        let t1 = p
            .parse_turn(
                &NlQuestion::new("Show a bar chart of the total amount for each category."),
                &d,
            )
            .unwrap();
        assert_eq!(t1.chart, ChartType::Bar);
        let t2 = p
            .parse_turn(&NlQuestion::new("Make it a pie chart instead."), &d)
            .unwrap();
        assert_eq!(t2.chart, ChartType::Pie);
        assert_eq!(t1.query, t2.query);
    }

    #[test]
    fn filter_edit() {
        let mut p = VisDialogueParser::new();
        let d = db();
        p.parse_turn(
            &NlQuestion::new("Show a bar chart of the total amount for each category."),
            &d,
        )
        .unwrap();
        let t2 = p
            .parse_turn(&NlQuestion::new("Only include with amount above 3."), &d)
            .unwrap();
        assert!(t2.to_string().contains("WHERE amount > 3"), "{t2}");
    }

    #[test]
    fn rebin_edit() {
        let mut p = VisDialogueParser::new();
        let d = db();
        p.parse_turn(
            &NlQuestion::new(
                "Draw a line chart of amount of sales over sale date binned by month.",
            ),
            &d,
        )
        .unwrap();
        let t2 = p
            .parse_turn(&NlQuestion::new("Binned by year."), &d)
            .unwrap();
        assert_eq!(t2.bin.unwrap().unit, BinUnit::Year);
    }

    #[test]
    fn reset_clears_context() {
        let mut p = VisDialogueParser::new();
        let d = db();
        p.parse_turn(
            &NlQuestion::new("Show a bar chart of the total amount for each category."),
            &d,
        )
        .unwrap();
        p.reset();
        assert!(p
            .parse_turn(&NlQuestion::new("Make it a pie chart instead."), &d)
            .is_err());
    }
}
