//! ncNet-class parsing: a transformer with vis-aware decoding.
//!
//! Compared with Seq2Vis, ncNet composes rather than memorizes: it grounds
//! the request compositionally (our shared `ground_vis` core with the
//! neural-stage linker and an optionally trained alignment model) and masks
//! invalid chart/data-type combinations during decoding. It still lacks
//! synonym world knowledge, which is what separates it from the
//! retrieval-augmented and LLM stages.

use crate::rule::ground_vis;
use crate::vis_analysis::analyze_vis;
use nli_core::{Database, NlQuestion, Result, SemanticParser};
use nli_lm::{AlignmentModel, TrainingExample};
use nli_text2sql::{GrammarConfig, GrammarParser};
use nli_vql::{ChartType, VisQuery};

/// ncNet-class Text-to-Vis parser.
pub struct NcNetParser {
    gp: GrammarParser,
}

impl NcNetParser {
    /// Untrained (lexical + embedding linking only).
    pub fn new() -> NcNetParser {
        NcNetParser {
            gp: GrammarParser::new(GrammarConfig::neural().named("ncnet")),
        }
    }

    /// Train the alignment component on (question, data-query) pairs.
    pub fn train(&mut self, examples: &[TrainingExample]) {
        let mut alignment = AlignmentModel::new();
        alignment.train(examples);
        self.gp = GrammarParser::new(
            GrammarConfig::neural()
                .with_alignment(alignment)
                .named("ncnet"),
        );
    }

    /// Vis-aware decoding mask: fix chart/data-type mismatches the way
    /// ncNet's output mask forbids invalid visualization tokens.
    fn mask_chart(v: &mut VisQuery) {
        let grouped = !v.query.select.group_by.is_empty();
        match v.chart {
            ChartType::Scatter if grouped => v.chart = ChartType::Bar,
            ChartType::Pie | ChartType::Bar if v.bin.is_some() => {
                // temporally binned series read as lines
                v.chart = ChartType::Line;
            }
            _ => {}
        }
    }
}

impl Default for NcNetParser {
    fn default() -> Self {
        NcNetParser::new()
    }
}

impl SemanticParser for NcNetParser {
    type Expr = VisQuery;

    fn parse(&self, question: &NlQuestion, db: &Database) -> Result<VisQuery> {
        let a = analyze_vis(&question.text);
        let mut v = ground_vis(&self.gp, &a, db)?;
        if a.chart.is_none() {
            Self::mask_chart(&mut v);
        }
        Ok(v)
    }

    fn name(&self) -> &str {
        "ncnet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Date, Schema, Table};
    use nli_sql::parse_query;

    fn db() -> Database {
        let schema = Schema::new(
            "shop",
            vec![Table::new(
                "sales",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("category", DataType::Text),
                    Column::new("amount", DataType::Float),
                    Column::new("sold_on", DataType::Date).with_display("sale date"),
                ],
            )
            .with_display("sale")],
        );
        let mut d = Database::empty(schema);
        d.insert(
            "sales",
            vec![
                1.into(),
                "Tools".into(),
                9.5.into(),
                Date::new(2024, 2, 2).into(),
            ],
        )
        .unwrap();
        d
    }

    #[test]
    fn grounds_grouped_requests() {
        let p = NcNetParser::new();
        let q = NlQuestion::new("Show a bar chart of the total amount for each category.");
        assert_eq!(
            p.parse(&q, &db()).unwrap().to_string(),
            "VISUALIZE BAR SELECT category, SUM(amount) FROM sales GROUP BY category"
        );
    }

    #[test]
    fn training_helps_learned_vocabulary() {
        let mut p = NcNetParser::new();
        p.train(&[TrainingExample {
            question: "chart the takings for each category of sales".into(),
            sql: parse_query("SELECT category, SUM(amount) FROM sales GROUP BY category").unwrap(),
        }]);
        let q = NlQuestion::new("Show a bar chart of the total takings for each category.");
        let v = p.parse(&q, &db()).unwrap();
        assert!(v.to_string().contains("SUM(amount)"), "{v}");
    }

    #[test]
    fn chart_mask_fixes_binned_bars_when_chart_unstated() {
        let mut v = nli_vql::parse_vis(
            "VISUALIZE BAR SELECT sold_on, amount FROM sales BIN sold_on BY month",
        )
        .unwrap();
        NcNetParser::mask_chart(&mut v);
        assert_eq!(v.chart, ChartType::Line);
    }

    #[test]
    fn misses_synonyms_without_world_knowledge() {
        let p = NcNetParser::new();
        // "earnings" is a lexicon synonym of "amount"-adjacent vocabulary
        // that the neural linker does not know
        let q = NlQuestion::new("Show a bar chart of the total proceeds for each category.");
        let r = p.parse(&q, &db());
        match r {
            Err(_) => {}
            Ok(v) => assert!(
                !v.to_string().contains("SUM(amount)"),
                "neural linker should not resolve the synonym: {v}"
            ),
        }
    }
}
