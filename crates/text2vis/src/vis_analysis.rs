//! Shallow analysis of chart requests.
//!
//! Extracts the chart directive and the data-shape sketch from questions
//! like "Show a bar chart of the total amount for each category with price
//! above 5." — phrase-level only; grounding is each parser's job.

use nli_nlu::tokenize_words;
use nli_sql::AggFunc;
use nli_text2sql::analysis::{analyze, CondSketch};
use nli_vql::{BinUnit, ChartType};

/// The data shape behind the requested chart.
#[derive(Debug, Clone, PartialEq)]
pub enum VisShape {
    /// `AGG(y) GROUP BY key` (bar/pie requests).
    Grouped {
        func: AggFunc,
        /// `None` for COUNT(*).
        y_phrase: Option<String>,
        key_phrase: String,
        /// Present for count requests ("number of sales").
        table_phrase: Option<String>,
    },
    /// y against x (scatter requests).
    Pair {
        x_phrase: String,
        y_phrase: String,
        table_phrase: Option<String>,
    },
    /// y over a binned date column (line requests).
    Temporal {
        y_phrase: String,
        date_phrase: String,
        unit: BinUnit,
        table_phrase: Option<String>,
    },
    /// Could not recognize a shape.
    Unknown,
}

/// Analyzer output.
#[derive(Debug, Clone, PartialEq)]
pub struct VisAnalysis {
    pub chart: Option<ChartType>,
    pub shape: VisShape,
    pub conds: Vec<CondSketch>,
}

fn phrase(words: &[String], start: usize, stops: &[&str], max: usize) -> (String, usize) {
    let mut out = Vec::new();
    let mut i = start;
    while i < words.len() && out.len() < max && !stops.contains(&words[i].as_str()) {
        out.push(words[i].clone());
        i += 1;
    }
    (out.join(" "), i)
}

fn find(words: &[String], seq: &[&str]) -> Option<usize> {
    if seq.len() > words.len() {
        return None;
    }
    (0..=words.len() - seq.len()).find(|&s| seq.iter().enumerate().all(|(k, w)| words[s + k] == *w))
}

/// Analyze a chart request.
pub fn analyze_vis(question: &str) -> VisAnalysis {
    let words = tokenize_words(question);

    // chart directive: "<type> chart"
    let chart = find(&words, &["chart"]).and_then(|i| {
        if i == 0 {
            return None;
        }
        ChartType::parse(&words[i - 1])
    });

    // temporal binning: "binned by <unit>"
    let unit = find(&words, &["binned", "by"])
        .and_then(|i| words.get(i + 2))
        .and_then(|w| BinUnit::parse(w));

    // conditions via the shared SQL analyzer
    let conds = analyze(question).conds;

    const STOPS: &[&str] = &[
        "for", "of", "against", "over", "binned", "with", "whose", "and", "chart",
    ];

    let shape = if let Some(each) = find(&words, &["for", "each"]) {
        // grouped: "... of the <agg> <y> for each <key>" / "... of the
        // number of <table> for each <key>"
        let (key_phrase, _) = phrase(&words, each + 2, STOPS, 3);
        if key_phrase.is_empty() {
            VisShape::Unknown
        } else if let Some(n) = find(&words, &["number", "of"]) {
            let (table_phrase, _) = phrase(&words, n + 2, STOPS, 3);
            VisShape::Grouped {
                func: AggFunc::Count,
                y_phrase: None,
                key_phrase,
                table_phrase: (!table_phrase.is_empty()).then_some(table_phrase),
            }
        } else {
            let agg = words.iter().enumerate().find_map(|(i, w)| {
                let f = match w.as_str() {
                    "total" | "sum" => AggFunc::Sum,
                    "average" | "mean" => AggFunc::Avg,
                    "maximum" | "highest" => AggFunc::Max,
                    "minimum" | "lowest" => AggFunc::Min,
                    "count" => AggFunc::Count,
                    _ => return None,
                };
                Some((i, f))
            });
            match agg {
                Some((i, func)) => {
                    let (y, _) = phrase(&words, i + 1, STOPS, 3);
                    VisShape::Grouped {
                        func,
                        y_phrase: (!y.is_empty()).then_some(y),
                        key_phrase,
                        table_phrase: None,
                    }
                }
                None => {
                    // "a bar chart of <y> for each <key>" without aggregate:
                    // default to SUM (the nvBench convention)
                    let y = find(&words, &["of"])
                        .map(|i| phrase(&words, i + 1, STOPS, 3).0)
                        .filter(|p| !p.is_empty() && p != "the");
                    VisShape::Grouped {
                        func: AggFunc::Sum,
                        y_phrase: y,
                        key_phrase,
                        table_phrase: None,
                    }
                }
            }
        }
    } else if let Some(ag) = find(&words, &["against"]) {
        // pair: "... of <y> against <x> for <table>"
        let y = find(&words, &["of"])
            .filter(|&i| i < ag)
            .map(|i| phrase(&words, i + 1, STOPS, 3).0)
            .unwrap_or_default();
        let (x, after_x) = phrase(&words, ag + 1, STOPS, 3);
        let table = if words.get(after_x).map(String::as_str) == Some("for") {
            let (t, _) = phrase(&words, after_x + 1, STOPS, 3);
            (!t.is_empty()).then_some(t)
        } else {
            None
        };
        if x.is_empty() || y.is_empty() {
            VisShape::Unknown
        } else {
            VisShape::Pair {
                x_phrase: x,
                y_phrase: y,
                table_phrase: table,
            }
        }
    } else if let Some(ov) = find(&words, &["over"]) {
        // temporal: "... of <y> of <table> over <date> binned by <unit>"
        let first_of = find(&words, &["of"]).filter(|&i| i < ov);
        let (y, after_y) = match first_of {
            Some(i) => phrase(&words, i + 1, STOPS, 3),
            None => (String::new(), 0),
        };
        let table = if words.get(after_y).map(String::as_str) == Some("of") {
            let (t, _) = phrase(&words, after_y + 1, STOPS, 3);
            (!t.is_empty()).then_some(t)
        } else {
            None
        };
        let (date, _) = phrase(&words, ov + 1, STOPS, 4);
        if y.is_empty() || date.is_empty() {
            VisShape::Unknown
        } else {
            VisShape::Temporal {
                y_phrase: y,
                date_phrase: date,
                unit: unit.unwrap_or(BinUnit::Month),
                table_phrase: table,
            }
        }
    } else {
        VisShape::Unknown
    };

    VisAnalysis {
        chart,
        shape,
        conds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_request() {
        let a = analyze_vis("Show a bar chart of the total amount for each category.");
        assert_eq!(a.chart, Some(ChartType::Bar));
        match a.shape {
            VisShape::Grouped {
                func,
                y_phrase,
                key_phrase,
                ..
            } => {
                assert_eq!(func, AggFunc::Sum);
                assert_eq!(y_phrase.as_deref(), Some("amount"));
                assert_eq!(key_phrase, "category");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_request() {
        let a = analyze_vis("Draw a pie chart of the number of sales for each city.");
        assert_eq!(a.chart, Some(ChartType::Pie));
        match a.shape {
            VisShape::Grouped {
                func,
                y_phrase,
                key_phrase,
                table_phrase,
            } => {
                assert_eq!(func, AggFunc::Count);
                assert!(y_phrase.is_none());
                assert_eq!(key_phrase, "city");
                assert_eq!(table_phrase.as_deref(), Some("sales"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scatter_request() {
        let a = analyze_vis("Plot a scatter chart of amount against price for sales.");
        assert_eq!(a.chart, Some(ChartType::Scatter));
        match a.shape {
            VisShape::Pair {
                x_phrase,
                y_phrase,
                table_phrase,
            } => {
                assert_eq!(x_phrase, "price");
                assert_eq!(y_phrase, "amount");
                assert_eq!(table_phrase.as_deref(), Some("sales"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn temporal_request() {
        let a =
            analyze_vis("Draw a line chart of amount of sales over sale date binned by quarter.");
        assert_eq!(a.chart, Some(ChartType::Line));
        match a.shape {
            VisShape::Temporal {
                y_phrase,
                date_phrase,
                unit,
                table_phrase,
            } => {
                assert_eq!(y_phrase, "amount");
                assert_eq!(date_phrase, "sale date");
                assert_eq!(unit, BinUnit::Quarter);
                assert_eq!(table_phrase.as_deref(), Some("sales"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn conditions_survive_in_chart_requests() {
        let a = analyze_vis(
            "Show a bar chart of the total amount for each category with price above 5.",
        );
        assert_eq!(a.conds.len(), 1);
        assert_eq!(a.conds[0].col_phrase, "price");
    }

    #[test]
    fn unrecognized_requests_yield_unknown() {
        let a = analyze_vis("Please make something pretty.");
        assert_eq!(a.shape, VisShape::Unknown);
        assert!(a.chart.is_none());
    }
}
