//! Seq2Vis-class parsing: a seq2seq model without pretraining.
//!
//! Early encoder–decoder Text-to-Vis models largely *memorize* the mapping
//! from question phrasing to VQL and have no mechanism to generalize to
//! unseen schemas — the survey's Table 2 reports Seq2Vis at 1.95% overall
//! accuracy on cross-domain nvBench. The simulation makes that mechanism
//! explicit: the parser retrieves the most similar *training* question and
//! replays its VQL verbatim, adapting identifiers only when the target
//! schema happens to contain identically-named tables/columns.

use nli_core::{Database, NlQuestion, NliError, Result, SemanticParser};
use nli_nlu::Embedding;
use nli_vql::VisQuery;

/// One memorized training pair.
struct Memory {
    embedding: Embedding,
    gold: VisQuery,
}

/// Seq2Vis-class parser. Train before use.
pub struct Seq2VisParser {
    memory: Vec<Memory>,
}

impl Seq2VisParser {
    pub fn new() -> Seq2VisParser {
        Seq2VisParser { memory: Vec::new() }
    }

    /// Memorize training pairs.
    pub fn train(&mut self, pairs: impl IntoIterator<Item = (String, VisQuery)>) {
        for (q, gold) in pairs {
            self.memory.push(Memory {
                embedding: Embedding::of(&q),
                gold,
            });
        }
    }

    pub fn is_trained(&self) -> bool {
        !self.memory.is_empty()
    }

    fn nearest(&self, question: &str) -> Option<&Memory> {
        let q = Embedding::of(question);
        self.memory
            .iter()
            .max_by(|a, b| q.cosine(&a.embedding).total_cmp(&q.cosine(&b.embedding)))
    }
}

impl Default for Seq2VisParser {
    fn default() -> Self {
        Seq2VisParser::new()
    }
}

impl SemanticParser for Seq2VisParser {
    type Expr = VisQuery;

    fn parse(&self, question: &NlQuestion, db: &Database) -> Result<VisQuery> {
        let mem = self
            .nearest(&question.text)
            .ok_or_else(|| NliError::Model("seq2vis is untrained".into()))?;
        // replay the memorized program; identifiers transfer only by luck.
        let replayed = mem.gold.clone();
        let tables = replayed.query.tables();
        let transfers = tables.iter().all(|t| db.schema.table_index(t).is_some());
        if transfers {
            Ok(replayed)
        } else {
            // the decoder still emits *something* — the memorized program —
            // which is exactly the wrong-schema output real Seq2Vis produces
            // on cross-domain inputs.
            Ok(replayed)
        }
    }

    fn name(&self) -> &str {
        "seq2vis"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Schema, Table};
    use nli_vql::parse_vis;

    fn db(table: &str) -> Database {
        Database::empty(Schema::new(
            "d",
            vec![Table::new(
                table,
                vec![
                    Column::new("category", DataType::Text),
                    Column::new("amount", DataType::Float),
                ],
            )],
        ))
    }

    fn trained() -> Seq2VisParser {
        let mut p = Seq2VisParser::new();
        p.train(vec![
            (
                "Show a bar chart of the total amount for each category.".to_string(),
                parse_vis(
                    "VISUALIZE BAR SELECT category, SUM(amount) FROM sales GROUP BY category",
                )
                .unwrap(),
            ),
            (
                "Plot a scatter chart of amount against price for sales.".to_string(),
                parse_vis("VISUALIZE SCATTER SELECT price, amount FROM sales").unwrap(),
            ),
        ]);
        p
    }

    #[test]
    fn untrained_refuses() {
        let p = Seq2VisParser::new();
        assert!(p.parse(&NlQuestion::new("anything"), &db("sales")).is_err());
    }

    #[test]
    fn replays_memorized_programs_in_domain() {
        let p = trained();
        let q = NlQuestion::new("Show a bar chart of the total amount for each category.");
        let v = p.parse(&q, &db("sales")).unwrap();
        assert_eq!(
            v.to_string(),
            "VISUALIZE BAR SELECT category, SUM(amount) FROM sales GROUP BY category"
        );
    }

    #[test]
    fn cross_domain_output_references_the_wrong_schema() {
        let p = trained();
        let q = NlQuestion::new("Show a bar chart of the total cost for each department.");
        let v = p.parse(&q, &db("projects")).unwrap();
        // the memorized program mentions "sales", which does not exist in
        // the target database — the genuine Seq2Vis failure mode
        assert!(v.query.tables().contains(&"sales".to_string()));
    }

    #[test]
    fn nearest_neighbour_is_by_similarity() {
        let p = trained();
        let q = NlQuestion::new("Plot a scatter chart of amount against price.");
        let v = p.parse(&q, &db("sales")).unwrap();
        assert_eq!(v.chart, nli_vql::ChartType::Scatter);
    }
}
