//! The four system architectures of the survey's §5.3.
//!
//! Every system routes a question to its SQL or Vis pipeline (chart verbs
//! select the vis path), executes the parsed program, and reports which
//! internal stages ran — the interpretability proxy Table 4's comparison
//! uses (rule-based systems expose everything; end-to-end systems are one
//! opaque stage).

use nli_core::{Database, NlQuestion, NliError, Result, SemanticParser};
use nli_lm::{DemoSelection, LlmKind, PromptStrategy};
use nli_sql::{Query, ResultSet, SqlEngine};
use nli_text2sql::{
    ExecutionGuided, GrammarConfig, GrammarParser, LlmParser, PlmParser, RuleBasedParser,
};
use nli_text2vis::{LlmVisParser, NcNetParser, RgVisNetParser, RuleVisParser};
use nli_vql::{Chart, VisEngine, VisQuery};
use std::time::{Duration, Instant};

/// Architecture paradigm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    RuleBased,
    ParsingBased,
    MultiStage,
    EndToEnd,
}

impl Architecture {
    pub fn name(self) -> &'static str {
        match self {
            Architecture::RuleBased => "rule-based",
            Architecture::ParsingBased => "parsing-based",
            Architecture::MultiStage => "multi-stage",
            Architecture::EndToEnd => "end-to-end",
        }
    }

    pub const ALL: [Architecture; 4] = [
        Architecture::RuleBased,
        Architecture::ParsingBased,
        Architecture::MultiStage,
        Architecture::EndToEnd,
    ];
}

/// What a system returns to the user.
#[derive(Debug, Clone)]
pub enum SystemOutput {
    /// Tabular answer (the Text-to-SQL result `r`).
    Table(ResultSet),
    /// Rendered chart (the Text-to-Vis result `r`).
    Chart(Box<Chart>),
    /// DataTone-style disambiguation: candidate programs for the user to
    /// choose between.
    Clarification(Vec<String>),
}

/// A full system response.
#[derive(Debug, Clone)]
pub struct SystemResponse {
    /// The functional expression the system committed to, as text.
    pub program: Option<String>,
    pub output: SystemOutput,
    pub latency: Duration,
    /// Pipeline stages that ran (interpretability proxy).
    pub stages: Vec<&'static str>,
}

/// Common system interface.
pub trait NliSystem {
    fn ask(&self, question: &NlQuestion, db: &Database) -> Result<SystemResponse>;
    fn architecture(&self) -> Architecture;
    fn name(&self) -> &str;

    /// Access to the SQL-side parser for benchmark evaluation.
    fn sql_parser(&self) -> &(dyn SemanticParser<Expr = Query> + Sync);
    /// Access to the Vis-side parser for benchmark evaluation.
    fn vis_parser(&self) -> &(dyn SemanticParser<Expr = VisQuery> + Sync);
}

/// Whether a question asks for a visualization.
pub fn wants_chart(text: &str) -> bool {
    let t = text.to_lowercase();
    ["chart", "plot", "graph", "visualize", "draw"]
        .iter()
        .any(|w| t.contains(w))
}

/// Execute through a system's long-lived engine: the plan cache persists
/// across questions, so repeated programs over one schema plan once.
fn run_sql(engine: &SqlEngine, q: &Query, db: &Database) -> Result<ResultSet> {
    use nli_core::ExecutionEngine;
    engine.execute(q, db)
}

fn run_vis(v: &VisQuery, db: &Database) -> Result<Chart> {
    use nli_core::ExecutionEngine;
    VisEngine::new().execute(v, db)
}

// ---- rule-based -----------------------------------------------------------

/// NaLIR/DataTone-class system: rule parsers plus interactive
/// clarification when parsing fails or is ambiguous.
pub struct RuleSystem {
    sql: RuleBasedParser,
    vis: RuleVisParser,
    engine: SqlEngine,
}

impl RuleSystem {
    pub fn new() -> RuleSystem {
        RuleSystem {
            sql: RuleBasedParser::new(),
            vis: RuleVisParser::new(),
            engine: SqlEngine::new(),
        }
    }

    /// NaLIR-style interaction: the user picked one of the clarification
    /// candidates; execute it.
    pub fn execute_candidate(&self, sql: &str, db: &Database) -> Result<SystemResponse> {
        let start = Instant::now();
        let q = nli_sql::parse_query(sql)?;
        let rs = run_sql(&self.engine, &q, db)?;
        Ok(SystemResponse {
            program: Some(q.to_string()),
            output: SystemOutput::Table(rs),
            latency: start.elapsed(),
            stages: vec!["user-choice", "execution"],
        })
    }
}

impl Default for RuleSystem {
    fn default() -> Self {
        RuleSystem::new()
    }
}

impl NliSystem for RuleSystem {
    fn ask(&self, question: &NlQuestion, db: &Database) -> Result<SystemResponse> {
        let start = Instant::now();
        let stages = vec!["rule-mapping", "ranking", "execution"];
        if wants_chart(&question.text) {
            let v = self.vis.parse(question, db)?;
            let chart = run_vis(&v, db)?;
            return Ok(SystemResponse {
                program: Some(v.to_string()),
                output: SystemOutput::Chart(Box::new(chart)),
                latency: start.elapsed(),
                stages,
            });
        }
        match self.sql.parse(question, db) {
            Ok(q) => {
                let rs = run_sql(&self.engine, &q, db)?;
                Ok(SystemResponse {
                    program: Some(q.to_string()),
                    output: SystemOutput::Table(rs),
                    latency: start.elapsed(),
                    stages,
                })
            }
            Err(_) => {
                // DataTone-style: surface candidate interpretations
                let cands = self.sql.candidates(question, db, 3);
                if cands.is_empty() {
                    Err(NliError::Parse("no interpretation found".into()))
                } else {
                    Ok(SystemResponse {
                        program: None,
                        output: SystemOutput::Clarification(
                            cands.iter().map(|c| c.to_string()).collect(),
                        ),
                        latency: start.elapsed(),
                        stages: vec!["rule-mapping", "ambiguity-widget"],
                    })
                }
            }
        }
    }

    fn architecture(&self) -> Architecture {
        Architecture::RuleBased
    }
    fn name(&self) -> &str {
        "rule-system"
    }
    fn sql_parser(&self) -> &(dyn SemanticParser<Expr = Query> + Sync) {
        &self.sql
    }
    fn vis_parser(&self) -> &(dyn SemanticParser<Expr = VisQuery> + Sync) {
        &self.vis
    }
}

// ---- parsing-based -----------------------------------------------------------

/// SQLova/ncNet-class system: grammar-driven semantic parsing.
pub struct ParsingSystem {
    sql: GrammarParser,
    vis: NcNetParser,
    engine: SqlEngine,
}

impl ParsingSystem {
    pub fn new() -> ParsingSystem {
        ParsingSystem {
            sql: GrammarParser::new(GrammarConfig::neural()),
            vis: NcNetParser::new(),
            engine: SqlEngine::new(),
        }
    }
}

impl Default for ParsingSystem {
    fn default() -> Self {
        ParsingSystem::new()
    }
}

impl NliSystem for ParsingSystem {
    fn ask(&self, question: &NlQuestion, db: &Database) -> Result<SystemResponse> {
        let start = Instant::now();
        let stages = vec!["encoding", "grammar-decoding", "execution"];
        if wants_chart(&question.text) {
            let v = self.vis.parse(question, db)?;
            let chart = run_vis(&v, db)?;
            Ok(SystemResponse {
                program: Some(v.to_string()),
                output: SystemOutput::Chart(Box::new(chart)),
                latency: start.elapsed(),
                stages,
            })
        } else {
            let q = self.sql.parse(question, db)?;
            let rs = run_sql(&self.engine, &q, db)?;
            Ok(SystemResponse {
                program: Some(q.to_string()),
                output: SystemOutput::Table(rs),
                latency: start.elapsed(),
                stages,
            })
        }
    }

    fn architecture(&self) -> Architecture {
        Architecture::ParsingBased
    }
    fn name(&self) -> &str {
        "parsing-system"
    }
    fn sql_parser(&self) -> &(dyn SemanticParser<Expr = Query> + Sync) {
        &self.sql
    }
    fn vis_parser(&self) -> &(dyn SemanticParser<Expr = VisQuery> + Sync) {
        &self.vis
    }
}

// ---- multi-stage ---------------------------------------------------------------

/// DIN-SQL/DeepEye-class system: linking → classification → generation →
/// self-correction, with execution-guided candidate filtering.
pub struct MultiStageSystem {
    sql: ExecutionGuided<PlmParser>,
    vis: RgVisNetParser,
    engine: SqlEngine,
}

impl MultiStageSystem {
    /// Build with a trained PLM core (train via
    /// [`MultiStageSystem::with_trained`]).
    pub fn with_trained(plm: PlmParser, vis: RgVisNetParser) -> MultiStageSystem {
        MultiStageSystem {
            sql: ExecutionGuided::new(plm, 4, false),
            vis,
            engine: SqlEngine::new(),
        }
    }
}

impl NliSystem for MultiStageSystem {
    fn ask(&self, question: &NlQuestion, db: &Database) -> Result<SystemResponse> {
        let start = Instant::now();
        let stages = vec![
            "schema-linking",
            "classification",
            "generation",
            "self-correction",
            "execution",
        ];
        if wants_chart(&question.text) {
            let v = self.vis.parse(question, db)?;
            let chart = run_vis(&v, db)?;
            Ok(SystemResponse {
                program: Some(v.to_string()),
                output: SystemOutput::Chart(Box::new(chart)),
                latency: start.elapsed(),
                stages,
            })
        } else {
            let q = self.sql.parse(question, db)?;
            let rs = run_sql(&self.engine, &q, db)?;
            Ok(SystemResponse {
                program: Some(q.to_string()),
                output: SystemOutput::Table(rs),
                latency: start.elapsed(),
                stages,
            })
        }
    }

    fn architecture(&self) -> Architecture {
        Architecture::MultiStage
    }
    fn name(&self) -> &str {
        "multi-stage-system"
    }
    fn sql_parser(&self) -> &(dyn SemanticParser<Expr = Query> + Sync) {
        &self.sql
    }
    fn vis_parser(&self) -> &(dyn SemanticParser<Expr = VisQuery> + Sync) {
        &self.vis
    }
}

// ---- end-to-end --------------------------------------------------------------

/// Photon/Sevi-class system: one LLM call, no intermediate stages.
pub struct EndToEndSystem {
    sql: LlmParser,
    vis: LlmVisParser,
    engine: SqlEngine,
}

impl EndToEndSystem {
    pub fn new(seed: u64) -> EndToEndSystem {
        EndToEndSystem {
            sql: LlmParser::new(
                LlmKind::Frontier,
                PromptStrategy::FewShot {
                    k: 4,
                    selection: DemoSelection::Similarity,
                },
                seed,
            ),
            vis: LlmVisParser::new(LlmKind::Frontier, PromptStrategy::ZeroShot, seed),
            engine: SqlEngine::new(),
        }
    }
}

impl NliSystem for EndToEndSystem {
    fn ask(&self, question: &NlQuestion, db: &Database) -> Result<SystemResponse> {
        let start = Instant::now();
        let stages = vec!["end-to-end"];
        if wants_chart(&question.text) {
            let v = self.vis.parse(question, db)?;
            let chart = run_vis(&v, db)?;
            Ok(SystemResponse {
                program: Some(v.to_string()),
                output: SystemOutput::Chart(Box::new(chart)),
                latency: start.elapsed(),
                stages,
            })
        } else {
            let q = self.sql.parse(question, db)?;
            let rs = run_sql(&self.engine, &q, db)?;
            Ok(SystemResponse {
                program: Some(q.to_string()),
                output: SystemOutput::Table(rs),
                latency: start.elapsed(),
                stages,
            })
        }
    }

    fn architecture(&self) -> Architecture {
        Architecture::EndToEnd
    }
    fn name(&self) -> &str {
        "end-to-end-system"
    }
    fn sql_parser(&self) -> &(dyn SemanticParser<Expr = Query> + Sync) {
        &self.sql
    }
    fn vis_parser(&self) -> &(dyn SemanticParser<Expr = VisQuery> + Sync) {
        &self.vis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Schema, Table};

    fn db() -> Database {
        let schema = Schema::new(
            "shop",
            vec![Table::new(
                "products",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("name", DataType::Text),
                    Column::new("category", DataType::Text),
                    Column::new("price", DataType::Float),
                ],
            )
            .with_display("product")],
        );
        let mut d = Database::empty(schema);
        d.insert_all(
            "products",
            vec![
                vec![1.into(), "Widget".into(), "Tools".into(), 9.5.into()],
                vec![2.into(), "Gadget".into(), "Toys".into(), 19.0.into()],
            ],
        )
        .unwrap();
        d
    }

    #[test]
    fn routing_sends_chart_requests_to_vis() {
        assert!(wants_chart("Show a bar chart of sales"));
        assert!(!wants_chart("How many products are there?"));
    }

    #[test]
    fn every_architecture_answers_a_simple_question() {
        let d = db();
        let q = NlQuestion::new("How many products are there?");
        let systems: Vec<Box<dyn NliSystem>> = vec![
            Box::new(RuleSystem::new()),
            Box::new(ParsingSystem::new()),
            Box::new(EndToEndSystem::new(7)),
        ];
        for s in &systems {
            let r = s
                .ask(&q, &d)
                .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            match r.output {
                SystemOutput::Table(rs) => {
                    assert_eq!(rs.rows[0][0], nli_core::Value::Int(2), "{}", s.name())
                }
                other => panic!("{}: unexpected output {other:?}", s.name()),
            }
            assert!(!r.stages.is_empty());
        }
    }

    #[test]
    fn chart_requests_produce_charts() {
        let d = db();
        let q = NlQuestion::new("Show a bar chart of the total price for each category.");
        let s = ParsingSystem::new();
        let r = s.ask(&q, &d).unwrap();
        assert!(matches!(r.output, SystemOutput::Chart(_)));
        assert!(r.program.unwrap().starts_with("VISUALIZE BAR"));
    }

    #[test]
    fn multi_stage_system_works_after_training() {
        use nli_lm::TrainingExample;
        let d = db();
        let mut plm = PlmParser::new();
        plm.train(&[TrainingExample {
            question: "how many products are there".into(),
            sql: nli_sql::parse_query("SELECT COUNT(*) FROM products").unwrap(),
        }]);
        let s = MultiStageSystem::with_trained(plm, RgVisNetParser::new());
        let r = s
            .ask(&NlQuestion::new("How many products are there?"), &d)
            .unwrap();
        assert!(matches!(r.output, SystemOutput::Table(_)));
        assert!(r.stages.contains(&"self-correction"));
    }

    #[test]
    fn rule_system_clarifies_on_ambiguity_or_errs() {
        let d = db();
        let s = RuleSystem::new();
        // synonym phrasing the rule system cannot link confidently
        let q = NlQuestion::new("List the merchandise cost.");
        if let Ok(r) = s.ask(&q, &d) {
            // either a clarification or a (possibly wrong) table answer
            match r.output {
                SystemOutput::Clarification(cands) => assert!(!cands.is_empty()),
                SystemOutput::Table(_) => {}
                SystemOutput::Chart(_) => panic!("chart for a data question"),
            }
        }
    }

    #[test]
    fn stage_counts_order_architectures_by_transparency() {
        let d = db();
        let q = NlQuestion::new("How many products are there?");
        let rule = RuleSystem::new().ask(&q, &d).unwrap().stages.len();
        let e2e = EndToEndSystem::new(1).ask(&q, &d).unwrap().stages.len();
        assert!(rule > e2e, "rule {rule} vs end-to-end {e2e}");
    }

    #[test]
    fn clarification_candidates_can_be_executed_by_user_choice() {
        let d = db();
        let s = RuleSystem::new();
        let r = s
            .execute_candidate("SELECT COUNT(*) FROM products WHERE price > 5", &d)
            .unwrap();
        match r.output {
            SystemOutput::Table(rs) => assert_eq!(rs.rows[0][0], nli_core::Value::Int(2)),
            other => panic!("{other:?}"),
        }
        assert!(r.stages.contains(&"user-choice"));
        assert!(s.execute_candidate("SELEC nope", &d).is_err());
    }
}
