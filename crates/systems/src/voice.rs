//! Voice-driven querying (the survey's §6.6 multimodal direction;
//! VoiceQuerySystem/Sevi-class).
//!
//! Speech input reaches the parser through an ASR channel that introduces
//! a characteristic error profile: homophone/near-homophone substitutions,
//! dropped short words, and — crucially for value grounding — the loss of
//! quoting (speech has no quotation marks). [`simulate_asr`] reproduces
//! that channel at a configurable word-error rate, and [`VoiceSystem`]
//! wraps any [`NliSystem`] behind it, so the robustness of every
//! architecture to spoken input is measurable.

use crate::architectures::{NliSystem, SystemResponse};
use nli_core::{Database, NlQuestion, Prng, Result};
use nli_nlu::tokenize;

/// Common ASR confusions for this domain's vocabulary.
const HOMOPHONES: &[(&str, &str)] = &[
    ("sales", "sails"),
    ("there", "their"),
    ("for", "four"),
    ("to", "two"),
    ("by", "buy"),
    ("one", "won"),
    ("whose", "who's"),
    ("higher", "hire"),
    ("price", "prize"),
    ("sum", "some"),
    ("great", "grate"),
    ("week", "weak"),
];

/// Simulate an ASR transcript of `text` at word-error rate `wer`.
///
/// `wer = 0.0` returns the text unchanged. At `wer > 0`, each word is
/// independently substituted (homophone when available, else a light
/// character distortion) or dropped; quotation marks are always removed —
/// the transcript carries no value-boundary signal.
pub fn simulate_asr(text: &str, wer: f64, rng: &mut Prng) -> String {
    if wer <= 0.0 {
        return text.to_string();
    }
    let mut out: Vec<String> = Vec::new();
    for tok in tokenize(text) {
        // quoting is lost: quoted spans become bare words
        let words: Vec<String> = tok.text.split_whitespace().map(str::to_string).collect();
        for w in words {
            if !rng.chance(wer) {
                out.push(w);
                continue;
            }
            // error: 70% substitution, 30% deletion
            if rng.chance(0.3) {
                continue; // dropped word
            }
            if let Some((_, h)) = HOMOPHONES.iter().find(|(a, _)| a.eq_ignore_ascii_case(&w)) {
                out.push(h.to_string());
            } else if w.len() > 3 {
                // light distortion: drop one interior character
                let i = 1 + rng.below(w.len() - 2);
                let mut chars: Vec<char> = w.chars().collect();
                if i < chars.len() {
                    chars.remove(i);
                }
                out.push(chars.into_iter().collect());
            } else {
                out.push(w);
            }
        }
    }
    out.join(" ")
}

/// A voice front-end over any system.
pub struct VoiceSystem<S: NliSystem> {
    inner: S,
    wer: f64,
    seed: u64,
}

impl<S: NliSystem> VoiceSystem<S> {
    pub fn new(inner: S, wer: f64, seed: u64) -> VoiceSystem<S> {
        VoiceSystem {
            inner,
            wer: wer.clamp(0.0, 1.0),
            seed,
        }
    }

    /// "Speak" a question: transcribe it through the ASR channel, then ask
    /// the wrapped system.
    pub fn speak(&self, question: &NlQuestion, db: &Database) -> Result<SystemResponse> {
        let mut h: u64 = self.seed;
        for b in question.text.bytes() {
            h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
        }
        let mut rng = Prng::new(h);
        let transcript = simulate_asr(&question.text, self.wer, &mut rng);
        let mut spoken = question.clone();
        spoken.text = transcript;
        self.inner.ask(&spoken, db)
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architectures::{ParsingSystem, SystemOutput};
    use nli_core::{Column, DataType, Database, Schema, Table, Value};

    fn db() -> Database {
        let schema = Schema::new(
            "d",
            vec![Table::new(
                "products",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("name", DataType::Text),
                    Column::new("price", DataType::Float),
                ],
            )
            .with_display("product")],
        );
        let mut d = Database::empty(schema);
        d.insert_all(
            "products",
            vec![
                vec![1.into(), "Widget".into(), 9.5.into()],
                vec![2.into(), "Gadget".into(), 19.0.into()],
            ],
        )
        .unwrap();
        d
    }

    #[test]
    fn zero_wer_is_the_identity() {
        let mut rng = Prng::new(1);
        let t = "How many products with price greater than 5 are there?";
        assert_eq!(simulate_asr(t, 0.0, &mut rng), t);
    }

    #[test]
    fn transcripts_lose_quoting() {
        let mut rng = Prng::new(2);
        let t = simulate_asr("products whose name is 'Widget'", 0.01, &mut rng);
        assert!(!t.contains('\''), "{t}");
        assert!(t.to_lowercase().contains("widget"), "{t}");
    }

    #[test]
    fn high_wer_changes_most_transcripts() {
        let text = "list the name and price of products sorted by price in descending order";
        let mut changed = 0;
        for seed in 0..20 {
            let mut rng = Prng::new(seed);
            if simulate_asr(text, 0.4, &mut rng) != text {
                changed += 1;
            }
        }
        assert!(changed >= 18, "only {changed}/20 transcripts perturbed");
    }

    #[test]
    fn accuracy_degrades_with_wer() {
        let d = db();
        let questions = [
            "How many products are there?",
            "How many products with price greater than 5 are there?",
            "List the name of products.",
            "What is the average price of products?",
        ];
        let score = |wer: f64| -> usize {
            let sys = VoiceSystem::new(ParsingSystem::new(), wer, 7);
            questions
                .iter()
                .filter(|q| {
                    matches!(
                        sys.speak(&NlQuestion::new(**q), &d).map(|r| r.output),
                        Ok(SystemOutput::Table(_))
                    )
                })
                .count()
        };
        let clean = score(0.0);
        let noisy = score(0.6);
        assert_eq!(
            clean,
            questions.len(),
            "clean channel must answer everything"
        );
        assert!(noisy <= clean);
    }

    #[test]
    fn spoken_count_still_answers_at_low_wer() {
        let d = db();
        let sys = VoiceSystem::new(ParsingSystem::new(), 0.05, 3);
        let r = sys
            .speak(&NlQuestion::new("How many products are there?"), &d)
            .expect("low-WER question should survive");
        match r.output {
            SystemOutput::Table(rs) => assert_eq!(rs.rows[0][0], Value::Int(2)),
            other => panic!("{other:?}"),
        }
    }
}
