//! The Fig. 1 workflow: question → parse → execute → result → feedback.
//!
//! A [`Session`] holds conversational state for both tasks so the user can
//! refine a result ("Only those with...", "Make it a pie chart instead.")
//! — the feedback loop the survey's workflow schematic closes.

use crate::architectures::{wants_chart, SystemOutput, SystemResponse};
use nli_core::{Database, ExecutionEngine, NlQuestion, Result};
use nli_sql::SqlEngine;
use nli_text2sql::{DialogueParser, GrammarConfig};
use nli_text2vis::VisDialogueParser;
use nli_vql::VisEngine;
use std::time::Instant;

/// One recorded exchange.
#[derive(Debug, Clone)]
pub struct Exchange {
    pub question: String,
    pub program: String,
}

/// An interactive session over one database.
pub struct Session {
    sql: DialogueParser,
    vis: VisDialogueParser,
    engine: SqlEngine,
    history: Vec<Exchange>,
}

impl Session {
    pub fn new() -> Session {
        Session::with_engine(SqlEngine::new())
    }

    /// A session executing through a caller-supplied engine. Cloned engines
    /// share one plan cache, which is how [`crate::ParSessionPool`] lets
    /// many concurrent sessions amortize each other's parse/plan work.
    pub fn with_engine(engine: SqlEngine) -> Session {
        Session {
            sql: DialogueParser::new(GrammarConfig::llm_reasoner()),
            vis: VisDialogueParser::new(),
            engine,
            history: Vec::new(),
        }
    }

    /// Ask (or refine); charts route to the vis pipeline.
    pub fn ask(&mut self, question: &NlQuestion, db: &Database) -> Result<SystemResponse> {
        let start = Instant::now();
        if wants_chart(&question.text) || self.last_was_chart() {
            if let Ok(v) = self.vis.parse_turn(question, db) {
                let chart = VisEngine::new().execute(&v, db)?;
                self.history.push(Exchange {
                    question: question.text.clone(),
                    program: v.to_string(),
                });
                return Ok(SystemResponse {
                    program: Some(v.to_string()),
                    output: SystemOutput::Chart(Box::new(chart)),
                    latency: start.elapsed(),
                    stages: vec!["session-vis"],
                });
            }
            // fall through to SQL when the vis edit does not apply
        }
        let q = self.sql.parse_turn(question, db)?;
        let rs = self.engine.execute(&q, db)?;
        self.history.push(Exchange {
            question: question.text.clone(),
            program: q.to_string(),
        });
        Ok(SystemResponse {
            program: Some(q.to_string()),
            output: SystemOutput::Table(rs),
            latency: start.elapsed(),
            stages: vec!["session-sql"],
        })
    }

    fn last_was_chart(&self) -> bool {
        self.history
            .last()
            .map(|e| e.program.starts_with("VISUALIZE"))
            .unwrap_or(false)
    }

    /// The conversation so far.
    pub fn history(&self) -> &[Exchange] {
        &self.history
    }

    /// Start over.
    pub fn reset(&mut self) {
        self.sql.reset();
        self.vis.reset();
        self.history.clear();
    }
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Date, Schema, Table};

    fn db() -> Database {
        let schema = Schema::new(
            "shop",
            vec![Table::new(
                "sales",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("category", DataType::Text),
                    Column::new("amount", DataType::Float),
                    Column::new("sold_on", DataType::Date).with_display("sale date"),
                ],
            )
            .with_display("sale")],
        );
        let mut d = Database::empty(schema);
        d.insert_all(
            "sales",
            vec![
                vec![
                    1.into(),
                    "Tools".into(),
                    100.0.into(),
                    Date::new(2024, 1, 5).into(),
                ],
                vec![
                    2.into(),
                    "Toys".into(),
                    50.0.into(),
                    Date::new(2024, 4, 9).into(),
                ],
            ],
        )
        .unwrap();
        d
    }

    #[test]
    fn full_workflow_with_refinement() {
        let mut s = Session::new();
        let d = db();
        // query → result
        let r1 = s
            .ask(&NlQuestion::new("How many sales are there?"), &d)
            .unwrap();
        match r1.output {
            SystemOutput::Table(rs) => assert_eq!(rs.rows[0][0], nli_core::Value::Int(2)),
            other => panic!("{other:?}"),
        }
        // feedback → refined query (the Fig. 1 loop)
        let r2 = s
            .ask(
                &NlQuestion::new("Only those with amount greater than 60."),
                &d,
            )
            .unwrap();
        match r2.output {
            SystemOutput::Table(rs) => assert_eq!(rs.rows[0][0], nli_core::Value::Int(1)),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.history().len(), 2);
    }

    #[test]
    fn chart_then_chart_refinement() {
        let mut s = Session::new();
        let d = db();
        let r1 = s
            .ask(
                &NlQuestion::new("Show a bar chart of the total amount for each category."),
                &d,
            )
            .unwrap();
        assert!(matches!(r1.output, SystemOutput::Chart(_)));
        let r2 = s
            .ask(&NlQuestion::new("Make it a pie chart instead."), &d)
            .unwrap();
        match r2.output {
            SystemOutput::Chart(c) => assert_eq!(c.chart_type, nli_vql::ChartType::Pie),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reset_starts_a_fresh_conversation() {
        let mut s = Session::new();
        let d = db();
        s.ask(&NlQuestion::new("How many sales are there?"), &d)
            .unwrap();
        s.reset();
        assert!(s.history().is_empty());
        assert!(s
            .ask(&NlQuestion::new("Only those with amount above 60."), &d)
            .is_err());
    }
}
