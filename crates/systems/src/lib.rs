//! # nli-systems
//!
//! End-user systems assembled from the parser taxonomy, mirroring the
//! survey's §5.3 architecture classification (Table 4):
//!
//! | Architecture | SQL exemplars | Vis exemplars | Here |
//! |---|---|---|---|
//! | rule-based | NaLIR, PRECISE | DataTone | [`architectures::RuleSystem`] |
//! | parsing-based | SQLova, Seq2Tree | ncNet | [`architectures::ParsingSystem`] |
//! | multi-stage | DIN-SQL | DeepEye | [`architectures::MultiStageSystem`] |
//! | end-to-end | Photon, VoiceQuerySystem | Sevi, DeepTrack | [`architectures::EndToEndSystem`] |
//!
//! [`advisor`] implements §5.4's user-centric system selection,
//! [`session`] implements the query → result → feedback/refinement loop of
//! the paper's Fig. 1 (with conversational state for both tasks), and
//! [`pool`] serves many concurrent sessions over one shared engine.
//!
//! ## Example
//!
//! ```
//! use nli_systems::{recommend, Architecture, Environment, Expertise, UserProfile};
//!
//! // §5.4: a professional in a heterogeneous data environment is pointed
//! // at a multi-stage system; the rationale comes back with the pick.
//! let pick = recommend(&UserProfile {
//!     expertise: Expertise::Professional,
//!     environment: Environment::Complex,
//!     needs_flexibility: false,
//! });
//! assert_eq!(pick.architecture, Architecture::MultiStage);
//! assert!(!pick.rationale.is_empty());
//! ```

pub mod advisor;
pub mod architectures;
pub mod pool;
pub mod session;
pub mod voice;

pub use advisor::{recommend, Environment, Expertise, Recommendation, UserProfile};
pub use architectures::{
    Architecture, EndToEndSystem, MultiStageSystem, NliSystem, ParsingSystem, RuleSystem,
    SystemOutput, SystemResponse,
};
pub use pool::ParSessionPool;
pub use session::Session;
pub use voice::{simulate_asr, VoiceSystem};
