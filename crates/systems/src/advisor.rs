//! User-centric system selection (§5.4).
//!
//! The survey's recommendations, verbatim as decision logic: basic users
//! get rule-based simplicity or end-to-end flexibility; technical users get
//! parsing-based depth; professionals get rule-based reliability in stable
//! environments, multi-stage accuracy in complex ones, end-to-end speed in
//! fast-paced ones.

use crate::architectures::Architecture;

/// User technical background.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expertise {
    /// Limited technical background.
    Basic,
    /// Stronger technical skills (complex linguistic needs).
    Technical,
    /// Corporate/academic professional with high query volume.
    Professional,
}

/// Data environment character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Environment {
    /// Stable and standardized, repetitive queries.
    Stable,
    /// Heterogeneous data needing integration and analysis.
    Complex,
    /// Latency-sensitive, rapidly changing.
    FastPaced,
}

/// A user profile for system selection.
#[derive(Debug, Clone, Copy)]
pub struct UserProfile {
    pub expertise: Expertise,
    pub environment: Environment,
    /// Needs to handle diverse, open-ended queries.
    pub needs_flexibility: bool,
}

/// A recommendation with its rationale.
#[derive(Debug, Clone)]
pub struct Recommendation {
    pub architecture: Architecture,
    pub rationale: String,
}

/// Recommend an architecture for a profile (the §5.4 decision table).
pub fn recommend(profile: &UserProfile) -> Recommendation {
    let (architecture, rationale) = match profile.expertise {
        Expertise::Basic => {
            if profile.needs_flexibility {
                (
                    Architecture::EndToEnd,
                    "basic users needing flexibility handle diverse queries effortlessly \
                     with end-to-end systems",
                )
            } else {
                (
                    Architecture::RuleBased,
                    "rule-based systems offer simplicity and accuracy in well-defined \
                     domains for basic users",
                )
            }
        }
        Expertise::Technical => (
            Architecture::ParsingBased,
            "parsing-based systems excel at intricate linguistic structures for \
             technically skilled users",
        ),
        Expertise::Professional => match profile.environment {
            Environment::Stable => (
                Architecture::RuleBased,
                "in stable, standardized environments rule-based systems ensure reliable \
                 performance for repetitive queries",
            ),
            Environment::Complex => (
                Architecture::MultiStage,
                "complex data environments benefit from multi-stage adaptability and \
                 accuracy",
            ),
            Environment::FastPaced => (
                Architecture::EndToEnd,
                "fast-paced environments need end-to-end systems minimizing latency and \
                 adapting rapidly",
            ),
        },
    };
    Recommendation {
        architecture,
        rationale: rationale.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(e: Expertise, env: Environment, flex: bool) -> UserProfile {
        UserProfile {
            expertise: e,
            environment: env,
            needs_flexibility: flex,
        }
    }

    #[test]
    fn basic_users_get_rules_or_end_to_end() {
        assert_eq!(
            recommend(&profile(Expertise::Basic, Environment::Stable, false)).architecture,
            Architecture::RuleBased
        );
        assert_eq!(
            recommend(&profile(Expertise::Basic, Environment::Stable, true)).architecture,
            Architecture::EndToEnd
        );
    }

    #[test]
    fn technical_users_get_parsing() {
        assert_eq!(
            recommend(&profile(Expertise::Technical, Environment::Complex, false)).architecture,
            Architecture::ParsingBased
        );
    }

    #[test]
    fn professionals_split_by_environment() {
        assert_eq!(
            recommend(&profile(
                Expertise::Professional,
                Environment::Stable,
                false
            ))
            .architecture,
            Architecture::RuleBased
        );
        assert_eq!(
            recommend(&profile(
                Expertise::Professional,
                Environment::Complex,
                false
            ))
            .architecture,
            Architecture::MultiStage
        );
        assert_eq!(
            recommend(&profile(
                Expertise::Professional,
                Environment::FastPaced,
                false
            ))
            .architecture,
            Architecture::EndToEnd
        );
    }

    #[test]
    fn every_recommendation_has_a_rationale() {
        for e in [
            Expertise::Basic,
            Expertise::Technical,
            Expertise::Professional,
        ] {
            for env in [
                Environment::Stable,
                Environment::Complex,
                Environment::FastPaced,
            ] {
                for flex in [false, true] {
                    let r = recommend(&profile(e, env, flex));
                    assert!(r.rationale.len() > 20);
                }
            }
        }
    }
}
