//! Concurrent session serving over a shared engine.
//!
//! AskYourDB-class deployments serve many users at once, each holding an
//! independent conversation. [`ParSessionPool`] models that workload: every
//! script (one user's sequence of questions) runs in its own [`Session`]
//! with its own dialogue state, scripts fan out across the
//! [`nli_core::par`] runtime, and all sessions execute through *one*
//! [`SqlEngine`] — so the plan cache warmed by one user serves every other
//! user asking the same question of the same schema.
//!
//! Determinism: sessions never communicate, each transcript depends only on
//! its own script, and transcripts come back in script order — serving in
//! parallel returns exactly what serving serially would (latency fields
//! aside).

use crate::architectures::SystemResponse;
use crate::session::Session;
use nli_core::{par, Database, NlQuestion, Result};
use nli_sql::SqlEngine;

/// A pool that serves independent conversational sessions concurrently
/// over one shared engine (and plan cache).
pub struct ParSessionPool {
    engine: SqlEngine,
}

impl ParSessionPool {
    pub fn new() -> ParSessionPool {
        ParSessionPool {
            engine: SqlEngine::new(),
        }
    }

    /// A pool executing through a caller-supplied engine.
    pub fn with_engine(engine: SqlEngine) -> ParSessionPool {
        ParSessionPool { engine }
    }

    /// The shared engine (e.g. for cache statistics).
    pub fn engine(&self) -> &SqlEngine {
        &self.engine
    }

    /// Serve `scripts[i]` in its own fresh session; transcript `i` holds
    /// the per-turn responses of script `i`, in turn order.
    pub fn serve(
        &self,
        db: &Database,
        scripts: &[Vec<NlQuestion>],
    ) -> Vec<Vec<Result<SystemResponse>>> {
        let registry = nli_core::obs::global();
        let _timing = registry.span("pool.serve");
        registry.counter("pool.sessions").add(scripts.len() as u64);
        registry
            .counter("pool.turns")
            .add(scripts.iter().map(|s| s.len() as u64).sum());
        par::par_map(scripts, |_, script| {
            // Per-session trace tree; shape is worker-count independent.
            let _trace = nli_core::obs::global().trace_span("pool.session");
            let mut session = Session::with_engine(self.engine.clone());
            script.iter().map(|q| session.ask(q, db)).collect()
        })
    }
}

impl Default for ParSessionPool {
    fn default() -> Self {
        ParSessionPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::architectures::SystemOutput;
    use nli_core::{Column, DataType, Schema, Table, Value};

    fn db() -> Database {
        let schema = Schema::new(
            "shop",
            vec![Table::new(
                "sales",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("category", DataType::Text),
                    Column::new("amount", DataType::Float),
                ],
            )],
        );
        let mut d = Database::empty(schema);
        d.insert_all(
            "sales",
            vec![
                vec![1.into(), "Tools".into(), 100.0.into()],
                vec![2.into(), "Toys".into(), 50.0.into()],
                vec![3.into(), "Tools".into(), 70.0.into()],
            ],
        )
        .unwrap();
        d
    }

    fn scripts(n: usize) -> Vec<Vec<NlQuestion>> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    vec![
                        NlQuestion::new("How many sales are there?"),
                        NlQuestion::new("Only those with amount greater than 60."),
                    ]
                } else {
                    vec![NlQuestion::new("How many sales are there?")]
                }
            })
            .collect()
    }

    fn programs(transcripts: &[Vec<Result<SystemResponse>>]) -> Vec<Vec<Option<String>>> {
        transcripts
            .iter()
            .map(|t| {
                t.iter()
                    .map(|r| r.as_ref().ok().and_then(|resp| resp.program.clone()))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn concurrent_sessions_keep_independent_dialogue_state() {
        let pool = ParSessionPool::new();
        let d = db();
        let transcripts = pool.serve(&d, &scripts(8));
        assert_eq!(transcripts.len(), 8);
        for (i, t) in transcripts.iter().enumerate() {
            // turn 1 of every session: COUNT over all three rows
            match &t[0].as_ref().unwrap().output {
                SystemOutput::Table(rs) => assert_eq!(rs.rows[0][0], Value::Int(3)),
                other => panic!("session {i}: {other:?}"),
            }
            // turn 2 (even sessions): the refinement sees only 2 rows,
            // proving the neighbour sessions' turns didn't leak in
            if t.len() == 2 {
                match &t[1].as_ref().unwrap().output {
                    SystemOutput::Table(rs) => assert_eq!(rs.rows[0][0], Value::Int(2)),
                    other => panic!("session {i}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn parallel_serving_matches_serial_serving() {
        let d = db();
        let s = scripts(6);
        let serial = nli_core::with_threads(1, || ParSessionPool::new().serve(&d, &s));
        let parallel = nli_core::with_threads(4, || ParSessionPool::new().serve(&d, &s));
        assert_eq!(programs(&serial), programs(&parallel));
    }

    #[test]
    fn sessions_share_one_plan_cache() {
        let pool = ParSessionPool::new();
        let d = db();
        pool.serve(&d, &scripts(8));
        let stats = pool.engine().cache_stats();
        // 8 sessions ask the same first question; the plan compiles far
        // fewer times than it executes
        assert!(stats.hits > 0, "{stats:?}");
        assert!(stats.hit_rate() > 0.0);
        assert!(stats.hit_rate().is_finite());
    }
}
