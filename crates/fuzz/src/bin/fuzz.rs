//! Conformance fuzzing driver.
//!
//! ```text
//! cargo run --release -p nli-fuzz --bin fuzz -- --seed 42 --cases 500
//! ```
//!
//! Runs the generated case batch twice — sequentially and at the
//! configured `NLI_THREADS` worker count — and requires both passes to be
//! violation-free with identical result digests. Everything on stdout is
//! a pure function of `(--seed, --start, --cases)`: thread-count and
//! timing chatter goes to stderr, so CI can compare stdout bytes across
//! worker counts and repeat runs.
//!
//! Flags:
//! - `--seed N`       base seed (default 42)
//! - `--cases N`      number of cases (default 500)
//! - `--start N`      first case index (default 0)
//! - `--max-shrink N` cap on accepted shrink steps per violation (default 400)
//! - `--inject-bug`   negative mode: mutate one comparison per case and
//!   require the differential oracle to catch at least one such bug, then
//!   shrink the first catch to a minimal reproducer (exits 1 if nothing
//!   is caught — i.e. the oracle is broken)
//!
//! A violation report prints the offending SQL, the minimized
//! reproducer, and the replay command line.

use nli_core::{par_map, thread_count, with_threads, ExecutionEngine};
use nli_fuzz::oracle::{check_case, CaseReport, Violation};
use nli_fuzz::{gen_case, gen_vis_case, minimize, mutate_comparison, Digest, GenConfig};
use nli_sql::ast::Query;
use nli_sql::interp::run_tree_walk;
use nli_sql::{ResultSet, SqlEngine};
use nli_vql::{parse_vis, VisEngine, VisQuery};
use std::process::ExitCode;

struct Args {
    seed: u64,
    cases: u64,
    start: u64,
    max_shrink: u32,
    inject_bug: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        cases: 500,
        start: 0,
        max_shrink: 400,
        inject_bug: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let numeric = |it: &mut dyn Iterator<Item = String>| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{flag}: {e}"))
        };
        match flag.as_str() {
            "--seed" => args.seed = numeric(&mut it)?,
            "--cases" => args.cases = numeric(&mut it)?,
            "--start" => args.start = numeric(&mut it)?,
            "--max-shrink" => args.max_shrink = numeric(&mut it)? as u32,
            "--inject-bug" => args.inject_bug = true,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

/// VQL leg of one case: print/parse round-trip plus render execution.
fn vis_check(index: u64, v: &VisQuery, db: &nli_core::Database) -> (String, Vec<Violation>) {
    let mut violations = Vec::new();
    let vql = v.to_string();
    match parse_vis(&vql) {
        Ok(p) if p == *v => {}
        Ok(_) => violations.push(Violation {
            case_index: index,
            oracle: "vis/roundtrip".to_string(),
            sql: vql.clone(),
            detail: "printed VQL reparses to a different spec".to_string(),
        }),
        Err(e) => violations.push(Violation {
            case_index: index,
            oracle: "vis/roundtrip".to_string(),
            sql: vql.clone(),
            detail: format!("printed VQL fails to reparse: {e}"),
        }),
    }
    match VisEngine::new().execute(v, db) {
        Ok(chart) => {
            let text = format!("vis:{}:{}", chart.render_ascii(), chart.spec.to_vega_lite());
            (text, violations)
        }
        Err(e) => {
            violations.push(Violation {
                case_index: index,
                oracle: "vis/execute".to_string(),
                sql: vql,
                detail: format!("generator-shaped VQL failed to render: {e}"),
            });
            (format!("vis-err:{e}"), violations)
        }
    }
}

/// Per-case digest text plus any violations from the VQL leg.
type VisPart = (String, Vec<Violation>);

struct BatchOutcome {
    digest: u64,
    violations: Vec<Violation>,
    rewrites_checked: u64,
    vis_cases: u64,
}

/// Run the whole batch at `threads` workers. Results are a pure function
/// of the arguments — `par_map` is order-stable and every case derives
/// its own Prng stream from `(seed, index)`.
fn run_batch(args: &Args, cfg: &GenConfig, threads: usize) -> BatchOutcome {
    with_threads(threads, || {
        let engine = SqlEngine::new();
        let indices: Vec<u64> = (args.start..args.start + args.cases).collect();
        let reports: Vec<(CaseReport, Option<VisPart>)> = par_map(&indices, |_, &i| {
            let case = gen_case(args.seed, i, cfg);
            let report = check_case(i, &case.query, &case.db, &engine);
            let (vdb, vis) = gen_vis_case(args.seed, i, cfg);
            let vis_part = vis.map(|v| vis_check(i, &v, &vdb));
            (report, vis_part)
        });
        let mut digest = Digest::new();
        let mut violations = Vec::new();
        let mut rewrites_checked = 0u64;
        let mut vis_cases = 0u64;
        for (report, vis_part) in reports {
            digest.update(report.digest_text.as_bytes());
            rewrites_checked += u64::from(report.rewrites_checked);
            violations.extend(report.violations);
            if let Some((text, viols)) = vis_part {
                vis_cases += 1;
                digest.update(text.as_bytes());
                violations.extend(viols);
            }
        }
        BatchOutcome {
            digest: digest.finish(),
            violations,
            rewrites_checked,
            vis_cases,
        }
    })
}

/// Shrink a violating case and print the reproducer block.
fn report_violation(args: &Args, cfg: &GenConfig, v: &Violation) {
    println!(
        "VIOLATION [{}] case={} sql={}",
        v.oracle, v.case_index, v.sql
    );
    println!("  detail: {}", v.detail);
    let case = gen_case(args.seed, v.case_index, cfg);
    if case.query.to_string() == v.sql {
        let engine = SqlEngine::new();
        let oracle = v.oracle.clone();
        let predicate = |q: &Query| {
            check_case(v.case_index, q, &case.db, &engine)
                .violations
                .iter()
                .any(|w| w.oracle == oracle)
        };
        let shrunk = minimize(&case.query, predicate, args.max_shrink);
        println!(
            "  minimized ({} steps, {} -> {} nodes): {}",
            shrunk.steps, shrunk.nodes_before, shrunk.nodes_after, shrunk.query
        );
        // Re-run the failing case with per-query trace events on and print
        // each oracle leg's span tree. Rendered without timings, so stdout
        // stays a pure function of the arguments.
        let registry = nli_core::obs::global();
        let was_enabled = registry.trace_events_enabled();
        registry.set_trace_events(true);
        let _ = registry.drain_trace_trees();
        let _ = check_case(v.case_index, &case.query, &case.db, &engine);
        let trees = registry.drain_trace_trees();
        registry.set_trace_events(was_enabled);
        for tree in trees.iter().filter(|t| t.root().label == "fuzz.case") {
            println!("  per-leg trace:");
            for line in tree.render(false).lines() {
                println!("    {line}");
            }
        }
    }
    println!(
        "  replay: cargo run -p nli-fuzz --bin fuzz -- --seed {} --start {} --cases 1",
        args.seed, v.case_index
    );
}

fn outcomes_differ(
    a: &Result<ResultSet, nli_core::NliError>,
    b: &Result<ResultSet, nli_core::NliError>,
) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => !y.matches_canonical(&x.to_canonical()),
        (Err(_), Err(_)) => false,
        _ => true,
    }
}

/// Negative mode: prove the oracle catches an injected comparison bug.
fn inject_bug_run(args: &Args, cfg: &GenConfig) -> ExitCode {
    let engine = SqlEngine::new();
    let mut caught = 0u64;
    let mut first: Option<(u64, Query)> = None;
    for i in args.start..args.start + args.cases {
        let case = gen_case(args.seed, i, cfg);
        let Some(mutated) = mutate_comparison(&case.query) else {
            continue;
        };
        let honest = run_tree_walk(&case.query, &case.db);
        let buggy = engine
            .prepare_ast(&mutated, &case.db.schema)
            .and_then(|p| p.execute(&case.db));
        if outcomes_differ(&honest, &buggy) {
            caught += 1;
            if first.is_none() {
                first = Some((i, case.query.clone()));
            }
        }
    }
    println!(
        "inject-bug: flipped one comparison per case; {caught} of {} mutable cases caught",
        args.cases
    );
    let Some((index, query)) = first else {
        println!("inject-bug: oracle caught nothing -- the harness is broken");
        return ExitCode::FAILURE;
    };
    let case = gen_case(args.seed, index, cfg);
    let predicate = |q: &Query| {
        let Some(m) = mutate_comparison(q) else {
            return false;
        };
        let honest = run_tree_walk(q, &case.db);
        let buggy = engine
            .prepare_ast(&m, &case.db.schema)
            .and_then(|p| p.execute(&case.db));
        outcomes_differ(&honest, &buggy)
    };
    let shrunk = minimize(&query, predicate, args.max_shrink);
    println!(
        "first catch: case={index} minimized ({} steps, {} -> {} nodes)",
        shrunk.steps, shrunk.nodes_before, shrunk.nodes_after
    );
    println!("  honest:  {}", shrunk.query);
    println!(
        "  mutated: {}",
        mutate_comparison(&shrunk.query).expect("minimized case still has a comparison")
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };
    nli_core::obs::enable_trace_events_from_env();
    let cfg = GenConfig::default();
    if args.inject_bug {
        return inject_bug_run(&args, &cfg);
    }

    println!(
        "nli-fuzz seed={} start={} cases={}",
        args.seed, args.start, args.cases
    );
    eprintln!(
        "running sequential pass, then a {}-worker pass",
        thread_count()
    );
    let seq = run_batch(&args, &cfg, 1);
    let par = run_batch(&args, &cfg, thread_count());

    let mut failed = false;
    println!(
        "cases={} vis-cases={} rewrites-checked={} case-digest={:#018x}",
        args.cases, seq.vis_cases, seq.rewrites_checked, seq.digest
    );
    if par.digest != seq.digest || par.rewrites_checked != seq.rewrites_checked {
        println!(
            "VIOLATION [parallel-determinism] sequential digest {:#018x} != parallel digest {:#018x}",
            seq.digest, par.digest
        );
        failed = true;
    }
    let total_violations = seq.violations.len() + par.violations.len();
    println!("violations={}", seq.violations.len());
    for v in seq.violations.iter().chain(par.violations.iter()) {
        report_violation(&args, &cfg, v);
        failed = true;
    }
    if let Err(e) = nli_core::obs::export_trace_if_requested() {
        eprintln!("fuzz: trace export failed: {e}");
    }
    if failed || total_violations > 0 {
        println!("FAIL");
        ExitCode::FAILURE
    } else {
        println!("PASS");
        ExitCode::SUCCESS
    }
}
