//! Greedy case minimization: shrink a failing query while the caller's
//! predicate still reports failure.
//!
//! The shrinker is 1-minimal in its candidate moves: it repeatedly tries
//! every structural deletion (drop the compound tail, a SELECT item, the
//! WHERE clause, an ORDER BY key, a boolean subtree…) and literal
//! simplification (integers toward 0, strings toward "", LIKE patterns
//! toward `%`), accepting the first candidate that still fails and
//! restarting. Every accepted step either removes AST nodes or moves a
//! literal strictly down a well-founded order, so the loop terminates
//! without relying on the step cap (which exists as a belt-and-braces
//! bound, surfaced as `--max-shrink` on the driver).

use crate::fuzz_obs;
use nli_core::{Date, Value};
use nli_sql::ast::{Expr, Query, Select};

/// The outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    pub query: Query,
    pub steps: u32,
    pub nodes_before: u32,
    pub nodes_after: u32,
}

/// Shrink `q` while `still_fails` holds, taking at most `max_steps`
/// accepted shrink steps.
pub fn minimize(q: &Query, still_fails: impl Fn(&Query) -> bool, max_steps: u32) -> ShrinkResult {
    let nodes_before = node_count(q);
    let mut cur = q.clone();
    let mut steps = 0;
    'outer: while steps < max_steps {
        for cand in candidates(&cur) {
            if cand != cur && still_fails(&cand) {
                cur = cand;
                steps += 1;
                fuzz_obs().shrink_steps.inc();
                continue 'outer;
            }
        }
        break;
    }
    ShrinkResult {
        nodes_after: node_count(&cur),
        query: cur,
        steps,
        nodes_before,
    }
}

/// Count AST nodes: one per expression node, table, order key, plus one
/// per structural clause (DISTINCT, LIMIT, compound operator).
pub fn node_count(q: &Query) -> u32 {
    let s = &q.select;
    let mut n = 1; // the SELECT itself
    n += s.items.iter().map(|i| expr_nodes(&i.expr)).sum::<u32>();
    n += (s.from.len() + s.joins.len()) as u32;
    n += s.where_clause.as_ref().map_or(0, expr_nodes);
    n += s.group_by.iter().map(expr_nodes).sum::<u32>();
    n += s.having.as_ref().map_or(0, expr_nodes);
    n += s.order_by.iter().map(|o| expr_nodes(&o.expr)).sum::<u32>();
    n += u32::from(s.limit.is_some());
    n += u32::from(s.distinct);
    if let Some((_, rhs)) = &q.compound {
        n += 1 + node_count(rhs);
    }
    n
}

fn expr_nodes(e: &Expr) -> u32 {
    1 + match e {
        Expr::Binary { left, right, .. } => expr_nodes(left) + expr_nodes(right),
        Expr::Not(inner) => expr_nodes(inner),
        Expr::Agg { arg, .. } => expr_nodes(arg),
        Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => expr_nodes(expr),
        Expr::Between {
            expr, low, high, ..
        } => expr_nodes(expr) + expr_nodes(low) + expr_nodes(high),
        Expr::InList { expr, list, .. } => expr_nodes(expr) + list.len() as u32,
        Expr::InSubquery { expr, query, .. } => expr_nodes(expr) + node_count(query),
        Expr::ScalarSubquery(query) => node_count(query),
        Expr::Column(_) | Expr::Literal(_) | Expr::Star => 0,
    }
}

/// All one-step shrink candidates, most aggressive first.
fn candidates(q: &Query) -> Vec<Query> {
    let mut out = Vec::new();
    if let Some((_, rhs)) = &q.compound {
        let mut c = q.clone();
        c.compound = None;
        out.push(c);
        out.push((**rhs).clone());
    }
    let mut with_select = |f: &dyn Fn(&mut Select)| {
        let mut c = q.clone();
        f(&mut c.select);
        out.push(c);
    };
    if q.select.limit.is_some() {
        with_select(&|s| s.limit = None);
    }
    if !q.select.order_by.is_empty() {
        with_select(&|s| {
            s.order_by.clear();
            s.limit = None; // LIMIT without ORDER BY is out of grammar scope
        });
        for i in 0..q.select.order_by.len() {
            with_select(&|s| {
                s.order_by.remove(i);
            });
        }
    }
    if q.select.having.is_some() {
        with_select(&|s| s.having = None);
    }
    if !q.select.group_by.is_empty() {
        with_select(&|s| s.group_by.clear());
    }
    if q.select.where_clause.is_some() {
        with_select(&|s| s.where_clause = None);
    }
    if q.select.distinct {
        with_select(&|s| s.distinct = false);
    }
    if q.select.items.len() > 1 {
        for i in 0..q.select.items.len() {
            with_select(&|s| {
                s.items.remove(i);
            });
        }
    }
    if q.select.from.len() > 1 {
        // drop the last joined table and its join condition
        with_select(&|s| {
            s.from.pop();
            s.joins.pop();
        });
    }
    if let Some(w) = &q.select.where_clause {
        for e in shrink_expr(w) {
            let mut c = q.clone();
            c.select.where_clause = Some(e);
            out.push(c);
        }
    }
    if let Some(h) = &q.select.having {
        for e in shrink_expr(h) {
            let mut c = q.clone();
            c.select.having = Some(e);
            out.push(c);
        }
    }
    for (i, item) in q.select.items.iter().enumerate() {
        for e in shrink_expr(&item.expr) {
            let mut c = q.clone();
            c.select.items[i].expr = e;
            out.push(c);
        }
    }
    out
}

/// One-step shrinks of an expression: subtree replacement and literal
/// simplification, recursively.
fn shrink_expr(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    match e {
        Expr::Binary { left, op, right } => {
            if matches!(op, nli_sql::ast::BinOp::And | nli_sql::ast::BinOp::Or) {
                out.push((**left).clone());
                out.push((**right).clone());
            }
            for l in shrink_expr(left) {
                out.push(Expr::Binary {
                    left: Box::new(l),
                    op: *op,
                    right: right.clone(),
                });
            }
            for r in shrink_expr(right) {
                out.push(Expr::Binary {
                    left: left.clone(),
                    op: *op,
                    right: Box::new(r),
                });
            }
        }
        Expr::Not(inner) => {
            out.push((**inner).clone());
            for i in shrink_expr(inner) {
                out.push(Expr::Not(Box::new(i)));
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            for (slot, shrunk) in [
                (0, shrink_expr(expr)),
                (1, shrink_expr(low)),
                (2, shrink_expr(high)),
            ] {
                for s in shrunk {
                    let mut parts = [expr.clone(), low.clone(), high.clone()];
                    *parts[slot] = s;
                    let [e2, l2, h2] = parts;
                    out.push(Expr::Between {
                        expr: e2,
                        low: l2,
                        high: h2,
                        negated: *negated,
                    });
                }
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            if list.len() > 1 {
                for i in 0..list.len() {
                    let mut l = list.clone();
                    l.remove(i);
                    out.push(Expr::InList {
                        expr: expr.clone(),
                        list: l,
                        negated: *negated,
                    });
                }
            }
            for (i, v) in list.iter().enumerate() {
                for sv in shrink_value(v) {
                    let mut l = list.clone();
                    l[i] = sv;
                    out.push(Expr::InList {
                        expr: expr.clone(),
                        list: l,
                        negated: *negated,
                    });
                }
            }
            for s in shrink_expr(expr) {
                out.push(Expr::InList {
                    expr: Box::new(s),
                    list: list.clone(),
                    negated: *negated,
                });
            }
        }
        Expr::InSubquery { expr, negated, .. } => {
            // collapse the subquery away entirely, keeping a predicate shape
            out.push(Expr::InList {
                expr: expr.clone(),
                list: Vec::new(),
                negated: *negated,
            });
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            if pattern != "%" {
                out.push(Expr::Like {
                    expr: expr.clone(),
                    pattern: "%".to_string(),
                    negated: *negated,
                });
            }
            for s in shrink_expr(expr) {
                out.push(Expr::Like {
                    expr: Box::new(s),
                    pattern: pattern.clone(),
                    negated: *negated,
                });
            }
        }
        Expr::IsNull { expr, negated } => {
            for s in shrink_expr(expr) {
                out.push(Expr::IsNull {
                    expr: Box::new(s),
                    negated: *negated,
                });
            }
        }
        Expr::Agg {
            func,
            arg,
            distinct,
        } => {
            for s in shrink_expr(arg) {
                out.push(Expr::Agg {
                    func: *func,
                    arg: Box::new(s),
                    distinct: *distinct,
                });
            }
        }
        Expr::Literal(v) => {
            out.extend(shrink_value(v).into_iter().map(Expr::Literal));
        }
        Expr::Column(_) | Expr::Star | Expr::ScalarSubquery(_) => {}
    }
    out
}

/// Simplifications of a literal, each strictly smaller under a
/// well-founded order (|int| decreases, string shortens, etc.).
fn shrink_value(v: &Value) -> Vec<Value> {
    match v {
        Value::Int(i) if *i != 0 => {
            let mut out = vec![Value::Int(0)];
            if i / 2 != 0 {
                out.push(Value::Int(i / 2));
            }
            out
        }
        Value::Float(f) if *f != 0.0 => vec![Value::Float(0.0)],
        Value::Text(s) if !s.is_empty() => {
            let mut out = vec![Value::Text(String::new())];
            let first: String = s.chars().take(1).collect();
            if &first != s {
                out.push(Value::Text(first));
            }
            out
        }
        Value::Bool(true) => vec![Value::Bool(false)],
        Value::Date(d) if *d != Date::new(2000, 1, 1) => vec![Value::Date(Date::new(2000, 1, 1))],
        _ => Vec::new(),
    }
}
