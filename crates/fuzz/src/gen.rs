//! Grammar-directed random query generation over schema_gen databases.
//!
//! Every case derives from a `(seed, index)` pair via
//! [`Prng::for_case`], so a one-line failure report replays exactly. The
//! generator is *restricted to the sound subset* of the dialect: queries
//! it emits must be accepted by all three execution paths and must not
//! trip the two documented interp/plan divergences (eager vs lazy name
//! resolution, pushdown-surfaced type errors). Concretely:
//!
//! - every column reference resolves against the FROM tables, qualified
//!   whenever more than one table is in scope;
//! - comparisons are type-compatible (same column type, or numeric vs
//!   numeric), so predicate pushdown can never surface a type error a
//!   cross join would have discarded;
//! - arithmetic appears only in SELECT items (never in predicates) and
//!   never divides, so no row-dependent evaluation errors exist;
//! - ORDER BY keys are totalized with primary-key tiebreakers, so ordered
//!   comparisons between engines are never confounded by ties.
//!
//! NULL coverage: schema_gen data is almost NULL-free, so the generator
//! re-injects NULLs into non-primary-key cells (foreign keys included —
//! that is what exercises NULL join keys) with probability
//! [`GenConfig::null_p`] before any query runs.

use nli_core::{DataType, Database, Date, Prng, Value};
use nli_data::domains::all_domains;
use nli_data::schema_gen::{generate_database, DbGenConfig};
use nli_sql::ast::{
    AggFunc, BinOp, ColName, Expr, JoinCond, OrderItem, Query, Select, SelectItem, SetOp, TableRef,
};
use nli_vql::{BinUnit, ChartType, VisQuery};

/// Knobs for the query generator. Probabilities are per-decision.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Probability that a non-primary-key cell is replaced with NULL.
    pub null_p: f64,
    /// Probability of a two-table JOIN (when the schema has an FK pair).
    pub join_p: f64,
    /// Probability of a WHERE clause.
    pub where_p: f64,
    /// Probability the query aggregates (GROUP BY or bare aggregates).
    pub aggregate_p: f64,
    /// Probability of SELECT DISTINCT on plain queries.
    pub distinct_p: f64,
    /// Probability of an ORDER BY.
    pub order_p: f64,
    /// Probability of a LIMIT (only ever emitted under ORDER BY).
    pub limit_p: f64,
    /// Probability of a compound (UNION/INTERSECT/EXCEPT) tail.
    pub compound_p: f64,
    /// Maximum boolean connective depth in WHERE.
    pub max_pred_depth: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            null_p: 0.12,
            join_p: 0.35,
            where_p: 0.7,
            aggregate_p: 0.3,
            distinct_p: 0.3,
            order_p: 0.4,
            limit_p: 0.5,
            compound_p: 0.12,
            max_pred_depth: 2,
        }
    }
}

/// One replayable fuzz case: a database and a query over it.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    pub seed: u64,
    pub index: u64,
    pub db: Database,
    pub query: Query,
}

/// Generate the case for `(seed, index)`.
pub fn gen_case(seed: u64, index: u64, cfg: &GenConfig) -> FuzzCase {
    let mut rng = Prng::for_case(seed, index);
    let db = gen_db(index, cfg, &mut rng);
    let query = gen_query(&db, cfg, &mut rng);
    FuzzCase {
        seed,
        index,
        db,
        query,
    }
}

/// Generate a VQL case for `(seed, index)`: the stream is salted so it
/// never collides with the SQL case of the same index. Returns `None`
/// when the sampled database cannot host the sampled chart shape (e.g.
/// scatter needs two numeric columns).
pub fn gen_vis_case(seed: u64, index: u64, cfg: &GenConfig) -> (Database, Option<VisQuery>) {
    let mut rng = Prng::for_case(seed ^ VIS_SALT, index);
    let db = gen_db(index, cfg, &mut rng);
    let vis = gen_vis(&db, &mut rng);
    (db, vis)
}

/// Seed perturbation separating the VQL stream from the SQL stream.
const VIS_SALT: u64 = 0x5EED_0DD5;

fn gen_db(index: u64, cfg: &GenConfig, rng: &mut Prng) -> Database {
    let domains = all_domains();
    let domain = domains[rng.below(domains.len())];
    let mut db = generate_database(domain, index as usize, &DbGenConfig::default(), rng);
    inject_nulls(&mut db, cfg.null_p, rng);
    db
}

/// Replace non-primary-key cells with NULL at probability `p`. Foreign-key
/// columns are eligible, so NULL join keys get fuzzed.
fn inject_nulls(db: &mut Database, p: f64, rng: &mut Prng) {
    if p <= 0.0 {
        return;
    }
    let nullable: Vec<Vec<bool>> = db
        .schema
        .tables
        .iter()
        .map(|t| t.columns.iter().map(|c| !c.primary_key).collect())
        .collect();
    for (ti, td) in db.data.iter_mut().enumerate() {
        for row in &mut td.rows {
            for (ci, cell) in row.iter_mut().enumerate() {
                if nullable[ti][ci] && rng.chance(p) {
                    *cell = Value::Null;
                }
            }
        }
    }
    // Direct `data` edits bypass `Database::insert`'s cache invalidation.
    db.invalidate_derived();
}

/// A column in scope, with everything the generator needs to reference it.
#[derive(Debug, Clone)]
struct ColPick {
    ti: usize,
    ci: usize,
    name: ColName,
    dtype: DataType,
}

/// The FROM tables of the query under construction.
struct Scope {
    tables: Vec<usize>,
    qualify: bool,
}

impl Scope {
    fn col_name(&self, db: &Database, ti: usize, ci: usize) -> ColName {
        let t = &db.schema.tables[ti];
        if self.qualify {
            ColName::qualified(&t.name, &t.columns[ci].name)
        } else {
            ColName::new(&t.columns[ci].name)
        }
    }

    fn pick(&self, db: &Database, rng: &mut Prng) -> ColPick {
        let ti = *rng.pick(&self.tables);
        let ci = rng.below(db.schema.tables[ti].columns.len());
        self.make(db, ti, ci)
    }

    fn pick_where(
        &self,
        db: &Database,
        rng: &mut Prng,
        ok: impl Fn(DataType) -> bool,
    ) -> Option<ColPick> {
        let mut candidates = Vec::new();
        for &ti in &self.tables {
            for (ci, c) in db.schema.tables[ti].columns.iter().enumerate() {
                if ok(c.dtype) {
                    candidates.push((ti, ci));
                }
            }
        }
        if candidates.is_empty() {
            return None;
        }
        let (ti, ci) = *rng.pick(&candidates);
        Some(self.make(db, ti, ci))
    }

    fn make(&self, db: &Database, ti: usize, ci: usize) -> ColPick {
        ColPick {
            ti,
            ci,
            name: self.col_name(db, ti, ci),
            dtype: db.schema.tables[ti].columns[ci].dtype,
        }
    }
}

fn is_numeric(dt: DataType) -> bool {
    matches!(dt, DataType::Int | DataType::Float)
}

/// A literal grounded in the column's actual data when possible, so
/// predicates are selective rather than vacuous. Never NULL.
fn literal_for(db: &Database, c: &ColPick, rng: &mut Prng) -> Value {
    let vals = db.distinct_values(c.ti, c.ci);
    let mut v = if vals.is_empty() {
        fallback_value(c.dtype)
    } else {
        rng.pick(&vals).clone()
    };
    if let Value::Int(i) = v {
        if rng.chance(0.3) {
            v = Value::Int(i + rng.range(-2, 2));
        }
    }
    v
}

fn fallback_value(dt: DataType) -> Value {
    match dt {
        DataType::Int => Value::Int(0),
        DataType::Float => Value::Float(0.5),
        DataType::Text => Value::Text("x".to_string()),
        DataType::Bool => Value::Bool(true),
        DataType::Date => Value::Date(Date::new(2015, 6, 15)),
    }
}

/// One comparison `col op literal` with a type-compatible literal.
fn gen_comparison(db: &Database, scope: &Scope, rng: &mut Prng) -> Expr {
    let c = scope.pick(db, rng);
    let op = *rng.pick(&[
        BinOp::Eq,
        BinOp::Neq,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ]);
    let lit = literal_for(db, &c, rng);
    Expr::binary(Expr::Column(c.name), op, Expr::Literal(lit))
}

/// One atomic predicate (comparison / BETWEEN / LIKE / IN / IS NULL).
fn gen_leaf(db: &Database, scope: &Scope, rng: &mut Prng) -> Expr {
    match rng.below(10) {
        5 => gen_between(db, scope, rng),
        6 => gen_like(db, scope, rng),
        7 => gen_in_list(db, scope, rng),
        8 => {
            let c = scope.pick(db, rng);
            Expr::IsNull {
                expr: Box::new(Expr::Column(c.name)),
                negated: rng.chance(0.5),
            }
        }
        9 => gen_in_subquery(db, scope, rng),
        _ => gen_comparison(db, scope, rng),
    }
}

fn gen_between(db: &Database, scope: &Scope, rng: &mut Prng) -> Expr {
    let Some(c) = scope.pick_where(db, rng, |dt| is_numeric(dt) || dt == DataType::Date) else {
        return gen_comparison(db, scope, rng);
    };
    let mut lo = literal_for(db, &c, rng);
    let mut hi = literal_for(db, &c, rng);
    if lo.compare(&hi) == Some(std::cmp::Ordering::Greater) {
        std::mem::swap(&mut lo, &mut hi);
    }
    Expr::Between {
        expr: Box::new(Expr::Column(c.name)),
        low: Box::new(Expr::Literal(lo)),
        high: Box::new(Expr::Literal(hi)),
        negated: rng.chance(0.3),
    }
}

fn gen_like(db: &Database, scope: &Scope, rng: &mut Prng) -> Expr {
    let Some(c) = scope.pick_where(db, rng, |dt| dt == DataType::Text) else {
        return gen_comparison(db, scope, rng);
    };
    let base = match literal_for(db, &c, rng) {
        Value::Text(s) if !s.is_empty() => s,
        _ => "x".to_string(),
    };
    let chars: Vec<char> = base.chars().collect();
    let half: String = chars[..chars.len().div_ceil(2)].iter().collect();
    let tail: String = chars[chars.len() / 2..].iter().collect();
    let pattern = match rng.below(4) {
        0 => base,
        1 => format!("{half}%"),
        2 => format!("%{tail}"),
        _ => format!("%{half}%"),
    };
    Expr::Like {
        expr: Box::new(Expr::Column(c.name)),
        pattern,
        negated: rng.chance(0.25),
    }
}

fn gen_in_list(db: &Database, scope: &Scope, rng: &mut Prng) -> Expr {
    let c = scope.pick(db, rng);
    let n = 1 + rng.below(3);
    let list: Vec<Value> = (0..n).map(|_| literal_for(db, &c, rng)).collect();
    Expr::InList {
        expr: Box::new(Expr::Column(c.name)),
        list,
        negated: rng.chance(0.3),
    }
}

/// `col IN (SELECT col2 FROM t2 [WHERE ...])` with a type-matched inner
/// column; the subquery is uncorrelated (the dialect's restriction).
fn gen_in_subquery(db: &Database, scope: &Scope, rng: &mut Prng) -> Expr {
    let c = scope.pick(db, rng);
    let mut candidates = Vec::new();
    for (ti, t) in db.schema.tables.iter().enumerate() {
        for (ci, col) in t.columns.iter().enumerate() {
            if col.dtype == c.dtype {
                candidates.push((ti, ci));
            }
        }
    }
    if candidates.is_empty() {
        return gen_comparison(db, scope, rng);
    }
    let (sti, sci) = *rng.pick(&candidates);
    let inner_scope = Scope {
        tables: vec![sti],
        qualify: false,
    };
    let tname = db.schema.tables[sti].name.clone();
    let inner_col = db.schema.tables[sti].columns[sci].name.clone();
    let mut inner = Select::simple(&tname, vec![SelectItem::plain(Expr::col(&inner_col))]);
    if rng.chance(0.4) {
        inner.where_clause = Some(gen_comparison(db, &inner_scope, rng));
    }
    Expr::InSubquery {
        expr: Box::new(Expr::Column(c.name)),
        query: Box::new(Query::single(inner)),
        negated: rng.chance(0.25),
    }
}

/// A boolean predicate of bounded depth over AND/OR/NOT.
fn gen_pred(db: &Database, scope: &Scope, rng: &mut Prng, depth: u32) -> Expr {
    if depth == 0 || rng.chance(0.5) {
        return gen_leaf(db, scope, rng);
    }
    match rng.below(4) {
        0 | 1 => Expr::and(
            gen_pred(db, scope, rng, depth - 1),
            gen_pred(db, scope, rng, depth - 1),
        ),
        2 => Expr::or(
            gen_pred(db, scope, rng, depth - 1),
            gen_pred(db, scope, rng, depth - 1),
        ),
        _ => Expr::not(gen_pred(db, scope, rng, depth - 1)),
    }
}

/// Primary-key ORDER BY tiebreakers for every table in scope: with these
/// appended, sort order is total and positional comparison across engines
/// can never be confounded by tied keys.
fn pk_tiebreakers(db: &Database, scope: &Scope) -> Vec<OrderItem> {
    scope
        .tables
        .iter()
        .filter_map(|&ti| {
            db.schema.tables[ti].primary_key().map(|ci| OrderItem {
                expr: Expr::Column(scope.col_name(db, ti, ci)),
                desc: false,
            })
        })
        .collect()
}

/// Pick FROM tables: either one random table, or (at `join_p`, when the
/// schema has one) an FK-related pair joined with an explicit ON clause.
fn gen_from(
    db: &Database,
    cfg: &GenConfig,
    rng: &mut Prng,
) -> (Scope, Vec<TableRef>, Vec<JoinCond>) {
    let schema = &db.schema;
    if rng.chance(cfg.join_p) {
        let mut pairs = Vec::new();
        for a in 0..schema.tables.len() {
            for b in (a + 1)..schema.tables.len() {
                if schema.fk_between(a, b).is_some() {
                    pairs.push((a, b));
                }
            }
        }
        if !pairs.is_empty() {
            let (a, b) = *rng.pick(&pairs);
            let fk = schema
                .fk_between(a, b)
                .expect("pair came from fk_between scan");
            let scope = Scope {
                tables: vec![a, b],
                qualify: true,
            };
            let from = vec![
                TableRef {
                    name: schema.tables[a].name.clone(),
                },
                TableRef {
                    name: schema.tables[b].name.clone(),
                },
            ];
            let col_of = |r: nli_core::ColumnRef| {
                let t = &schema.tables[r.table];
                ColName::qualified(&t.name, &t.columns[r.column].name)
            };
            let join = JoinCond {
                left: col_of(fk.from),
                right: col_of(fk.to),
            };
            return (scope, from, vec![join]);
        }
    }
    let ti = rng.below(schema.tables.len());
    let scope = Scope {
        tables: vec![ti],
        qualify: false,
    };
    let from = vec![TableRef {
        name: schema.tables[ti].name.clone(),
    }];
    (scope, from, Vec::new())
}

/// One aggregate SELECT item (COUNT(*) / COUNT(col) / COUNT(DISTINCT col)
/// / SUM / AVG over numerics / MIN / MAX over anything).
fn gen_agg_item(db: &Database, scope: &Scope, rng: &mut Prng) -> Expr {
    match rng.below(6) {
        0 => Expr::count_star(),
        1 => {
            let c = scope.pick(db, rng);
            Expr::Agg {
                func: AggFunc::Count,
                arg: Box::new(Expr::Column(c.name)),
                distinct: rng.chance(0.4),
            }
        }
        2 | 3 => match scope.pick_where(db, rng, is_numeric) {
            Some(c) => Expr::agg(
                *rng.pick(&[AggFunc::Sum, AggFunc::Avg]),
                Expr::Column(c.name),
            ),
            None => Expr::count_star(),
        },
        _ => {
            let c = scope.pick(db, rng);
            Expr::agg(
                *rng.pick(&[AggFunc::Min, AggFunc::Max]),
                Expr::Column(c.name),
            )
        }
    }
}

fn gen_select(db: &Database, cfg: &GenConfig, rng: &mut Prng) -> Select {
    let (scope, from, joins) = gen_from(db, cfg, rng);
    let mut s = Select {
        distinct: false,
        items: Vec::new(),
        from,
        joins,
        where_clause: None,
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
        limit: None,
    };
    if rng.chance(cfg.where_p) {
        s.where_clause = Some(gen_pred(db, &scope, rng, cfg.max_pred_depth));
    }
    if rng.chance(cfg.aggregate_p) {
        gen_aggregate_shape(db, &scope, cfg, rng, &mut s);
    } else {
        gen_plain_shape(db, &scope, cfg, rng, &mut s);
    }
    s
}

/// GROUP BY one column plus an aggregate, or bare aggregates over the
/// whole input. ORDER BY (when present) uses the group column, which is
/// unique per output row, so the order is total without tiebreakers.
fn gen_aggregate_shape(
    db: &Database,
    scope: &Scope,
    cfg: &GenConfig,
    rng: &mut Prng,
    s: &mut Select,
) {
    if rng.chance(0.75) {
        let g = scope.pick(db, rng);
        let g_expr = Expr::Column(g.name);
        s.items = vec![
            SelectItem::plain(g_expr.clone()),
            SelectItem::plain(gen_agg_item(db, scope, rng)),
        ];
        s.group_by = vec![g_expr.clone()];
        if rng.chance(0.3) {
            s.having = Some(Expr::binary(
                Expr::count_star(),
                BinOp::Ge,
                Expr::lit(rng.range(1, 3)),
            ));
        }
        if rng.chance(cfg.order_p) {
            s.order_by = vec![OrderItem {
                expr: g_expr,
                desc: rng.chance(0.5),
            }];
            if rng.chance(cfg.limit_p) {
                s.limit = Some(rng.range(1, 12) as u64);
            }
        }
    } else {
        let n = 1 + rng.below(2);
        s.items = (0..n)
            .map(|_| SelectItem::plain(gen_agg_item(db, scope, rng)))
            .collect();
    }
}

fn gen_plain_shape(db: &Database, scope: &Scope, cfg: &GenConfig, rng: &mut Prng, s: &mut Select) {
    if rng.chance(0.06) && scope.tables.len() == 1 {
        s.items = vec![SelectItem::plain(Expr::Star)];
    } else {
        let n = 1 + rng.below(3);
        s.items = (0..n)
            .map(|_| SelectItem::plain(Expr::Column(scope.pick(db, rng).name)))
            .collect();
        // occasionally one arithmetic item (SELECT-only; never in predicates)
        if rng.chance(0.2) {
            if let Some(c) = scope.pick_where(db, rng, is_numeric) {
                let op = *rng.pick(&[BinOp::Add, BinOp::Sub, BinOp::Mul]);
                let rhs = match scope.pick_where(db, rng, is_numeric) {
                    Some(c2) if rng.chance(0.5) => Expr::Column(c2.name),
                    _ => Expr::lit(rng.range(1, 3)),
                };
                s.items.push(SelectItem::plain(Expr::binary(
                    Expr::Column(c.name),
                    op,
                    rhs,
                )));
            }
        }
        s.distinct = rng.chance(cfg.distinct_p);
    }
    if rng.chance(cfg.order_p) {
        let n = 1 + rng.below(2);
        s.order_by = (0..n)
            .map(|_| OrderItem {
                expr: Expr::Column(scope.pick(db, rng).name),
                desc: rng.chance(0.5),
            })
            .collect();
        s.order_by.extend(pk_tiebreakers(db, scope));
        if rng.chance(cfg.limit_p) {
            s.limit = Some(rng.range(1, 12) as u64);
        }
    }
}

fn gen_query(db: &Database, cfg: &GenConfig, rng: &mut Prng) -> Query {
    let select = gen_select(db, cfg, rng);
    let mut q = Query::single(select);
    let star = q.select.items.iter().any(|i| matches!(i.expr, Expr::Star));
    if !star && rng.chance(cfg.compound_p) {
        let arity = q.select.items.len();
        let ti = rng.below(db.schema.tables.len());
        let scope = Scope {
            tables: vec![ti],
            qualify: false,
        };
        let tname = db.schema.tables[ti].name.clone();
        let items: Vec<SelectItem> = (0..arity)
            .map(|_| SelectItem::plain(Expr::Column(scope.pick(db, rng).name)))
            .collect();
        let mut rhs = Select::simple(&tname, items);
        if rng.chance(0.5) {
            rhs.where_clause = Some(gen_pred(db, &scope, rng, 1));
        }
        let op = *rng.pick(&[SetOp::Union, SetOp::Intersect, SetOp::Except]);
        q.compound = Some((op, Box::new(Query::single(rhs))));
    }
    q
}

/// A VQL spec shaped so that `VisEngine` validation is satisfiable by
/// construction: scatter gets two numeric columns with NULL x filtered
/// out, pie gets a non-negative COUNT(*) measure, bar/line group by a
/// dimension; a BIN clause is added only over Date x columns.
fn gen_vis(db: &Database, rng: &mut Prng) -> Option<VisQuery> {
    let chart = *rng.pick(&ChartType::ALL);
    let ti = rng.below(db.schema.tables.len());
    let t = &db.schema.tables[ti];
    let scope = Scope {
        tables: vec![ti],
        qualify: false,
    };
    match chart {
        ChartType::Scatter => {
            let numeric: Vec<usize> = t
                .columns
                .iter()
                .enumerate()
                .filter(|(_, c)| is_numeric(c.dtype))
                .map(|(ci, _)| ci)
                .collect();
            if numeric.len() < 2 {
                return None;
            }
            let xi = numeric[rng.below(numeric.len())];
            let yi = *numeric.iter().find(|&&ci| ci != xi)?;
            let x = t.columns[xi].name.clone();
            let y = t.columns[yi].name.clone();
            let mut s = Select::simple(
                &t.name,
                vec![
                    SelectItem::plain(Expr::col(&x)),
                    SelectItem::plain(Expr::col(&y)),
                ],
            );
            // scatter x must be quantitative for every point: filter NULLs
            s.where_clause = Some(Expr::IsNull {
                expr: Box::new(Expr::col(&x)),
                negated: true,
            });
            Some(VisQuery::new(chart, Query::single(s)))
        }
        _ => {
            let xi = rng.below(t.columns.len());
            let x = t.columns[xi].name.clone();
            let x_expr = Expr::col(&x);
            let y_expr = if chart == ChartType::Pie {
                Expr::count_star()
            } else {
                match scope.pick_where(db, rng, is_numeric) {
                    Some(c) if rng.chance(0.5) => Expr::agg(AggFunc::Sum, Expr::Column(c.name)),
                    _ => Expr::count_star(),
                }
            };
            let mut s = Select::simple(
                &t.name,
                vec![SelectItem::plain(x_expr.clone()), SelectItem::plain(y_expr)],
            );
            s.group_by = vec![x_expr];
            let mut v = VisQuery::new(chart, Query::single(s));
            if t.columns[xi].dtype == DataType::Date && rng.chance(0.5) {
                let unit = *rng.pick(&[
                    BinUnit::Year,
                    BinUnit::Quarter,
                    BinUnit::Month,
                    BinUnit::Weekday,
                ]);
                v = v.with_bin(ColName::new(&x), unit);
            }
            Some(v)
        }
    }
}
