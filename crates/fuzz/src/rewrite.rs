//! Semantics-preserving query rewrites — the metamorphic oracle's rules.
//!
//! Each rule takes a query and produces a rewritten query plus the
//! *comparison mode* under which the two executions must agree. The modes
//! matter: a rewrite can be semantics-preserving for the result *multiset*
//! without preserving the order of tied rows (predicate commutation can
//! change which join the planner extracts, and with it the tie order), so
//! most rules compare canonical multisets. `LimitTruncate` alone compares
//! positionally — both executions run on the same engine with the same
//! stable sort, so the limited result must be exactly the prefix.
//!
//! Rules gate themselves on eligibility (`apply_rule` returns `None` when
//! a query is out of scope for the rule) rather than trusting callers:
//! e.g. `PredicateSplit` rewrites `WHERE p` into a UNION of
//! `p AND q` / `p AND NOT q` branches, which is only sound when the query
//! is a DISTINCT single-block select (UNION dedups) and `q` is *total*
//! (never NULL) — hence `q` is `x IS NULL`, the one predicate in the
//! dialect that is total by construction.

use nli_core::{Prng, Schema};
use nli_sql::ast::{Expr, Query, Select};

/// A metamorphic rewrite rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Swap the operands of one AND/OR node in WHERE.
    CommuteBool,
    /// `WHERE p` → `WHERE NOT NOT p` (also disables predicate pushdown,
    /// so it cross-checks the pushdown path against the residual path).
    DoubleNegation,
    /// `SELECT DISTINCT ... WHERE p` → UNION of `p AND x IS NULL` and
    /// `p AND x IS NOT NULL` branches.
    PredicateSplit,
    /// Permute the SELECT items; results must match under the inverse
    /// permutation.
    PermuteColumns,
    /// Drop `LIMIT n` from an ordered query; the original must equal the
    /// first `n` rows of the unlimited result.
    LimitTruncate,
}

impl Rule {
    pub const ALL: [Rule; 5] = [
        Rule::CommuteBool,
        Rule::DoubleNegation,
        Rule::PredicateSplit,
        Rule::PermuteColumns,
        Rule::LimitTruncate,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::CommuteBool => "commute-bool",
            Rule::DoubleNegation => "double-negation",
            Rule::PredicateSplit => "predicate-split",
            Rule::PermuteColumns => "permute-columns",
            Rule::LimitTruncate => "limit-truncate",
        }
    }
}

/// How the rewritten result must relate to the original.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompareMode {
    /// Same canonical multiset of rows.
    Multiset,
    /// Same multiset after remapping each rewritten row through the
    /// stored permutation (`original_row[i] == rewritten_row[inverse[i]]`).
    MultisetPermuted(Vec<usize>),
    /// The original (limited) result must be exactly the first `n` rows
    /// of the rewritten (unlimited) result, positionally.
    OrderedPrefix(usize),
}

/// A rewritten query plus its agreement contract.
#[derive(Debug, Clone)]
pub struct Rewrite {
    pub rule: Rule,
    pub rewritten: Query,
    pub compare: CompareMode,
}

/// Apply `rule` to `q`. Deterministic in `(q, salt)`: random choices
/// (which boolean node to commute, which column to split on) come from a
/// `Prng::new(salt)` stream, so the minimizer can re-apply the identical
/// rewrite as the query shrinks. Returns `None` when `q` is ineligible.
pub fn apply_rule(rule: Rule, q: &Query, schema: &Schema, salt: u64) -> Option<Rewrite> {
    let mut rng = Prng::new(salt);
    match rule {
        Rule::CommuteBool => commute_bool(q, &mut rng),
        Rule::DoubleNegation => double_negation(q),
        Rule::PredicateSplit => predicate_split(q, schema, &mut rng),
        Rule::PermuteColumns => permute_columns(q, &mut rng),
        Rule::LimitTruncate => limit_truncate(q),
    }
}

fn count_connectives(e: &Expr) -> usize {
    match e {
        Expr::Binary { left, op, right } => {
            let own = usize::from(matches!(
                op,
                nli_sql::ast::BinOp::And | nli_sql::ast::BinOp::Or
            ));
            own + count_connectives(left) + count_connectives(right)
        }
        Expr::Not(inner) => count_connectives(inner),
        _ => 0,
    }
}

/// Swap the operands of the `k`-th (pre-order) AND/OR node. Returns the
/// number of connective nodes seen so far when `k` was not yet reached.
fn swap_kth(e: &mut Expr, k: usize, seen: &mut usize) -> bool {
    match e {
        Expr::Binary { left, op, right } => {
            if matches!(op, nli_sql::ast::BinOp::And | nli_sql::ast::BinOp::Or) {
                if *seen == k {
                    std::mem::swap(left, right);
                    return true;
                }
                *seen += 1;
            }
            swap_kth(left, k, seen) || swap_kth(right, k, seen)
        }
        Expr::Not(inner) => swap_kth(inner, k, seen),
        _ => false,
    }
}

fn commute_bool(q: &Query, rng: &mut Prng) -> Option<Rewrite> {
    let w = q.select.where_clause.as_ref()?;
    let n = count_connectives(w);
    if n == 0 {
        return None;
    }
    let k = rng.below(n);
    let mut rewritten = q.clone();
    let mut seen = 0;
    let swapped = swap_kth(
        rewritten.select.where_clause.as_mut().expect("checked"),
        k,
        &mut seen,
    );
    debug_assert!(swapped);
    Some(Rewrite {
        rule: Rule::CommuteBool,
        rewritten,
        compare: CompareMode::Multiset,
    })
}

fn double_negation(q: &Query) -> Option<Rewrite> {
    let w = q.select.where_clause.as_ref()?;
    let mut rewritten = q.clone();
    rewritten.select.where_clause = Some(Expr::not(Expr::not(w.clone())));
    Some(Rewrite {
        rule: Rule::DoubleNegation,
        rewritten,
        compare: CompareMode::Multiset,
    })
}

fn is_plain_distinct_block(s: &Select) -> bool {
    s.distinct
        && s.group_by.is_empty()
        && s.having.is_none()
        && s.order_by.is_empty()
        && s.limit.is_none()
        && !s
            .items
            .iter()
            .any(|i| matches!(i.expr, Expr::Star) || i.expr.contains_aggregate())
}

fn predicate_split(q: &Query, schema: &Schema, rng: &mut Prng) -> Option<Rewrite> {
    if q.compound.is_some() || !is_plain_distinct_block(&q.select) {
        return None;
    }
    // pick the splitting column from the FROM tables; `x IS NULL` is total
    // (never NULL), so the two branches partition the filtered rows.
    let mut cols = Vec::new();
    let qualify = q.select.from.len() > 1;
    let tables: Vec<&str> = q.select.from.iter().map(|t| t.name.as_str()).collect();
    for tname in tables {
        let ti = schema.table_index(tname)?;
        for c in &schema.tables[ti].columns {
            cols.push(if qualify {
                nli_sql::ast::ColName::qualified(tname, &c.name)
            } else {
                nli_sql::ast::ColName::new(&c.name)
            });
        }
    }
    if cols.is_empty() {
        return None;
    }
    let col = cols[rng.below(cols.len())].clone();
    let branch = |negated: bool| -> Select {
        let mut s = q.select.clone();
        let split = Expr::IsNull {
            expr: Box::new(Expr::Column(col.clone())),
            negated,
        };
        s.where_clause = Some(match &q.select.where_clause {
            Some(p) => Expr::and(p.clone(), split),
            None => split,
        });
        s
    };
    let rewritten = Query {
        select: branch(false),
        compound: Some((
            nli_sql::ast::SetOp::Union,
            Box::new(Query::single(branch(true))),
        )),
    };
    Some(Rewrite {
        rule: Rule::PredicateSplit,
        rewritten,
        compare: CompareMode::Multiset,
    })
}

fn permute_columns(q: &Query, rng: &mut Prng) -> Option<Rewrite> {
    let s = &q.select;
    if q.compound.is_some()
        || s.items.len() < 2
        || s.items.iter().any(|i| matches!(i.expr, Expr::Star))
    {
        return None;
    }
    let n = s.items.len();
    let mut perm: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut perm);
    if perm.iter().enumerate().all(|(i, &p)| i == p) {
        perm.swap(0, 1);
    }
    let mut rewritten = q.clone();
    rewritten.select.items = perm.iter().map(|&p| s.items[p].clone()).collect();
    Some(Rewrite {
        rule: Rule::PermuteColumns,
        rewritten,
        compare: CompareMode::MultisetPermuted(perm),
    })
}

fn limit_truncate(q: &Query) -> Option<Rewrite> {
    let s = &q.select;
    if q.compound.is_some() || s.order_by.is_empty() {
        return None;
    }
    let n = s.limit?;
    let mut rewritten = q.clone();
    rewritten.select.limit = None;
    Some(Rewrite {
        rule: Rule::LimitTruncate,
        rewritten,
        compare: CompareMode::OrderedPrefix(n as usize),
    })
}
