//! The two oracle families, plus the bug injector used by negative tests.
//!
//! **Differential** (`check_differential`): three independent execution
//! paths run the same query on the same database —
//!
//! 1. the reference tree-walk interpreter ([`run_tree_walk`]),
//! 2. the planned pipeline via a shared, cached [`SqlEngine`]
//!    (`prepare_ast_on` → execute: stats-aware, so cost-based join
//!    ordering and strategy choice are under test, with the plan cache
//!    exercised at whatever worker count the batch runs at), and
//! 3. a *reparse* leg: the query is printed to canonical SQL, re-parsed,
//!    and prepared from text by a fresh engine with rule-based planning
//!    (so the parse actually happens instead of aliasing into the shared
//!    plan cache, and the default plan shape stays covered too).
//!
//! All three must agree: same error-ness, and for `Ok` results the same
//! [`nli_sql::CanonicalResult`]. The reparse leg compares *executions*,
//! not ASTs —
//! printing `12.0` as `12` legitimately reparses to an integer literal.
//!
//! **Metamorphic** (`check_metamorphic`): each eligible [`Rule`] rewrite
//! must preserve results under the rule's [`CompareMode`].

use crate::fuzz_obs;
use crate::rewrite::{apply_rule, CompareMode, Rule};
use nli_core::Database;
use nli_sql::ast::{BinOp, Expr, Query};
use nli_sql::interp::run_tree_walk;
use nli_sql::parser::parse_query;
use nli_sql::{ResultSet, SqlEngine};

/// One oracle violation: everything needed to reproduce and triage.
#[derive(Debug, Clone)]
pub struct Violation {
    pub case_index: u64,
    pub oracle: String,
    pub sql: String,
    pub detail: String,
}

/// Per-case outcome: a digest contribution plus any violations.
#[derive(Debug, Clone)]
pub struct CaseReport {
    pub index: u64,
    pub violations: Vec<Violation>,
    pub rewrites_checked: u32,
    /// Canonical text of the interpreter outcome, folded into the batch
    /// digest to detect any cross-thread nondeterminism.
    pub digest_text: String,
}

fn outcome_text(r: &Result<ResultSet, nli_core::NliError>) -> String {
    match r {
        Ok(rs) => {
            let mut s = String::from("ok:");
            if rs.ordered {
                s.push_str("ordered:");
                for row in &rs.rows {
                    for v in row {
                        s.push_str(&v.canonical());
                        s.push('|');
                    }
                    s.push(';');
                }
            } else {
                for row in rs.canonical_rows() {
                    for v in row {
                        s.push_str(&v);
                        s.push('|');
                    }
                    s.push(';');
                }
            }
            s
        }
        Err(e) => format!("err:{e}"),
    }
}

/// Run the full oracle battery for one generated case.
pub fn check_case(index: u64, q: &Query, db: &Database, engine: &SqlEngine) -> CaseReport {
    let obs = fuzz_obs();
    let _trace = nli_core::obs::global().trace_span("fuzz.case");
    let _span = obs.case_span.time();
    obs.cases.inc();

    let mut violations = Vec::new();
    let interp = {
        let _leg = nli_core::obs::global().trace_span("fuzz.leg.interp");
        run_tree_walk(q, db)
    };
    violations.extend(check_differential(index, q, db, engine, &interp));

    let mut rewrites_checked = 0;
    if let Ok(base) = &interp {
        for rule in Rule::ALL {
            // the salt ties rewrite choices to the case, replayably
            let salt = index.wrapping_mul(0x9E37_79B9).wrapping_add(rule as u64);
            if apply_rule(rule, q, &db.schema, salt).is_none() {
                continue; // rule ineligible for this query shape
            }
            rewrites_checked += 1;
            obs.rewrites.inc();
            if let Some(v) = check_metamorphic(index, q, db, engine, rule, salt, base) {
                violations.push(v);
                obs.violations.inc();
            }
        }
    }
    CaseReport {
        index,
        violations,
        rewrites_checked,
        digest_text: outcome_text(&interp),
    }
}

/// Differential oracle: interp vs planned vs reparse-from-text.
pub fn check_differential(
    index: u64,
    q: &Query,
    db: &Database,
    engine: &SqlEngine,
    interp: &Result<ResultSet, nli_core::NliError>,
) -> Vec<Violation> {
    let obs = fuzz_obs();
    let sql = q.to_string();
    // The planned leg prepares *against the database*, so the planner sees
    // table statistics and the fuzz corpus exercises cost-based join
    // ordering and strategy choice, not just the rule-based defaults.
    let planned = {
        let _leg = nli_core::obs::global().trace_span("fuzz.leg.plan");
        engine.prepare_ast_on(q, db).and_then(|p| p.execute(db))
    };
    let reparsed = {
        let _leg = nli_core::obs::global().trace_span("fuzz.leg.reparse");
        parse_query(&sql)
            .and_then(|q2| SqlEngine::new().prepare_ast(&q2, &db.schema))
            .and_then(|p| p.execute(db))
    };

    let mut out = Vec::new();
    let mut mismatch = |leg: &str, other: &Result<ResultSet, nli_core::NliError>| {
        out.push(Violation {
            case_index: index,
            oracle: format!("differential/{leg}"),
            sql: sql.clone(),
            detail: format!(
                "interp: {} ;; {leg}: {}",
                outcome_text(interp),
                outcome_text(other)
            ),
        });
        obs.violations.inc();
    };

    match (interp, &planned) {
        (Ok(a), Ok(b)) => {
            if !b.matches_canonical(&a.to_canonical()) {
                mismatch("plan", &planned);
            }
        }
        (Err(_), Err(_)) => {}
        _ => mismatch("plan", &planned),
    }
    match (interp, &reparsed) {
        (Ok(a), Ok(b)) => {
            if !b.matches_canonical(&a.to_canonical()) {
                mismatch("reparse", &reparsed);
            }
        }
        (Err(_), Err(_)) => {}
        _ => mismatch("reparse", &reparsed),
    }
    out
}

/// Metamorphic oracle for one rule. `base` is the original query's result
/// (the caller already has it). Returns `None` when the rule is
/// ineligible for `q` or the rewrite agrees.
pub fn check_metamorphic(
    index: u64,
    q: &Query,
    db: &Database,
    engine: &SqlEngine,
    rule: Rule,
    salt: u64,
    base: &ResultSet,
) -> Option<Violation> {
    let rw = apply_rule(rule, q, &db.schema, salt)?;
    let _leg = nli_core::obs::global().trace_span("fuzz.leg.metamorphic");
    let rewritten_result = engine
        .prepare_ast(&rw.rewritten, &db.schema)
        .and_then(|p| p.execute(db));
    let agree = match &rewritten_result {
        Err(_) => false,
        Ok(rb) => results_agree(base, rb, &rw.compare),
    };
    if agree {
        return None;
    }
    Some(Violation {
        case_index: index,
        oracle: format!("metamorphic/{}", rule.name()),
        sql: q.to_string(),
        detail: format!(
            "rewritten: {} ;; original: {} ;; rewritten-result: {}",
            rw.rewritten,
            outcome_text(&Ok(base.clone())),
            outcome_text(&rewritten_result),
        ),
    })
}

/// Compare two results under a [`CompareMode`].
pub fn results_agree(a: &ResultSet, b: &ResultSet, mode: &CompareMode) -> bool {
    match mode {
        CompareMode::Multiset => a.canonical_rows() == b.canonical_rows(),
        CompareMode::MultisetPermuted(perm) => {
            // original items[i] == rewritten items[j] where perm[j] == i
            let mut inverse = vec![0usize; perm.len()];
            for (j, &i) in perm.iter().enumerate() {
                inverse[i] = j;
            }
            let remapped = ResultSet {
                columns: a.columns.clone(),
                rows: b
                    .rows
                    .iter()
                    .map(|row| inverse.iter().map(|&j| row[j].clone()).collect())
                    .collect(),
                ordered: false,
            };
            a.canonical_rows() == remapped.canonical_rows()
        }
        CompareMode::OrderedPrefix(n) => {
            let prefix: Vec<Vec<String>> = b
                .rows
                .iter()
                .take(*n)
                .map(|row| row.iter().map(|v| v.canonical()).collect())
                .collect();
            let own: Vec<Vec<String>> = a
                .rows
                .iter()
                .map(|row| row.iter().map(|v| v.canonical()).collect())
                .collect();
            own == prefix
        }
    }
}

/// Inject an engine-level miscompare: flip the first comparison operator
/// in WHERE (`<`↔`<=`, `>`↔`>=`, `=`↔`!=`). Returns `None` when the query
/// has no comparison to mutate — negative tests use this to prove the
/// differential oracle actually fires.
pub fn mutate_comparison(q: &Query) -> Option<Query> {
    fn flip(op: BinOp) -> Option<BinOp> {
        match op {
            BinOp::Lt => Some(BinOp::Le),
            BinOp::Le => Some(BinOp::Lt),
            BinOp::Gt => Some(BinOp::Ge),
            BinOp::Ge => Some(BinOp::Gt),
            BinOp::Eq => Some(BinOp::Neq),
            BinOp::Neq => Some(BinOp::Eq),
            _ => None,
        }
    }
    fn mutate(e: &mut Expr) -> bool {
        match e {
            Expr::Binary { left, op, right } => {
                if let Some(f) = flip(*op) {
                    *op = f;
                    return true;
                }
                mutate(left) || mutate(right)
            }
            Expr::Not(inner) => mutate(inner),
            _ => false,
        }
    }
    let mut out = q.clone();
    let w = out.select.where_clause.as_mut()?;
    if mutate(w) {
        Some(out)
    } else {
        None
    }
}
