//! # nli-fuzz
//!
//! Metamorphic + differential conformance fuzzing for the workspace's
//! execution engines. The survey's problem definition reduces every
//! evaluation metric to trusting an execution substrate `E(e, D) → r`;
//! this crate turns the substrate's *redundancy* — three independent SQL
//! execution paths, each runnable at any worker count — into its own
//! oracle, the differential-testing shape the execution-match literature
//! leans on.
//!
//! Three layers (DESIGN.md §3.4):
//!
//! 1. **Generators** ([`gen`]) — grammar-directed random SQL queries and
//!    VQL specs over [`nli_data::schema_gen`] databases. Every case is
//!    derived from a `(seed, index)` pair via [`nli_core::Prng::for_case`],
//!    so a failure report is a complete reproducer.
//! 2. **Oracles** ([`oracle`]) — a *differential* oracle (tree-walk
//!    interpreter vs planned pipeline vs reparse-from-printed-SQL must
//!    agree on [`nli_sql::CanonicalResult`]s) and a *metamorphic* oracle
//!    ([`rewrite`]: semantics-preserving query rewrites must preserve the
//!    result multiset).
//! 3. **Minimizer** ([`minimize()`]) — greedy shrinking of a failing query
//!    by subtree deletion and literal simplification, down to a minimal
//!    reproducer printed as replayable SQL plus its seed pair.
//!
//! The driver binary (`cargo run -p nli-fuzz --bin fuzz`) runs a bounded
//! deterministic batch; `scripts/ci.sh` gates merges on a fixed-seed smoke
//! run at `NLI_THREADS=1` and `4` being violation-free and byte-identical.

pub mod gen;
pub mod minimize;
pub mod oracle;
pub mod rewrite;

pub use gen::{gen_case, gen_vis_case, FuzzCase, GenConfig};
pub use minimize::{minimize, node_count, ShrinkResult};
pub use oracle::{check_case, mutate_comparison, CaseReport, Violation};
pub use rewrite::{apply_rule, CompareMode, Rewrite, Rule};

use nli_core::obs::{global, Counter, Histogram};
use std::sync::OnceLock;

/// Cached handles for the fuzzing counters/spans (`fuzz.*` namespace).
pub(crate) struct FuzzObs {
    pub cases: Counter,
    pub violations: Counter,
    pub rewrites: Counter,
    pub shrink_steps: Counter,
    pub case_span: Histogram,
}

pub(crate) fn fuzz_obs() -> &'static FuzzObs {
    static OBS: OnceLock<FuzzObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = global();
        FuzzObs {
            cases: r.counter("fuzz.cases"),
            violations: r.counter("fuzz.oracle_violations"),
            rewrites: r.counter("fuzz.rewrites_checked"),
            shrink_steps: r.counter("fuzz.shrink_steps"),
            case_span: r.span_histogram("fuzz.case"),
        }
    })
}

/// FNV-1a over a byte stream; the batch digest the driver compares across
/// worker counts and repeat runs.
#[derive(Debug, Clone)]
pub struct Digest(u64);

impl Digest {
    pub fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}
