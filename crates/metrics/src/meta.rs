//! Metric meta-analysis: the experiment behind Table 3.
//!
//! The survey tabulates each metric's advantages and disadvantages
//! qualitatively; here we measure them. A labeled pair corpus is built from
//! a generated benchmark: *positive* pairs are provably equivalence-
//! preserving rewrites of gold queries (conjunct reordering, join-side
//! swapping, lexical respelling), *negative* pairs are capability-noise
//! corruptions verified inequivalent by a large adjudication test suite.
//! Every metric is then scored for accuracy, false-positive rate (passes
//! an inequivalent pair), false-negative rate (fails an equivalent pair),
//! and cost.

use crate::component::exact_set_match;
use crate::execution::execution_match;
use crate::fuzzy::fuzzy_match;
use crate::manual::JudgePanel;
use crate::string_match::{exact_match, raw_exact_match};
use crate::test_suite::{test_suite_match, TestSuite};
use nli_core::{par, Database, Prng};
use nli_lm::{llm::corrupt_query, CapabilityProfile, ErrorKind};
use nli_sql::{parse_query, BinOp, Expr, Query};
use std::time::Instant;

/// One labeled evaluation pair.
#[derive(Debug, Clone)]
pub struct LabeledPair {
    pub db: usize,
    pub gold: String,
    pub pred: String,
    /// Ground-truth semantic equivalence.
    pub equivalent: bool,
}

/// Per-metric outcome.
#[derive(Debug, Clone)]
pub struct MetricReport {
    pub name: String,
    pub accuracy: f64,
    pub false_positive_rate: f64,
    pub false_negative_rate: f64,
    pub avg_micros: f64,
}

impl MetricReport {
    pub fn row(&self) -> String {
        format!(
            "{:<22} acc={:>5.1}%  FPR={:>5.1}%  FNR={:>5.1}%  {:>9.0}us",
            self.name,
            100.0 * self.accuracy,
            100.0 * self.false_positive_rate,
            100.0 * self.false_negative_rate,
            self.avg_micros
        )
    }
}

/// Equivalence-preserving rewrites (all provable).
fn equivalent_rewrites(gold: &Query) -> Vec<String> {
    let mut out = Vec::new();
    // R1: textual respelling (lower-case keywords outside string literals,
    // != -> <>)
    let text = gold.to_string();
    let mut lower = String::with_capacity(text.len());
    let mut in_string = false;
    for c in text.chars() {
        if c == '\'' {
            in_string = !in_string;
            lower.push(c);
        } else if in_string {
            lower.push(c);
        } else {
            lower.extend(c.to_lowercase());
        }
    }
    let lower = lower.replace("!=", "<>");
    if lower != text {
        out.push(lower);
    }
    // R2: swap the top-level AND conjuncts
    if let Some(Expr::Binary {
        left,
        op: BinOp::And,
        right,
    }) = &gold.select.where_clause
    {
        let mut q = gold.clone();
        q.select.where_clause = Some(Expr::Binary {
            left: right.clone(),
            op: BinOp::And,
            right: left.clone(),
        });
        out.push(q.to_string());
    }
    // R3: swap join-condition sides
    if !gold.select.joins.is_empty() {
        let mut q = gold.clone();
        for j in q.select.joins.iter_mut() {
            std::mem::swap(&mut j.left, &mut j.right);
        }
        out.push(q.to_string());
    }
    out
}

/// Build a labeled corpus over `(databases, gold_queries)` drawn from a
/// generated benchmark. Negative labels are adjudicated with a large test
/// suite so corruption coincidences don't poison the labels.
pub fn build_pairs(
    databases: &[Database],
    golds: &[(usize, Query)],
    seed: u64,
) -> Vec<LabeledPair> {
    let mut pairs = Vec::new();
    let mut rng = Prng::new(seed);
    let error_profiles: Vec<(ErrorKind, CapabilityProfile)> = ErrorKind::ALL
        .iter()
        .map(|k| (*k, CapabilityProfile::perfect().with_scaled(*k, 1.0)))
        .map(|(k, mut p)| {
            // with_scaled multiplies; set directly instead
            match k {
                ErrorKind::SchemaLink => p.schema_link = 1.0,
                ErrorKind::Join => p.join = 1.0,
                ErrorKind::Value => p.value = 1.0,
                ErrorKind::Clause => p.clause = 1.0,
                ErrorKind::Aggregate => p.aggregate = 1.0,
                ErrorKind::Syntax => p.syntax = 1.0,
            }
            (k, p)
        })
        .collect();

    // Fork every corruption stream sequentially (one per (gold, error
    // kind), in the loop order the sequential harness used), then build
    // each gold's pair group in parallel and flatten in gold order — the
    // corpus is bit-identical at any thread count.
    let corruption_rngs: Vec<Vec<Prng>> = golds
        .iter()
        .enumerate()
        .map(|(i, _)| {
            error_profiles
                .iter()
                .map(|(k, _)| rng.fork((i * 16 + *k as usize) as u64))
                .collect()
        })
        .collect();
    let groups = par::par_map(golds, |i, (db_idx, gold)| {
        let db = &databases[*db_idx];
        let gold_text = gold.to_string();
        let mut group = Vec::new();
        // identity positive
        group.push(LabeledPair {
            db: *db_idx,
            gold: gold_text.clone(),
            pred: gold_text.clone(),
            equivalent: true,
        });
        // rewrite positives
        for r in equivalent_rewrites(gold) {
            group.push(LabeledPair {
                db: *db_idx,
                gold: gold_text.clone(),
                pred: r,
                equivalent: true,
            });
        }
        // corruption negatives, adjudicated
        let adjudicator = TestSuite::build(db, 8, seed ^ 0xAD0D1C ^ i as u64);
        for ((_, profile), c_rng) in error_profiles.iter().zip(&corruption_rngs[i]) {
            let pred = corrupt_query(gold, &db.schema, profile, &mut c_rng.clone());
            if pred == gold_text {
                continue; // corruption was a no-op (e.g. nothing to drop)
            }
            // adjudicate: keep as negative only if the suite distinguishes
            // them (otherwise the corruption happened to be equivalent)
            if !test_suite_match(&pred, &gold_text, &adjudicator) {
                group.push(LabeledPair {
                    db: *db_idx,
                    gold: gold_text.clone(),
                    pred,
                    equivalent: false,
                });
            }
        }
        group
    });
    pairs.extend(groups.into_iter().flatten());
    pairs
}

/// Score one metric over the corpus. Pairs are judged in parallel — every
/// metric here is a pure function of `(pair, database)` — and the
/// confusion counts are reduced in pair order.
fn score(
    name: &str,
    pairs: &[LabeledPair],
    databases: &[Database],
    f: impl Fn(&LabeledPair, &Database) -> bool + Sync,
) -> MetricReport {
    let mut tp = 0usize;
    let mut tn = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    let start = Instant::now();
    let verdicts = par::par_map(pairs, |_, p| f(p, &databases[p.db]));
    for (p, verdict) in pairs.iter().zip(verdicts) {
        match (p.equivalent, verdict) {
            (true, true) => tp += 1,
            (true, false) => fn_ += 1,
            (false, true) => fp += 1,
            (false, false) => tn += 1,
        }
    }
    let n = pairs.len().max(1);
    let pos = (tp + fn_).max(1);
    let neg = (fp + tn).max(1);
    MetricReport {
        name: name.to_string(),
        accuracy: (tp + tn) as f64 / n as f64,
        false_positive_rate: fp as f64 / neg as f64,
        false_negative_rate: fn_ as f64 / pos as f64,
        avg_micros: start.elapsed().as_micros() as f64 / n as f64,
    }
}

/// Run the full meta-analysis: every Table 3 metric over the same corpus.
pub fn metric_meta_analysis(
    databases: &[Database],
    golds: &[(usize, Query)],
    seed: u64,
) -> (Vec<MetricReport>, usize) {
    let pairs = build_pairs(databases, golds, seed);
    let suites: Vec<TestSuite> =
        par::par_map(databases, |_, db| TestSuite::build(db, 4, seed ^ 0x7E57));
    let panel = JudgePanel::new(3, 0.92, seed ^ 0x0DD);
    let reports = vec![
        score("raw exact match", &pairs, databases, |p, _| {
            raw_exact_match(&p.pred, &p.gold)
        }),
        score("exact match (norm.)", &pairs, databases, |p, _| {
            exact_match(&p.pred, &p.gold)
        }),
        score("fuzzy match (BLEU@.9)", &pairs, databases, |p, _| {
            fuzzy_match(&p.pred, &p.gold, 0.9)
        }),
        score("exact set match", &pairs, databases, |p, _| {
            exact_set_match(&p.pred, &p.gold)
        }),
        score("execution match", &pairs, databases, |p, db| {
            execution_match(&p.pred, &p.gold, db)
        }),
        score("test suite match", &pairs, databases, |p, _| {
            test_suite_match(&p.pred, &p.gold, &suites[p.db])
        }),
        score("manual (3 judges)", &pairs, databases, |p, db| {
            panel.judge(&p.pred, &p.gold, db)
        }),
    ];
    (reports, pairs.len())
}

/// Convenience: gold queries of a benchmark's dev split, parsed.
pub fn golds_of(bench: &nli_data::SqlBenchmark) -> Vec<(usize, Query)> {
    bench.dev.iter().map(|e| (e.db, e.gold.clone())).collect()
}

/// Re-parse helper used by harnesses that store gold as text.
pub fn parse_gold(text: &str) -> Option<Query> {
    parse_query(text).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_data::spider_like::{self, SpiderConfig};

    fn corpus() -> (Vec<Database>, Vec<(usize, Query)>) {
        let b = spider_like::build(&SpiderConfig {
            n_databases: 13,
            n_dev_databases: 3,
            n_train: 5,
            n_dev: 25,
            ..Default::default()
        });
        let golds = golds_of(&b);
        (b.databases, golds)
    }

    #[test]
    fn corpus_has_both_labels() {
        let (dbs, golds) = corpus();
        let pairs = build_pairs(&dbs, &golds, 42);
        let pos = pairs.iter().filter(|p| p.equivalent).count();
        let neg = pairs.len() - pos;
        assert!(pos >= 25, "positives: {pos}");
        assert!(neg >= 25, "negatives: {neg}");
    }

    #[test]
    fn table3_shape_holds() {
        let (dbs, golds) = corpus();
        let (reports, n) = metric_meta_analysis(&dbs, &golds, 7);
        assert!(n > 50);
        let get = |name: &str| {
            reports
                .iter()
                .find(|r| r.name.starts_with(name))
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        let exact = get("exact match");
        let fuzzy = get("fuzzy");
        let set = get("exact set");
        let exec = get("execution");
        let suite = get("test suite");
        let manual = get("manual");

        // exact match never passes inequivalent pairs but misses rewrites
        assert_eq!(exact.false_positive_rate, 0.0, "{exact:?}");
        assert!(exact.false_negative_rate > 0.0, "{exact:?}");
        // fuzzy match is lenient: strictly more false positives than exact
        assert!(
            fuzzy.false_positive_rate > exact.false_positive_rate,
            "{fuzzy:?}"
        );
        // set match recovers most rewrites (lower FNR than exact)
        assert!(
            set.false_negative_rate < exact.false_negative_rate,
            "{set:?} vs {exact:?}"
        );
        // execution match admits coincidence false positives; the test
        // suite reduces them
        assert!(
            suite.false_positive_rate <= exec.false_positive_rate,
            "suite {suite:?} vs exec {exec:?}"
        );
        // manual evaluation is the most accurate overall
        let best_auto = reports
            .iter()
            .filter(|r| !r.name.starts_with("manual"))
            .map(|r| r.accuracy)
            .fold(0.0f64, f64::max);
        assert!(
            manual.accuracy >= best_auto - 0.05,
            "{manual:?} vs {best_auto}"
        );
    }

    #[test]
    fn rewrites_are_truly_equivalent() {
        let (dbs, golds) = corpus();
        for (db_idx, gold) in golds.iter().take(15) {
            let suite = TestSuite::build(&dbs[*db_idx], 6, 99);
            for r in equivalent_rewrites(gold) {
                assert!(
                    test_suite_match(&r, &gold.to_string(), &suite),
                    "rewrite not equivalent:\n  {gold}\n  {r}"
                );
            }
        }
    }
}
