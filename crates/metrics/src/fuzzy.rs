//! Fuzzy matching: BLEU-4 similarity with a decision threshold.
//!
//! Table 3 characterizes fuzzy matching as "suitable for complex queries"
//! but of "insufficient precision": a near-miss that changes one literal
//! still scores high. The meta-analysis measures exactly that leniency.

use nli_nlu::ngram::bleu_text;
use nli_sql::normalize::normalize;

/// BLEU-4 similarity between normalized SQL strings, in `[0, 1]`.
pub fn bleu_score(pred: &str, gold: &str) -> f64 {
    bleu_text(&normalize(pred), &normalize(gold))
}

/// Fuzzy match at a threshold (0.9 is the conventional operating point).
pub fn fuzzy_match(pred: &str, gold: &str, threshold: f64) -> bool {
    bleu_score(pred, gold) >= threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_queries_score_one_ish() {
        assert!(bleu_score("SELECT a FROM t", "select a from t") > 0.9);
    }

    #[test]
    fn near_miss_passes_fuzzy_but_not_exact() {
        let gold = "SELECT name FROM singer WHERE age > 30 ORDER BY age DESC LIMIT 3";
        let near = "SELECT name FROM singer WHERE age > 31 ORDER BY age DESC LIMIT 3";
        assert!(
            fuzzy_match(near, gold, 0.75),
            "bleu = {}",
            bleu_score(near, gold)
        );
        assert!(!crate::string_match::exact_match(near, gold));
    }

    #[test]
    fn unrelated_queries_fail() {
        assert!(!fuzzy_match(
            "SELECT COUNT(*) FROM concert",
            "SELECT name FROM singer WHERE age > 30",
            0.5
        ));
    }

    #[test]
    fn score_is_symmetric_enough_for_ranking() {
        let a = bleu_score("SELECT a FROM t WHERE x = 1", "SELECT a FROM t");
        let b = bleu_score("SELECT a FROM t", "SELECT a FROM t WHERE x = 1");
        assert!((a - b).abs() < 0.35); // brevity penalty makes it asymmetric
    }
}
