//! Naive execution matching.
//!
//! A prediction is correct when executing it yields the same result as the
//! gold query — robust to aliasing, but (as Table 3 warns) "prone to false
//! positives": two different queries can coincide on one database state.
//! The test-suite variant (see [`crate::test_suite`]) exists to close that
//! hole.

use nli_core::Database;
use nli_sql::SqlEngine;

/// Whether `pred` and `gold` produce the same result on `db`. Predictions
/// that fail to parse or execute never match; a gold query that fails to
/// execute (should not happen for generated benchmarks) also yields false.
pub fn execution_match(pred: &str, gold: &str, db: &Database) -> bool {
    execution_match_with(&SqlEngine::new(), pred, gold, db)
}

/// [`execution_match`] against a caller-supplied engine, so harnesses that
/// evaluate a corpus can share one plan cache: each `(query, schema)` pair
/// is parsed and planned at most once across the whole loop.
pub fn execution_match_with(engine: &SqlEngine, pred: &str, gold: &str, db: &Database) -> bool {
    let Ok(gold_rs) = engine.prepare(gold, &db.schema).and_then(|p| p.execute(db)) else {
        return false;
    };
    match engine.prepare(pred, &db.schema).and_then(|p| p.execute(db)) {
        Ok(pred_rs) => pred_rs.same_result(&gold_rs),
        Err(_) => false,
    }
}

/// Whether `pred` merely *executes* (validity rate reporting).
pub fn executes(pred: &str, db: &Database) -> bool {
    SqlEngine::new().run_sql(pred, db).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Schema, Table};

    fn db() -> Database {
        let schema = Schema::new(
            "d",
            vec![Table::new(
                "t",
                vec![
                    Column::new("a", DataType::Int),
                    Column::new("b", DataType::Text),
                ],
            )],
        );
        let mut d = Database::empty(schema);
        d.insert_all(
            "t",
            vec![
                vec![1.into(), "x".into()],
                vec![2.into(), "y".into()],
                vec![3.into(), "y".into()],
            ],
        )
        .unwrap();
        d
    }

    #[test]
    fn syntactically_different_but_equivalent_queries_match() {
        assert!(execution_match(
            "SELECT a FROM t WHERE a >= 2",
            "SELECT a FROM t WHERE a > 1",
            &db()
        ));
    }

    #[test]
    fn different_results_fail() {
        assert!(!execution_match(
            "SELECT a FROM t WHERE a > 2",
            "SELECT a FROM t WHERE a > 1",
            &db()
        ));
    }

    #[test]
    fn false_positive_on_coincidental_state() {
        // On THIS database, "b = 'y'" and "a >= 2" select the same rows —
        // the documented execution-match false positive.
        assert!(execution_match(
            "SELECT a FROM t WHERE b = 'y'",
            "SELECT a FROM t WHERE a >= 2",
            &db()
        ));
    }

    #[test]
    fn broken_predictions_fail() {
        assert!(!execution_match("SELEC oops", "SELECT a FROM t", &db()));
        assert!(!execution_match(
            "SELECT z FROM t",
            "SELECT a FROM t",
            &db()
        ));
        assert!(!executes("SELECT z FROM t", &db()));
        assert!(executes("SELECT a FROM t", &db()));
    }

    #[test]
    fn shared_engine_parses_each_query_once() {
        let engine = SqlEngine::new();
        let d = db();
        for _ in 0..16 {
            assert!(execution_match_with(
                &engine,
                "SELECT a FROM t WHERE a >= 2",
                "SELECT a FROM t WHERE a > 1",
                &d
            ));
        }
        assert_eq!(
            engine.parse_count(),
            2,
            "16 comparisons over one schema must parse gold and pred once each"
        );
    }

    #[test]
    fn order_sensitivity_only_with_order_by() {
        assert!(execution_match(
            "SELECT a FROM t WHERE a > 0",
            "SELECT a FROM t",
            &db()
        ));
        assert!(!execution_match(
            "SELECT a FROM t ORDER BY a ASC",
            "SELECT a FROM t ORDER BY a DESC",
            &db()
        ));
    }
}
