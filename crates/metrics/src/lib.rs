//! # nli-metrics
//!
//! The survey's evaluation-metric inventory (§5.1–5.2, Table 3), complete
//! and measurable:
//!
//! | Type | Metric | Module |
//! |---|---|---|
//! | string-based | exact string match (normalized) | [`string_match`] |
//! | string-based | fuzzy match (BLEU-4) | [`fuzzy`] |
//! | string-based | component / exact set match | [`component`] |
//! | execution-based | naive execution match | [`execution`] |
//! | execution-based | test-suite match (distilled DB variants) | [`test_suite`] |
//! | manual | simulated judge panel | [`manual`] |
//! | vis | overall / component / execution accuracy | [`vis`] |
//!
//! [`report`] evaluates whole parsers against `nli-data` benchmarks, and
//! [`meta`] runs the controlled meta-analysis behind the Table 3
//! comparison (which metrics admit false positives/negatives, at what
//! cost).
//!
//! ## Example
//!
//! ```
//! use nli_metrics::{bleu_score, exact_match, exact_set_match};
//!
//! let gold = "SELECT name FROM city ORDER BY pop DESC";
//! // Exact match forgives spelling (case, whitespace) but nothing else.
//! assert!(exact_match("select name from city order by pop desc", gold));
//! assert!(!exact_match("SELECT name FROM city", gold));
//! // Fuzzy match grades the near-miss instead of zeroing it.
//! let partial = bleu_score("SELECT name FROM city", gold);
//! assert!(partial > 0.0 && partial < 1.0);
//! assert!(exact_set_match(gold, gold));
//! ```

pub mod component;
pub mod execution;
pub mod fuzzy;
pub mod manual;
pub mod meta;
pub mod report;
pub mod string_match;
pub mod test_suite;
pub mod vis;

pub use component::{component_f1, exact_set_match};
pub use execution::{execution_match, execution_match_with};
pub use fuzzy::{bleu_score, fuzzy_match};
pub use manual::JudgePanel;
pub use report::{evaluate_sql, evaluate_vis, SqlScores, VisScores};
pub use string_match::exact_match;
pub use test_suite::{test_suite_match, test_suite_match_with, TestSuite};
