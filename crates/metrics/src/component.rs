//! Component matching: Spider-style exact set match and partial F1.

use nli_sql::{decompose, parse_query};

/// Exact set match: clause components compared as sets (select items,
/// WHERE conjuncts, group keys order-free; ORDER BY order-sensitive).
/// Unparseable predictions never match.
pub fn exact_set_match(pred: &str, gold: &str) -> bool {
    match (parse_query(pred), parse_query(gold)) {
        (Ok(p), Ok(g)) => decompose(&p).matches(&decompose(&g)),
        _ => false,
    }
}

/// Partial component credit: fraction of clause components that match
/// (`matched / total` over the union of non-empty components). 0.0 for
/// unparseable predictions.
pub fn component_f1(pred: &str, gold: &str) -> f64 {
    match (parse_query(pred), parse_query(gold)) {
        (Ok(p), Ok(g)) => {
            let (m, t) = decompose(&p).overlap(&decompose(&g));
            if t == 0 {
                1.0
            } else {
                m as f64 / t as f64
            }
        }
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_match_forgives_clause_order() {
        assert!(exact_set_match(
            "SELECT b, a FROM t WHERE y = 2 AND x = 1",
            "SELECT a, b FROM t WHERE x = 1 AND y = 2"
        ));
    }

    #[test]
    fn set_match_catches_missing_conditions() {
        assert!(!exact_set_match(
            "SELECT a FROM t WHERE x = 1",
            "SELECT a FROM t WHERE x = 1 AND y = 2"
        ));
    }

    #[test]
    fn partial_credit_is_graded() {
        let gold = "SELECT a FROM t WHERE x = 1 ORDER BY a ASC LIMIT 3";
        let close = "SELECT a FROM t WHERE x = 1 ORDER BY a ASC LIMIT 5";
        let far = "SELECT z FROM u";
        let c = component_f1(close, gold);
        let f = component_f1(far, gold);
        assert!(c > f, "{c} vs {f}");
        assert!(c >= 0.7);
        assert!(f < 0.2);
    }

    #[test]
    fn unparseable_prediction_scores_zero() {
        assert!(!exact_set_match("SELEC whoops", "SELECT a FROM t"));
        assert_eq!(component_f1("SELEC whoops", "SELECT a FROM t"), 0.0);
    }
}
