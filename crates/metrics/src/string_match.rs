//! Exact string matching (normalized canonical spelling).

use nli_sql::normalize;

/// Exact string match after canonical normalization — the strictest
/// automatic metric. Case, whitespace, `<>`/`!=`, and comma-FROM spelling
/// differences are forgiven; everything else must match byte-for-byte.
pub fn exact_match(pred: &str, gold: &str) -> bool {
    normalize::normalized_eq(pred, gold)
}

/// Raw (unnormalized) exact match, for ablation: how much normalization
/// alone is worth.
pub fn raw_exact_match(pred: &str, gold: &str) -> bool {
    pred.trim() == gold.trim()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_forgives_spelling_noise() {
        assert!(exact_match(
            "select name from t where x<>1",
            "SELECT name FROM t WHERE x != 1"
        ));
        assert!(!raw_exact_match(
            "select name from t where x<>1",
            "SELECT name FROM t WHERE x != 1"
        ));
    }

    #[test]
    fn semantic_differences_fail() {
        assert!(!exact_match("SELECT a FROM t", "SELECT b FROM t"));
        assert!(!exact_match("SELECT a FROM t LIMIT 1", "SELECT a FROM t"));
    }

    #[test]
    fn select_order_is_not_forgiven_by_exact_match() {
        // (that's what exact *set* match is for)
        assert!(!exact_match("SELECT a, b FROM t", "SELECT b, a FROM t"));
    }
}
