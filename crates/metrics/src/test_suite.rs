//! Test-suite matching (Zhong et al. 2020, distilled test suites).
//!
//! One database state cannot distinguish all inequivalent queries; a *test
//! suite* of fuzzed database variants can. A prediction passes only when it
//! matches the gold query's results on **every** variant, which removes
//! most of naive execution match's false positives at a linear cost in
//! executor calls.

use nli_core::{par, Database, Prng, Value};
use nli_sql::SqlEngine;

/// A suite of database variants derived from one base database.
pub struct TestSuite {
    pub variants: Vec<Database>,
}

impl TestSuite {
    /// Build `n` fuzzed variants (plus the base as variant 0).
    ///
    /// Fuzzing perturbs non-key numeric cells, rewrites some text cells,
    /// duplicates and drops rows — while keeping primary/foreign-key
    /// columns intact so join structure survives.
    pub fn build(base: &Database, n: usize, seed: u64) -> TestSuite {
        // Fork every variant's stream sequentially, then fuzz in parallel:
        // each variant's randomness is fixed before fan-out, so the suite
        // is identical at any thread count.
        let forks = Prng::new(seed).fork_n(n);
        let mut variants = vec![base.clone()];
        variants.extend(par::par_map(&forks, |_, v_rng| {
            let mut db = base.clone();
            fuzz(&mut db, &mut v_rng.clone());
            db
        }));
        TestSuite { variants }
    }

    pub fn len(&self) -> usize {
        self.variants.len()
    }

    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }
}

fn fuzz(db: &mut Database, rng: &mut Prng) {
    let schema = db.schema.clone();
    for (ti, table) in schema.tables.iter().enumerate() {
        let key_cols: Vec<bool> = (0..table.columns.len())
            .map(|ci| {
                table.columns[ci].primary_key
                    || schema.foreign_keys.iter().any(|fk| {
                        (fk.from.table == ti && fk.from.column == ci)
                            || (fk.to.table == ti && fk.to.column == ci)
                    })
            })
            .collect();
        // perturb cells
        for row in db.data[ti].rows.iter_mut() {
            for (ci, cell) in row.iter_mut().enumerate() {
                if key_cols[ci] || rng.chance(0.5) {
                    continue;
                }
                *cell = match &*cell {
                    Value::Int(i) => Value::Int(i + rng.range(-3, 7)),
                    Value::Float(f) => {
                        Value::Float(((f * (0.5 + rng.unit())) * 100.0).round() / 100.0)
                    }
                    Value::Bool(b) => Value::Bool(*b != rng.chance(0.5)),
                    Value::Date(d) => Value::Date(nli_core::Date::new(
                        d.year + rng.range(-1, 1) as i32,
                        rng.range(1, 12) as u8,
                        d.day,
                    )),
                    other => other.clone(),
                };
            }
        }
        // drop a few rows (children reference by value; the executor treats
        // dangling references as non-matching, which is itself a useful
        // discriminating state)
        let rows = &mut db.data[ti].rows;
        if rows.len() > 4 {
            let drop = rng.below(rows.len() / 4 + 1);
            for _ in 0..drop {
                let i = rng.below(rows.len());
                rows.remove(i);
            }
        }
        // duplicate a row to shake DISTINCT-sensitive queries
        if !rows.is_empty() && rng.chance(0.6) {
            let i = rng.below(rows.len());
            let dup = rows[i].clone();
            rows.push(dup);
        }
    }
    // The edits above bypass `Database::insert`, so the clone still carries
    // the base database's cached columnar views — drop them or the
    // vectorized executor would answer from pre-fuzz data.
    db.invalidate_derived();
}

/// Test-suite match: the prediction must match gold on **every** variant.
pub fn test_suite_match(pred: &str, gold: &str, suite: &TestSuite) -> bool {
    test_suite_match_with(&SqlEngine::new(), pred, gold, suite)
}

/// [`test_suite_match`] against a caller-supplied engine. All variants
/// share the base schema (fuzzing perturbs data, never structure), so each
/// query is parsed and planned exactly once for the whole suite — the
/// prepared statements then fan out across workers, one execution pair per
/// variant, sharing the engine's plan cache. The verdict is the
/// conjunction over variants, so the parallel fan-out returns exactly what
/// the sequential early-exit loop would.
pub fn test_suite_match_with(
    engine: &SqlEngine,
    pred: &str,
    gold: &str,
    suite: &TestSuite,
) -> bool {
    let registry = nli_core::obs::global();
    let _timing = registry.span("eval.test_suite_match");
    registry.counter("eval.test_suite.calls").inc();
    registry
        .counter("eval.test_suite.variants")
        .add(suite.len() as u64);
    let Some(base) = suite.variants.first() else {
        return true;
    };
    let gold_prepared = engine.prepare(gold, &base.schema);
    let Ok(gold_prepared) = gold_prepared else {
        // gold doesn't compile: every variant is skipped, vacuous pass
        return true;
    };
    let pred_prepared = engine.prepare(pred, &base.schema);
    par::par_map(&suite.variants, |_, db| {
        let gold_rs = match gold_prepared.execute(db) {
            Ok(rs) => rs,
            // a variant broke the gold query (e.g. pie-hole edge); skip it
            Err(_) => return true,
        };
        let gold_canonical = gold_rs.to_canonical();
        match &pred_prepared {
            Ok(p) => p
                .execute(db)
                .map(|pred_rs| pred_rs.matches_canonical(&gold_canonical))
                .unwrap_or(false),
            Err(_) => false,
        }
    })
    .into_iter()
    .all(|matched| matched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Schema, Table};

    fn db() -> Database {
        let schema = Schema::new(
            "d",
            vec![Table::new(
                "t",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("a", DataType::Int),
                    Column::new("b", DataType::Text),
                ],
            )],
        );
        let mut d = Database::empty(schema);
        d.insert_all(
            "t",
            vec![
                vec![1.into(), 1.into(), "x".into()],
                vec![2.into(), 2.into(), "y".into()],
                vec![3.into(), 3.into(), "y".into()],
                vec![4.into(), 4.into(), "z".into()],
                vec![5.into(), 5.into(), "x".into()],
                vec![6.into(), 6.into(), "y".into()],
            ],
        )
        .unwrap();
        d
    }

    #[test]
    fn equivalent_queries_pass_the_whole_suite() {
        let suite = TestSuite::build(&db(), 8, 42);
        assert_eq!(suite.len(), 9);
        assert!(test_suite_match(
            "SELECT a FROM t WHERE a >= 2",
            "SELECT a FROM t WHERE a > 1",
            &suite
        ));
    }

    #[test]
    fn suite_kills_coincidental_false_positives() {
        let base = db();
        // coincidentally equal on the base state...
        let pred = "SELECT a FROM t WHERE b = 'y'";
        let gold = "SELECT a FROM t WHERE a IN (2, 3, 6)";
        assert!(crate::execution::execution_match(pred, gold, &base));
        // ...but fuzzing perturbs `a` values, separating the two intents.
        let suite = TestSuite::build(&base, 8, 7);
        assert!(
            !test_suite_match(pred, gold, &suite),
            "the suite failed to distinguish the queries"
        );
    }

    #[test]
    fn identical_queries_always_pass() {
        let suite = TestSuite::build(&db(), 5, 3);
        assert!(test_suite_match(
            "SELECT a FROM t",
            "SELECT a FROM t",
            &suite
        ));
    }

    #[test]
    fn fuzzing_preserves_key_columns() {
        let base = db();
        let suite = TestSuite::build(&base, 4, 9);
        for v in &suite.variants {
            for row in v.rows(0) {
                if let Value::Int(id) = row[0] {
                    assert!((1..=6).contains(&id), "pk was fuzzed: {id}");
                }
            }
        }
    }

    #[test]
    fn broken_predictions_fail() {
        let suite = TestSuite::build(&db(), 3, 1);
        assert!(!test_suite_match("SELEC nope", "SELECT a FROM t", &suite));
    }

    /// The acceptance property for the prepared pipeline in evaluation:
    /// matching over N variants costs one parse+plan per query, not N.
    #[test]
    fn suite_match_parses_each_query_once_across_variants() {
        let engine = SqlEngine::new();
        let suite = TestSuite::build(&db(), 32, 11);
        assert_eq!(suite.len(), 33);
        assert!(test_suite_match_with(
            &engine,
            "SELECT a FROM t WHERE a >= 2",
            "SELECT a FROM t WHERE a > 1",
            &suite
        ));
        assert_eq!(
            engine.parse_count(),
            2,
            "33 variants must share one prepared plan per query"
        );
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 2, "only the two first-time preparations miss");
    }
}
