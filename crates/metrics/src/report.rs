//! Benchmark-level evaluation: run a parser over a dev split and score it
//! with every automatic metric at once.
//!
//! Per-example scoring fans out over [`nli_core::par`]: examples are
//! independent, the engine (and its plan cache) is shared across workers,
//! and the per-example rows are reduced in dev-split order, so scores are
//! bit-identical at any `NLI_THREADS` setting (only the wall-clock
//! `avg_micros` field varies).

use crate::component::{component_f1, exact_set_match};
use crate::execution::execution_match_with;
use crate::string_match::exact_match;
use crate::vis::{vis_component_accuracy, vis_exact_match, vis_execution_match};
use nli_core::{obs, par, SemanticParser};
use nli_data::{SqlBenchmark, VisBenchmark};
use nli_sql::{Query, SqlEngine};
use nli_vql::VisQuery;
use std::time::Instant;

/// Aggregate scores of one Text-to-SQL parser on one benchmark dev split.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlScores {
    pub parser: String,
    pub benchmark: String,
    pub n: usize,
    /// Exact (normalized) string match rate — the strict EM.
    pub exact: f64,
    /// Spider-style exact set match rate — the reported "EM".
    pub exact_set: f64,
    /// Execution accuracy — the reported "EX".
    pub execution: f64,
    /// Mean partial component credit.
    pub component: f64,
    /// Fraction of predictions that parse and execute.
    pub valid: f64,
    /// Mean wall-clock per question, microseconds.
    pub avg_micros: f64,
}

impl SqlScores {
    /// Fixed-width report row.
    pub fn row(&self) -> String {
        format!(
            "{:<26} {:>5}  EM={:>5.1}%  EX={:>5.1}%  comp={:>5.1}%  valid={:>5.1}%  {:>7.0}us",
            self.parser,
            self.n,
            100.0 * self.exact_set,
            100.0 * self.execution,
            100.0 * self.component,
            100.0 * self.valid,
            self.avg_micros
        )
    }
}

/// Per-example metric row, reduced in dev-split order.
struct SqlRow {
    valid: usize,
    exact: usize,
    set: usize,
    exec: usize,
    comp: f64,
}

/// Evaluate a parser on a benchmark's dev split. Examples are scored in
/// parallel (see the module docs for the determinism contract).
pub fn evaluate_sql(
    parser: &(dyn SemanticParser<Expr = Query> + Sync),
    bench: &SqlBenchmark,
) -> SqlScores {
    // One engine for the whole split, shared across workers: gold queries
    // repeat across examples and share schemas, so the plan cache amortizes
    // parsing once for everyone.
    let engine = SqlEngine::new();
    let registry = obs::global();
    let _timing = registry.span("eval.sql");
    registry.counter("eval.sql.runs").inc();
    registry
        .counter("eval.sql.examples")
        .add(bench.dev.len() as u64);
    let start = Instant::now();
    let rows = par::par_map(&bench.dev, |_, ex| {
        // Per-example trace trees (never a per-run root): the tree shape
        // stays identical whether examples run inline or on workers.
        let _trace = obs::global().trace_span("eval.sql.example");
        let db = bench.db_of(ex);
        let gold = ex.gold.to_string();
        match parser.parse(&ex.question, db) {
            Ok(pred) => {
                let pred = pred.to_string();
                SqlRow {
                    valid: usize::from(engine.run_sql(&pred, db).is_ok()),
                    exact: usize::from(exact_match(&pred, &gold)),
                    set: usize::from(exact_set_match(&pred, &gold)),
                    exec: usize::from(execution_match_with(&engine, &pred, &gold, db)),
                    comp: component_f1(&pred, &gold),
                }
            }
            Err(_) => SqlRow {
                valid: 0,
                exact: 0,
                set: 0,
                exec: 0,
                comp: 0.0,
            },
        }
    });
    let n = bench.dev.len().max(1);
    SqlScores {
        parser: parser.name().to_string(),
        benchmark: bench.name.clone(),
        n: bench.dev.len(),
        exact: rows.iter().map(|r| r.exact).sum::<usize>() as f64 / n as f64,
        exact_set: rows.iter().map(|r| r.set).sum::<usize>() as f64 / n as f64,
        execution: rows.iter().map(|r| r.exec).sum::<usize>() as f64 / n as f64,
        component: rows.iter().map(|r| r.comp).sum::<f64>() / n as f64,
        valid: rows.iter().map(|r| r.valid).sum::<usize>() as f64 / n as f64,
        avg_micros: start.elapsed().as_micros() as f64 / n as f64,
    }
}

/// Aggregate scores of one Text-to-Vis parser on one benchmark dev split.
#[derive(Debug, Clone, PartialEq)]
pub struct VisScores {
    pub parser: String,
    pub benchmark: String,
    pub n: usize,
    /// Overall accuracy (exact VQL match) — the reported "Acc.".
    pub overall: f64,
    /// Mean per-component accuracy.
    pub component: f64,
    /// Chart execution match rate.
    pub execution: f64,
    pub avg_micros: f64,
}

impl VisScores {
    pub fn row(&self) -> String {
        format!(
            "{:<26} {:>5}  Acc={:>5.1}%  comp={:>5.1}%  exec={:>5.1}%  {:>7.0}us",
            self.parser,
            self.n,
            100.0 * self.overall,
            100.0 * self.component,
            100.0 * self.execution,
            self.avg_micros
        )
    }
}

/// Evaluate a vis parser on a benchmark's dev split. Examples are scored
/// in parallel (see the module docs for the determinism contract).
pub fn evaluate_vis(
    parser: &(dyn SemanticParser<Expr = VisQuery> + Sync),
    bench: &VisBenchmark,
) -> VisScores {
    let registry = obs::global();
    let _timing = registry.span("eval.vis");
    registry.counter("eval.vis.runs").inc();
    registry
        .counter("eval.vis.examples")
        .add(bench.dev.len() as u64);
    let start = Instant::now();
    let rows = par::par_map(&bench.dev, |_, ex| {
        let _trace = obs::global().trace_span("eval.vis.example");
        let db = bench.db_of(ex);
        match parser.parse(&ex.question, db) {
            Ok(pred) => (
                usize::from(vis_exact_match(&pred, &ex.gold)),
                vis_component_accuracy(&pred, &ex.gold),
                usize::from(vis_execution_match(&pred, &ex.gold, db)),
            ),
            Err(_) => (0, 0.0, 0),
        }
    });
    let n = bench.dev.len().max(1);
    VisScores {
        parser: parser.name().to_string(),
        benchmark: bench.name.clone(),
        n: bench.dev.len(),
        overall: rows.iter().map(|r| r.0).sum::<usize>() as f64 / n as f64,
        component: rows.iter().map(|r| r.1).sum::<f64>() / n as f64,
        execution: rows.iter().map(|r| r.2).sum::<usize>() as f64 / n as f64,
        avg_micros: start.elapsed().as_micros() as f64 / n as f64,
    }
}

/// A "gold echo" parser used to sanity-check the harness: it always returns
/// the gold program, so every metric must report 100%.
pub struct OracleSql<'a> {
    bench: &'a SqlBenchmark,
}

impl<'a> OracleSql<'a> {
    pub fn new(bench: &'a SqlBenchmark) -> Self {
        OracleSql { bench }
    }
}

impl SemanticParser for OracleSql<'_> {
    type Expr = Query;
    fn parse(
        &self,
        question: &nli_core::NlQuestion,
        _db: &nli_core::Database,
    ) -> nli_core::Result<Query> {
        self.bench
            .dev
            .iter()
            .chain(&self.bench.train)
            .find(|e| e.question.text == question.text)
            .map(|e| e.gold.clone())
            .ok_or_else(|| nli_core::NliError::Parse("unknown question".into()))
    }
    fn name(&self) -> &str {
        "oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_data::spider_like::{self, SpiderConfig};

    fn bench() -> SqlBenchmark {
        spider_like::build(&SpiderConfig {
            n_databases: 13,
            n_dev_databases: 3,
            n_train: 10,
            n_dev: 30,
            ..Default::default()
        })
    }

    #[test]
    fn oracle_scores_perfectly() {
        let b = bench();
        let oracle = OracleSql::new(&b);
        let s = evaluate_sql(&oracle, &b);
        assert_eq!(s.n, 30);
        assert!((s.exact - 1.0).abs() < 1e-9, "{s:?}");
        assert!((s.exact_set - 1.0).abs() < 1e-9);
        assert!((s.execution - 1.0).abs() < 1e-9);
        assert!((s.valid - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rows_render() {
        let b = bench();
        let s = evaluate_sql(&OracleSql::new(&b), &b);
        let row = s.row();
        assert!(row.contains("oracle"));
        assert!(row.contains("EM=100.0%"));
    }
}
