//! Simulated manual evaluation.
//!
//! Human judges are the survey's gold standard ("precise, flexible") and
//! its most expensive metric ("high cost, low efficiency"). The simulated
//! panel makes both properties measurable: each judge sees the ground-truth
//! semantic verdict (computed from a strong equivalence oracle) and reports
//! it with per-judge noise; the panel majority-votes, and every judgment is
//! metered as cost.

use crate::component::exact_set_match;
use crate::execution::execution_match;
use crate::test_suite::{test_suite_match, TestSuite};
use nli_core::{Database, Prng};
use std::sync::atomic::{AtomicU64, Ordering};

/// A panel of simulated annotators.
pub struct JudgePanel {
    pub n_judges: usize,
    /// Probability each judge reports the true verdict (0.5 = coin flip).
    pub reliability: f64,
    seed: u64,
    judgments: AtomicU64,
}

impl JudgePanel {
    pub fn new(n_judges: usize, reliability: f64, seed: u64) -> JudgePanel {
        JudgePanel {
            n_judges: n_judges.max(1),
            reliability: reliability.clamp(0.5, 1.0),
            seed,
            judgments: AtomicU64::new(0),
        }
    }

    /// Total individual judgments rendered (the cost meter).
    pub fn judgments(&self) -> u64 {
        self.judgments.load(Ordering::Relaxed)
    }

    /// The panel's semantic-equivalence oracle: string equivalence, or
    /// execution agreement across a small test suite (what a careful human
    /// checks when results differ superficially).
    fn truth(pred: &str, gold: &str, db: &Database) -> bool {
        if exact_set_match(pred, gold) {
            return true;
        }
        if !execution_match(pred, gold, db) {
            return false;
        }
        let suite = TestSuite::build(db, 4, 0xC0FFEE);
        test_suite_match(pred, gold, &suite)
    }

    /// Majority verdict of the panel on one (pred, gold) pair.
    pub fn judge(&self, pred: &str, gold: &str, db: &Database) -> bool {
        let truth = Self::truth(pred, gold, db);
        let mut h: u64 = self.seed;
        for b in pred.bytes().chain(gold.bytes()) {
            h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
        }
        let mut rng = Prng::new(h);
        let mut yes = 0;
        for _ in 0..self.n_judges {
            self.judgments.fetch_add(1, Ordering::Relaxed);
            let report = if rng.chance(self.reliability) {
                truth
            } else {
                !truth
            };
            yes += usize::from(report);
        }
        yes * 2 > self.n_judges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Schema, Table};

    fn db() -> Database {
        let schema = Schema::new(
            "d",
            vec![Table::new(
                "t",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("a", DataType::Int),
                ],
            )],
        );
        let mut d = Database::empty(schema);
        d.insert_all(
            "t",
            vec![
                vec![1.into(), 10.into()],
                vec![2.into(), 20.into()],
                vec![3.into(), 30.into()],
                vec![4.into(), 40.into()],
                vec![5.into(), 50.into()],
            ],
        )
        .unwrap();
        d
    }

    #[test]
    fn reliable_panel_reports_truth() {
        let panel = JudgePanel::new(5, 1.0, 1);
        assert!(panel.judge(
            "SELECT a FROM t WHERE a > 15",
            "SELECT a FROM t WHERE a >= 20",
            &db()
        ));
        assert!(!panel.judge(
            "SELECT a FROM t WHERE a > 25",
            "SELECT a FROM t WHERE a >= 20",
            &db()
        ));
        assert_eq!(panel.judgments(), 10);
    }

    #[test]
    fn verdicts_are_deterministic() {
        let panel = JudgePanel::new(3, 0.8, 9);
        let a = panel.judge("SELECT a FROM t", "SELECT a FROM t", &db());
        let b = panel.judge("SELECT a FROM t", "SELECT a FROM t", &db());
        assert_eq!(a, b);
    }

    #[test]
    fn unreliable_judges_make_more_mistakes_than_reliable_ones() {
        let reliable = JudgePanel::new(1, 1.0, 42);
        let noisy = JudgePanel::new(1, 0.6, 42);
        let pairs: Vec<(String, String)> = (0..40)
            .map(|i| {
                (
                    format!("SELECT a FROM t WHERE a > {i}"),
                    format!("SELECT a FROM t WHERE a > {i}"),
                )
            })
            .collect();
        let d = db();
        let rel_correct = pairs
            .iter()
            .filter(|(p, g)| reliable.judge(p, g, &d))
            .count();
        let noisy_correct = pairs.iter().filter(|(p, g)| noisy.judge(p, g, &d)).count();
        assert_eq!(rel_correct, 40);
        assert!(noisy_correct < 40);
    }

    #[test]
    fn panel_majority_beats_single_noisy_judge() {
        let single = JudgePanel::new(1, 0.7, 3);
        let panel = JudgePanel::new(7, 0.7, 3);
        let pairs: Vec<(String, String)> = (0..60)
            .map(|i| {
                (
                    format!("SELECT a FROM t WHERE a > {i}"),
                    format!("SELECT a FROM t WHERE a > {i}"),
                )
            })
            .collect();
        let d = db();
        let s = pairs.iter().filter(|(p, g)| single.judge(p, g, &d)).count();
        let p = pairs.iter().filter(|(p, g)| panel.judge(p, g, &d)).count();
        assert!(p >= s, "panel {p} vs single {s}");
    }
}
