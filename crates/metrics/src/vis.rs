//! Text-to-Vis metrics: overall accuracy, component accuracy, and chart
//! execution match (§5.2).

use nli_core::{Database, ExecutionEngine};
use nli_vql::{parse_vis, VisEngine, VisQuery};

/// Overall accuracy (the field's "exact string match"): canonical VQL
/// strings must be identical.
pub fn vis_exact_match(pred: &VisQuery, gold: &VisQuery) -> bool {
    pred.to_string() == gold.to_string()
}

/// String-level overall accuracy for textual predictions (unparseable
/// predictions never match).
pub fn vis_exact_match_text(pred: &str, gold: &str) -> bool {
    match (parse_vis(pred), parse_vis(gold)) {
        (Ok(p), Ok(g)) => vis_exact_match(&p, &g),
        _ => false,
    }
}

/// Component breakdown of a VQL program, for per-component accuracy
/// (RGVisNet/Seq2Vis-style reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct VisComponents {
    pub chart: String,
    pub x: Option<String>,
    pub y: Option<String>,
    pub table: Option<String>,
    pub filter: Option<String>,
    pub bin: Option<String>,
}

/// Decompose a VQL program into comparable components.
pub fn vis_components(v: &VisQuery) -> VisComponents {
    let items = &v.query.select.items;
    VisComponents {
        chart: v.chart.name().to_string(),
        x: items.first().map(|i| i.expr.to_string()),
        y: items.get(1).map(|i| i.expr.to_string()),
        table: v.query.select.from.first().map(|t| t.name.clone()),
        filter: v.query.select.where_clause.as_ref().map(|w| w.to_string()),
        bin: v
            .bin
            .as_ref()
            .map(|b| format!("{} BY {}", b.column, b.unit.name())),
    }
}

/// Fraction of components that agree (over the union of present ones).
pub fn vis_component_accuracy(pred: &VisQuery, gold: &VisQuery) -> f64 {
    let p = vis_components(pred);
    let g = vis_components(gold);
    let mut matched = 0usize;
    let mut total = 1usize; // chart always counts
    matched += usize::from(p.chart == g.chart);
    let mut cmp = |a: &Option<String>, b: &Option<String>| {
        if a.is_some() || b.is_some() {
            total += 1;
            matched += usize::from(a == b);
        }
    };
    cmp(&p.x, &g.x);
    cmp(&p.y, &g.y);
    cmp(&p.table, &g.table);
    cmp(&p.filter, &g.filter);
    cmp(&p.bin, &g.bin);
    matched as f64 / total as f64
}

/// Execution match for charts: both programs render, same chart type, same
/// data series.
pub fn vis_execution_match(pred: &VisQuery, gold: &VisQuery, db: &Database) -> bool {
    let engine = VisEngine::new();
    let Ok(g) = engine.execute(gold, db) else {
        return false;
    };
    match engine.execute(pred, db) {
        Ok(p) => {
            if p.chart_type != g.chart_type || p.points.len() != g.points.len() {
                return false;
            }
            let canon = |c: &nli_vql::Chart| {
                let mut v: Vec<(String, String)> = c
                    .points
                    .iter()
                    .map(|pt| (pt.label.clone(), format!("{:.6}", pt.value)))
                    .collect();
                v.sort();
                v
            };
            canon(&p) == canon(&g)
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Schema, Table};

    fn db() -> Database {
        let schema = Schema::new(
            "d",
            vec![Table::new(
                "sales",
                vec![
                    Column::new("category", DataType::Text),
                    Column::new("amount", DataType::Float),
                ],
            )],
        );
        let mut d = Database::empty(schema);
        d.insert_all(
            "sales",
            vec![
                vec!["Tools".into(), 10.0.into()],
                vec!["Toys".into(), 5.0.into()],
            ],
        )
        .unwrap();
        d
    }

    fn v(s: &str) -> VisQuery {
        parse_vis(s).unwrap()
    }

    #[test]
    fn exact_match_requires_identical_programs() {
        let a = v("VISUALIZE BAR SELECT category, SUM(amount) FROM sales GROUP BY category");
        let b = v("VISUALIZE PIE SELECT category, SUM(amount) FROM sales GROUP BY category");
        assert!(vis_exact_match(&a, &a.clone()));
        assert!(!vis_exact_match(&a, &b));
    }

    #[test]
    fn component_accuracy_gives_partial_credit() {
        let gold = v("VISUALIZE BAR SELECT category, SUM(amount) FROM sales GROUP BY category");
        let wrong_chart =
            v("VISUALIZE PIE SELECT category, SUM(amount) FROM sales GROUP BY category");
        let acc = vis_component_accuracy(&wrong_chart, &gold);
        assert!(acc > 0.7 && acc < 1.0, "{acc}");
        let all_wrong = v("VISUALIZE LINE SELECT a, b FROM other");
        assert!(vis_component_accuracy(&all_wrong, &gold) < 0.3);
    }

    #[test]
    fn execution_match_is_chart_sensitive() {
        let gold = v("VISUALIZE BAR SELECT category, SUM(amount) FROM sales GROUP BY category");
        let same = v("VISUALIZE BAR SELECT category, SUM(amount) FROM sales GROUP BY category");
        let pie = v("VISUALIZE PIE SELECT category, SUM(amount) FROM sales GROUP BY category");
        assert!(vis_execution_match(&same, &gold, &db()));
        assert!(!vis_execution_match(&pie, &gold, &db()));
    }

    #[test]
    fn text_level_match_handles_unparseable() {
        assert!(!vis_exact_match_text(
            "VISUALIZE NOPE SELECT",
            "VISUALIZE BAR SELECT a, b FROM t"
        ));
    }

    #[test]
    fn bin_is_a_component() {
        let a = v("VISUALIZE LINE SELECT d, x FROM t BIN d BY month");
        let b = v("VISUALIZE LINE SELECT d, x FROM t BIN d BY year");
        assert!(vis_component_accuracy(&a, &b) < 1.0);
        assert!(vis_component_accuracy(&a, &a.clone()) >= 1.0);
    }
}
