//! The visualization execution engine: VQL → executed chart.
//!
//! `E(e, D) → r` for the vis task: run the embedded data query, apply the
//! BIN transform, infer the encoding types, and materialize a [`Chart`] —
//! the data series plus its [`ChartSpec`], with an ASCII renderer so
//! examples can display the result in a terminal.

use crate::ast::{BinUnit, ChartType, VisQuery};
use crate::spec::{ChartSpec, FieldType};
use nli_core::{Database, ExecutionEngine, NliError, Result, Value};
use nli_sql::{ResultSet, SqlEngine};

/// One chart datum: a labelled y value; `x_numeric` is set for scatter
/// charts where x is quantitative.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPoint {
    pub label: String,
    pub value: f64,
    pub x_numeric: Option<f64>,
}

/// An executed chart: the result `r` of the Text-to-Vis pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Chart {
    pub chart_type: ChartType,
    pub x_label: String,
    pub y_label: String,
    pub points: Vec<DataPoint>,
    pub spec: ChartSpec,
}

impl Chart {
    /// ASCII rendering for terminals (bars scale to the max value).
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        if let Some(t) = &self.spec.title {
            out.push_str(t);
            out.push('\n');
        }
        out.push_str(&format!(
            "{} chart: {} vs {}\n",
            self.chart_type, self.x_label, self.y_label
        ));
        if self.points.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        match self.chart_type {
            ChartType::Bar | ChartType::Line => {
                let max = self
                    .points
                    .iter()
                    .map(|p| p.value.abs())
                    .fold(0.0f64, f64::max)
                    .max(1e-9);
                let label_w = self.points.iter().map(|p| p.label.len()).max().unwrap_or(1);
                for p in &self.points {
                    let n = ((p.value.abs() / max) * 40.0).round() as usize;
                    let glyph = if self.chart_type == ChartType::Bar {
                        '█'
                    } else {
                        '▪'
                    };
                    out.push_str(&format!(
                        "{:label_w$} | {} {}\n",
                        p.label,
                        glyph.to_string().repeat(n.max(usize::from(p.value != 0.0))),
                        trim_num(p.value),
                    ));
                }
            }
            ChartType::Pie => {
                let total: f64 = self.points.iter().map(|p| p.value).sum();
                let label_w = self.points.iter().map(|p| p.label.len()).max().unwrap_or(1);
                for p in &self.points {
                    let pct = if total > 0.0 {
                        100.0 * p.value / total
                    } else {
                        0.0
                    };
                    let n = (pct / 2.5).round() as usize;
                    out.push_str(&format!(
                        "{:label_w$} | {} {:.1}%\n",
                        p.label,
                        "▓".repeat(n.max(1)),
                        pct
                    ));
                }
            }
            ChartType::Scatter => {
                for p in &self.points {
                    out.push_str(&format!(
                        "({}, {})\n",
                        p.x_numeric.map(trim_num).unwrap_or_else(|| p.label.clone()),
                        trim_num(p.value)
                    ));
                }
            }
        }
        out
    }
}

fn trim_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

/// The visualization execution engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct VisEngine;

impl VisEngine {
    pub fn new() -> Self {
        VisEngine
    }

    /// Parse and execute a VQL string.
    pub fn run_vql(&self, vql: &str, db: &Database) -> Result<Chart> {
        let v = crate::ast::parse_vis(vql)?;
        self.execute(&v, db)
    }
}

impl ExecutionEngine for VisEngine {
    type Expr = VisQuery;
    type Output = Chart;

    fn execute(&self, expr: &VisQuery, db: &Database) -> Result<Chart> {
        render(expr, db)
    }
}

fn render(v: &VisQuery, db: &Database) -> Result<Chart> {
    let rs = SqlEngine::new().execute(&v.query, db)?;
    if rs.columns.len() < 2 {
        return Err(NliError::Execution(
            "a chart needs at least two result columns (x, y)".into(),
        ));
    }
    let x_label = rs.columns[0].clone();
    let y_label = rs.columns[1].clone();

    let (points, x_type) = match &v.bin {
        Some(bin) => (bin_points(&rs, bin.unit)?, FieldType::Temporal),
        None => plain_points(&rs, v.chart)?,
    };

    validate(v.chart, &points, x_type)?;

    let y_type = FieldType::Quantitative;
    let mut spec = ChartSpec::new(v.chart, &x_label, x_type, &y_label, y_type);
    if let Some(bin) = &v.bin {
        spec = spec.with_time_unit(bin.unit);
    }
    Ok(Chart {
        chart_type: v.chart,
        x_label,
        y_label,
        points,
        spec,
    })
}

fn y_of(v: &Value) -> Result<f64> {
    match v {
        Value::Null => Ok(0.0),
        other => other
            .as_f64()
            .ok_or_else(|| NliError::Execution(format!("y value is not numeric: {other}"))),
    }
}

fn plain_points(rs: &ResultSet, chart: ChartType) -> Result<(Vec<DataPoint>, FieldType)> {
    let mut points = Vec::with_capacity(rs.rows.len());
    let mut x_type = FieldType::Nominal;
    let mut saw_temporal = false;
    let mut saw_numeric = false;
    let mut saw_text = false;
    for row in &rs.rows {
        let x = &row[0];
        match x {
            Value::Date(_) => saw_temporal = true,
            Value::Int(_) | Value::Float(_) => saw_numeric = true,
            _ => saw_text = true,
        }
        points.push(DataPoint {
            label: x.canonical(),
            value: y_of(&row[1])?,
            x_numeric: x.as_f64(),
        });
    }
    if saw_temporal && !saw_text && !saw_numeric {
        x_type = FieldType::Temporal;
    } else if saw_numeric && !saw_text && !saw_temporal {
        x_type = FieldType::Quantitative;
    }
    // Line charts over unordered results sort by x for a coherent polyline.
    if chart == ChartType::Line && !rs.ordered {
        points.sort_by(|a, b| match (a.x_numeric, b.x_numeric) {
            (Some(x), Some(y)) => x.total_cmp(&y),
            _ => a.label.cmp(&b.label),
        });
    }
    Ok((points, x_type))
}

/// Apply a BIN transform: bucket rows by the binned x value and sum y.
fn bin_points(rs: &ResultSet, unit: BinUnit) -> Result<Vec<DataPoint>> {
    // (sort key, label) per bucket
    let mut buckets: Vec<(i64, String, f64)> = Vec::new();
    let mut index = std::collections::HashMap::new();
    for row in &rs.rows {
        let d = match &row[0] {
            Value::Date(d) => *d,
            Value::Null => continue,
            other => {
                return Err(NliError::Execution(format!(
                    "BIN requires a date x column, got {other}"
                )))
            }
        };
        let (key, label) = bin_of(d, unit);
        let y = y_of(&row[1])?;
        match index.get(&key) {
            Some(&i) => {
                let slot: &mut (i64, String, f64) = &mut buckets[i];
                slot.2 += y;
            }
            None => {
                index.insert(key, buckets.len());
                buckets.push((key, label, y));
            }
        }
    }
    buckets.sort_by_key(|(k, _, _)| *k);
    Ok(buckets
        .into_iter()
        .map(|(_, label, value)| DataPoint {
            label,
            value,
            x_numeric: None,
        })
        .collect())
}

fn bin_of(d: nli_core::Date, unit: BinUnit) -> (i64, String) {
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    const DAYS: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];
    match unit {
        BinUnit::Year => (d.year as i64, d.year.to_string()),
        BinUnit::Quarter => {
            let q = d.quarter();
            (d.year as i64 * 4 + q as i64, format!("{} Q{q}", d.year))
        }
        BinUnit::Month => (
            d.year as i64 * 12 + d.month as i64,
            format!("{} {}", MONTHS[(d.month - 1) as usize], d.year),
        ),
        BinUnit::Weekday => {
            let w = d.weekday();
            (w as i64, DAYS[w as usize].to_string())
        }
    }
}

/// Chart-type validity constraints, per the Text-to-Vis literature's
/// recommendation rules (pie needs non-negative parts; scatter needs a
/// quantitative x).
fn validate(chart: ChartType, points: &[DataPoint], x_type: FieldType) -> Result<()> {
    match chart {
        ChartType::Pie if points.iter().any(|p| p.value < 0.0) => {
            return Err(NliError::Execution(
                "pie charts cannot show negative values".into(),
            ));
        }
        ChartType::Scatter if x_type != FieldType::Quantitative && !points.is_empty() => {
            return Err(NliError::Execution(
                "scatter charts need a quantitative x axis".into(),
            ));
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Date, Schema, Table};

    fn db() -> Database {
        let schema = Schema::new(
            "shop",
            vec![Table::new(
                "sales",
                vec![
                    Column::new("category", DataType::Text),
                    Column::new("amount", DataType::Float),
                    Column::new("price", DataType::Float),
                    Column::new("sold_on", DataType::Date),
                ],
            )],
        );
        let mut db = Database::empty(schema);
        db.insert_all(
            "sales",
            vec![
                vec![
                    "Tools".into(),
                    100.0.into(),
                    9.5.into(),
                    Date::new(2024, 1, 5).into(),
                ],
                vec![
                    "Tools".into(),
                    150.0.into(),
                    19.0.into(),
                    Date::new(2024, 2, 8).into(),
                ],
                vec![
                    "Toys".into(),
                    50.0.into(),
                    4.25.into(),
                    Date::new(2024, 4, 9).into(),
                ],
                vec![
                    "Toys".into(),
                    80.0.into(),
                    6.5.into(),
                    Date::new(2024, 4, 20).into(),
                ],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn bar_chart_end_to_end() {
        let chart = VisEngine::new()
            .run_vql(
                "VISUALIZE BAR SELECT category, SUM(amount) FROM sales GROUP BY category",
                &db(),
            )
            .unwrap();
        assert_eq!(chart.chart_type, ChartType::Bar);
        assert_eq!(chart.points.len(), 2);
        let tools = chart.points.iter().find(|p| p.label == "Tools").unwrap();
        assert_eq!(tools.value, 250.0);
        let ascii = chart.render_ascii();
        assert!(ascii.contains("Tools"));
        assert!(ascii.contains('█'));
    }

    #[test]
    fn monthly_binning_sums_buckets_in_order() {
        let chart = VisEngine::new()
            .run_vql(
                "VISUALIZE LINE SELECT sold_on, amount FROM sales BIN sold_on BY month",
                &db(),
            )
            .unwrap();
        let labels: Vec<&str> = chart.points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["Jan 2024", "Feb 2024", "Apr 2024"]);
        assert_eq!(chart.points[2].value, 130.0);
        assert_eq!(chart.spec.x.time_unit.as_deref(), Some("month"));
    }

    #[test]
    fn quarter_binning() {
        let chart = VisEngine::new()
            .run_vql(
                "VISUALIZE BAR SELECT sold_on, amount FROM sales BIN sold_on BY quarter",
                &db(),
            )
            .unwrap();
        let labels: Vec<&str> = chart.points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["2024 Q1", "2024 Q2"]);
        assert_eq!(chart.points[0].value, 250.0);
    }

    #[test]
    fn scatter_requires_numeric_x() {
        let engine = VisEngine::new();
        assert!(engine
            .run_vql("VISUALIZE SCATTER SELECT price, amount FROM sales", &db())
            .is_ok());
        assert!(engine
            .run_vql(
                "VISUALIZE SCATTER SELECT category, amount FROM sales",
                &db()
            )
            .is_err());
    }

    #[test]
    fn pie_rejects_negatives() {
        let mut d = db();
        d.insert(
            "sales",
            vec![
                "Refunds".into(),
                (-30.0).into(),
                1.0.into(),
                Date::new(2024, 5, 1).into(),
            ],
        )
        .unwrap();
        let engine = VisEngine::new();
        assert!(engine
            .run_vql(
                "VISUALIZE PIE SELECT category, SUM(amount) FROM sales GROUP BY category",
                &d
            )
            .is_err());
    }

    #[test]
    fn one_column_result_is_an_error() {
        assert!(VisEngine::new()
            .run_vql("VISUALIZE BAR SELECT category FROM sales", &db())
            .is_err());
    }

    #[test]
    fn line_chart_sorts_unordered_x() {
        let chart = VisEngine::new()
            .run_vql("VISUALIZE LINE SELECT price, amount FROM sales", &db())
            .unwrap();
        let xs: Vec<f64> = chart.points.iter().filter_map(|p| p.x_numeric).collect();
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(xs, sorted);
    }

    #[test]
    fn pie_ascii_shows_percentages() {
        let chart = VisEngine::new()
            .run_vql(
                "VISUALIZE PIE SELECT category, SUM(amount) FROM sales GROUP BY category",
                &db(),
            )
            .unwrap();
        let ascii = chart.render_ascii();
        assert!(ascii.contains('%'));
    }

    #[test]
    fn spec_matches_inferred_types() {
        let chart = VisEngine::new()
            .run_vql(
                "VISUALIZE BAR SELECT category, SUM(amount) FROM sales GROUP BY category",
                &db(),
            )
            .unwrap();
        assert_eq!(chart.spec.x.field_type, FieldType::Nominal);
        assert_eq!(chart.spec.mark, "bar");
        let doc = chart.spec.to_vega_lite();
        assert_eq!(doc["encoding"]["x"]["type"], "nominal");
    }
}
