//! Vega-Lite-style chart specifications.
//!
//! The survey's problem definition names visualization specifications (e.g.
//! Vega-Lite) as the vis-side functional representation. [`ChartSpec`] is a
//! faithful structural subset: mark + x/y encodings with field names and
//! measurement types, serializable to the Vega-Lite JSON shape.

use crate::ast::{BinUnit, ChartType};
use serde::{Deserialize, Serialize};

/// Measurement type of an encoded field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum FieldType {
    Nominal,
    Quantitative,
    Temporal,
    Ordinal,
}

/// One encoding channel (x or y).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Encoding {
    pub field: String,
    #[serde(rename = "type")]
    pub field_type: FieldType,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub time_unit: Option<String>,
}

/// A chart specification: the `e` that a Text-to-Vis parser can hand to any
/// Vega-Lite-compatible renderer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChartSpec {
    pub mark: String,
    pub x: Encoding,
    pub y: Encoding,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub title: Option<String>,
}

impl ChartSpec {
    /// Build the spec for a chart over fields `(x, y)`.
    pub fn new(
        chart: ChartType,
        x_field: &str,
        x_type: FieldType,
        y_field: &str,
        y_type: FieldType,
    ) -> Self {
        ChartSpec {
            mark: chart.mark().to_string(),
            x: Encoding {
                field: x_field.to_string(),
                field_type: x_type,
                time_unit: None,
            },
            y: Encoding {
                field: y_field.to_string(),
                field_type: y_type,
                time_unit: None,
            },
            title: None,
        }
    }

    pub fn with_title(mut self, title: &str) -> Self {
        self.title = Some(title.to_string());
        self
    }

    pub fn with_time_unit(mut self, unit: BinUnit) -> Self {
        self.x.time_unit = Some(unit.name().to_lowercase());
        self
    }

    /// The Vega-Lite JSON document for this spec.
    pub fn to_vega_lite(&self) -> serde_json::Value {
        use serde_json::Value;
        let mut x = Value::obj([
            ("field", Value::from(&self.x.field)),
            ("type", Value::from(type_name(self.x.field_type))),
        ]);
        if let Some(u) = &self.x.time_unit {
            x["timeUnit"] = Value::from(u);
        }
        let y = Value::obj([
            ("field", Value::from(&self.y.field)),
            ("type", Value::from(type_name(self.y.field_type))),
        ]);
        let mut doc = Value::obj([
            (
                "$schema",
                Value::from("https://vega.github.io/schema/vega-lite/v5.json"),
            ),
            ("mark", Value::from(&self.mark)),
            ("encoding", Value::obj([("x", x), ("y", y)])),
        ]);
        if let Some(t) = &self.title {
            doc["title"] = Value::from(t);
        }
        doc
    }

    /// Rebuild a spec from a Vega-Lite document produced by
    /// [`ChartSpec::to_vega_lite`]; `None` if the shape doesn't match.
    pub fn from_vega_lite(doc: &serde_json::Value) -> Option<Self> {
        let encoding = doc.get("encoding")?;
        let parse_encoding = |channel: &serde_json::Value| {
            Some(Encoding {
                field: channel.get("field")?.as_str()?.to_string(),
                field_type: parse_type(channel.get("type")?.as_str()?)?,
                time_unit: channel
                    .get("timeUnit")
                    .and_then(|u| u.as_str())
                    .map(String::from),
            })
        };
        Some(ChartSpec {
            mark: doc.get("mark")?.as_str()?.to_string(),
            x: parse_encoding(encoding.get("x")?)?,
            y: parse_encoding(encoding.get("y")?)?,
            title: doc.get("title").and_then(|t| t.as_str()).map(String::from),
        })
    }
}

fn type_name(t: FieldType) -> &'static str {
    match t {
        FieldType::Nominal => "nominal",
        FieldType::Quantitative => "quantitative",
        FieldType::Temporal => "temporal",
        FieldType::Ordinal => "ordinal",
    }
}

fn parse_type(name: &str) -> Option<FieldType> {
    match name {
        "nominal" => Some(FieldType::Nominal),
        "quantitative" => Some(FieldType::Quantitative),
        "temporal" => Some(FieldType::Temporal),
        "ordinal" => Some(FieldType::Ordinal),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vega_lite_shape() {
        let spec = ChartSpec::new(
            ChartType::Bar,
            "category",
            FieldType::Nominal,
            "sum(amount)",
            FieldType::Quantitative,
        )
        .with_title("Revenue by category");
        let doc = spec.to_vega_lite();
        assert_eq!(doc["mark"], "bar");
        assert_eq!(doc["encoding"]["x"]["field"], "category");
        assert_eq!(doc["encoding"]["y"]["type"], "quantitative");
        assert_eq!(doc["title"], "Revenue by category");
        assert!(doc["$schema"].as_str().unwrap().contains("vega-lite"));
    }

    #[test]
    fn time_unit_serializes_on_x() {
        let spec = ChartSpec::new(
            ChartType::Line,
            "sold_on",
            FieldType::Temporal,
            "sum(amount)",
            FieldType::Quantitative,
        )
        .with_time_unit(BinUnit::Month);
        let doc = spec.to_vega_lite();
        assert_eq!(doc["encoding"]["x"]["timeUnit"], "month");
    }

    #[test]
    fn spec_json_roundtrip() {
        let spec = ChartSpec::new(
            ChartType::Pie,
            "category",
            FieldType::Nominal,
            "count(*)",
            FieldType::Quantitative,
        )
        .with_title("Orders by category")
        .with_time_unit(BinUnit::Year);
        let json = serde_json::to_string(&spec.to_vega_lite()).unwrap();
        let doc = serde_json::from_str(&json).unwrap();
        let back = ChartSpec::from_vega_lite(&doc).unwrap();
        assert_eq!(spec, back);
    }
}
