//! VQL: the visualization query language.
//!
//! VQL wraps a data query with a chart directive and an optional temporal
//! binning clause, following the nvBench/ncNet convention:
//!
//! ```text
//! VISUALIZE BAR SELECT category, SUM(amount) FROM sales
//!     JOIN products ON sales.product_id = products.id
//!     GROUP BY category
//! ```
//!
//! The canonical rendering produced by `Display` is what string-based
//! Text-to-Vis metrics ("overall accuracy") compare.

use nli_core::{NliError, Result};
use nli_sql::{parse_query, ColName, Query};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Chart mark type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChartType {
    Bar,
    Pie,
    Line,
    Scatter,
}

impl ChartType {
    pub fn name(self) -> &'static str {
        match self {
            ChartType::Bar => "BAR",
            ChartType::Pie => "PIE",
            ChartType::Line => "LINE",
            ChartType::Scatter => "SCATTER",
        }
    }

    /// Vega-Lite mark name.
    pub fn mark(self) -> &'static str {
        match self {
            ChartType::Bar => "bar",
            ChartType::Pie => "arc",
            ChartType::Line => "line",
            ChartType::Scatter => "point",
        }
    }

    pub fn parse(s: &str) -> Option<ChartType> {
        Some(match s.to_lowercase().as_str() {
            "bar" => ChartType::Bar,
            "pie" => ChartType::Pie,
            "line" => ChartType::Line,
            "scatter" | "point" => ChartType::Scatter,
            _ => return None,
        })
    }

    pub const ALL: [ChartType; 4] = [
        ChartType::Bar,
        ChartType::Pie,
        ChartType::Line,
        ChartType::Scatter,
    ];
}

impl fmt::Display for ChartType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Temporal binning granularity for the x axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinUnit {
    Year,
    Quarter,
    Month,
    Weekday,
}

impl BinUnit {
    pub fn name(self) -> &'static str {
        match self {
            BinUnit::Year => "YEAR",
            BinUnit::Quarter => "QUARTER",
            BinUnit::Month => "MONTH",
            BinUnit::Weekday => "WEEKDAY",
        }
    }

    pub fn parse(s: &str) -> Option<BinUnit> {
        Some(match s.to_lowercase().as_str() {
            "year" => BinUnit::Year,
            "quarter" => BinUnit::Quarter,
            "month" => BinUnit::Month,
            "weekday" => BinUnit::Weekday,
            _ => return None,
        })
    }
}

/// `BIN <column> BY <unit>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bin {
    pub column: ColName,
    pub unit: BinUnit,
}

/// A full VQL program: chart directive + data query + optional binning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisQuery {
    pub chart: ChartType,
    pub query: Query,
    pub bin: Option<Bin>,
}

impl VisQuery {
    pub fn new(chart: ChartType, query: Query) -> Self {
        VisQuery {
            chart,
            query,
            bin: None,
        }
    }

    pub fn with_bin(mut self, column: ColName, unit: BinUnit) -> Self {
        self.bin = Some(Bin { column, unit });
        self
    }
}

impl fmt::Display for VisQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VISUALIZE {} {}", self.chart, self.query)?;
        if let Some(b) = &self.bin {
            write!(f, " BIN {} BY {}", b.column, b.unit.name())?;
        }
        Ok(())
    }
}

/// Parse a VQL string: `VISUALIZE <type> <select...> [BIN <col> BY <unit>]`.
pub fn parse_vis(input: &str) -> Result<VisQuery> {
    let trimmed = input.trim();
    let mut words = trimmed.split_whitespace();
    let head = words
        .next()
        .ok_or_else(|| NliError::Syntax("empty VQL input".into()))?;
    if !head.eq_ignore_ascii_case("visualize") {
        return Err(NliError::Syntax("VQL must start with VISUALIZE".into()));
    }
    let chart_word = words
        .next()
        .ok_or_else(|| NliError::Syntax("missing chart type".into()))?;
    let chart = ChartType::parse(chart_word)
        .ok_or_else(|| NliError::Syntax(format!("unknown chart type: {chart_word}")))?;

    // Remainder after the two head words.
    let rest = trimmed
        .splitn(3, char::is_whitespace)
        .nth(2)
        .unwrap_or("")
        .trim();
    if rest.is_empty() {
        return Err(NliError::Syntax("missing data query".into()));
    }

    // Split off a trailing top-level BIN clause (never inside quotes).
    let (sql_part, bin) = match find_bin_clause(rest) {
        Some(pos) => {
            let (sql, bin_text) = rest.split_at(pos);
            (sql.trim(), Some(parse_bin(bin_text.trim())?))
        }
        None => (rest, None),
    };
    let query = parse_query(sql_part)?;
    Ok(VisQuery { chart, query, bin })
}

/// Byte offset of a top-level ` BIN ` keyword, scanning outside quotes.
fn find_bin_clause(s: &str) -> Option<usize> {
    let lower = s.to_lowercase();
    let bytes = lower.as_bytes();
    let mut in_string = false;
    let mut i = 0;
    while i + 4 <= bytes.len() {
        if bytes[i] == b'\'' {
            in_string = !in_string;
            i += 1;
            continue;
        }
        if !in_string
            && &lower[i..i + 4] == "bin "
            && (i == 0 || bytes[i - 1].is_ascii_whitespace())
        {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Parse `BIN <col> BY <unit>`.
fn parse_bin(text: &str) -> Result<Bin> {
    let words: Vec<&str> = text.split_whitespace().collect();
    if words.len() != 4
        || !words[0].eq_ignore_ascii_case("bin")
        || !words[2].eq_ignore_ascii_case("by")
    {
        return Err(NliError::Syntax(format!("malformed BIN clause: {text}")));
    }
    let column = match words[1].split_once('.') {
        Some((t, c)) => ColName::qualified(t, c),
        None => ColName::new(words[1]),
    };
    let unit = BinUnit::parse(words[3])
        .ok_or_else(|| NliError::Syntax(format!("unknown bin unit: {}", words[3])))?;
    Ok(Bin { column, unit })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_roundtrip() {
        let inputs = [
            "VISUALIZE BAR SELECT category, SUM(amount) FROM sales GROUP BY category",
            "VISUALIZE PIE SELECT category, COUNT(*) FROM products GROUP BY category",
            "VISUALIZE LINE SELECT sold_on, SUM(amount) FROM sales GROUP BY sold_on BIN sold_on BY month",
            "VISUALIZE SCATTER SELECT price, amount FROM sales",
        ];
        for input in inputs {
            let v1 = parse_vis(input).unwrap();
            let printed = v1.to_string();
            let v2 = parse_vis(&printed).unwrap();
            assert_eq!(v1, v2, "not stable for {input}");
        }
    }

    #[test]
    fn case_insensitive_head() {
        let v = parse_vis("visualize bar select a, b from t").unwrap();
        assert_eq!(v.chart, ChartType::Bar);
    }

    #[test]
    fn bin_clause_parses() {
        let v = parse_vis(
            "VISUALIZE LINE SELECT sold_on, SUM(amount) FROM sales GROUP BY sold_on \
             BIN sold_on BY quarter",
        )
        .unwrap();
        let b = v.bin.unwrap();
        assert_eq!(b.unit, BinUnit::Quarter);
        assert_eq!(b.column.column, "sold_on");
    }

    #[test]
    fn bin_keyword_inside_string_is_not_a_clause() {
        let v = parse_vis(
            "VISUALIZE BAR SELECT name, COUNT(*) FROM t WHERE name = 'bin by year' GROUP BY name",
        )
        .unwrap();
        assert!(v.bin.is_none());
    }

    #[test]
    fn errors_on_malformed_input() {
        assert!(parse_vis("").is_err());
        assert!(parse_vis("SELECT a FROM t").is_err());
        assert!(parse_vis("VISUALIZE").is_err());
        assert!(parse_vis("VISUALIZE TREEMAP SELECT a FROM t").is_err());
        assert!(parse_vis("VISUALIZE BAR").is_err());
        assert!(parse_vis("VISUALIZE BAR SELECT a FROM t BIN x").is_err());
        assert!(parse_vis("VISUALIZE BAR SELECT a FROM t BIN x BY eon").is_err());
    }

    #[test]
    fn chart_type_parse_aliases() {
        assert_eq!(ChartType::parse("point"), Some(ChartType::Scatter));
        assert_eq!(ChartType::parse("nope"), None);
    }
}
