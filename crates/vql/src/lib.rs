//! # nli-vql
//!
//! The visualization side of the survey's problem definition. The
//! functional expression `e` is a [`ast::VisQuery`] — a VQL program in the
//! SQL-like pseudo-syntax the Text-to-Vis literature converged on
//! (`VISUALIZE BAR SELECT x, y FROM ... GROUP BY x [BIN x BY month]`) — and
//! the execution engine is [`render::VisEngine`], which runs the embedded
//! data query on the database and materializes a [`render::Chart`] `r`.
//!
//! Charts carry both their data series and a Vega-Lite-style JSON
//! specification ([`spec::ChartSpec`]), plus a terminal renderer so the
//! examples can *show* the figure the paper's Fig. 2 describes.

pub mod ast;
pub mod render;
pub mod spec;

pub use ast::{parse_vis, Bin, BinUnit, ChartType, VisQuery};
pub use render::{Chart, DataPoint, VisEngine};
pub use spec::ChartSpec;
