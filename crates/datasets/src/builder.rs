//! Shared generation machinery for the concrete benchmark builders.

use crate::nl_gen::{realize, NlStyle};
use crate::schema_gen::{generate_database, DbGenConfig};
use crate::sql_gen::{plan_to_query, sample_plan, SqlProfile};
use crate::types::SqlExample;
use nli_core::{par, Database, ExecutionEngine, NlQuestion, Prng};
use nli_sql::SqlEngine;

/// Generate `count` databases round-robin over the built-in domains.
/// Databases are built in parallel from sequentially forked streams, so
/// the corpus is identical at any thread count.
pub fn generate_databases(count: usize, cfg: &DbGenConfig, rng: &mut Prng) -> Vec<Database> {
    let domains = crate::domains::all_domains();
    let forks = rng.fork_n(count);
    par::par_map(&forks, |i, r| {
        let domain = domains[i % domains.len()];
        generate_database(domain, i / domains.len(), cfg, &mut r.clone())
    })
}

/// Generate `n` verified (question, SQL) examples over `databases`.
///
/// Each example gets its own sequentially forked RNG stream — so corpora
/// are stable under resizing *and* under the parallel fan-out that builds
/// the examples. Plans whose SQL fails to execute are discarded and
/// retried — every gold query in every benchmark is executable by
/// construction. One engine (and plan cache) is shared across workers.
pub fn generate_examples(
    databases: &[Database],
    db_range: std::ops::Range<usize>,
    profile: &SqlProfile,
    style: NlStyle,
    n: usize,
    rng: &mut Prng,
) -> Vec<SqlExample> {
    let engine = SqlEngine::new();
    let width = db_range.len().max(1);
    let forks = rng.fork_n(n);
    par::par_map(&forks, |_, ex_rng| {
        let mut ex_rng = ex_rng.clone();
        let db_idx = db_range.start + ex_rng.below(width);
        let db = &databases[db_idx];
        for attempt in 0..12 {
            let mut try_rng = ex_rng.fork(attempt);
            let Some(plan) = sample_plan(db, profile, &mut try_rng) else {
                continue;
            };
            let gold = plan_to_query(db, &plan);
            if engine.execute(&gold, db).is_err() {
                continue;
            }
            let realized = realize(db, &plan, style, &mut try_rng);
            let mut q = NlQuestion::new(realized.text);
            if !realized.evidence.is_empty() {
                q = q.with_evidence(realized.evidence.join("; "));
            }
            return Some(SqlExample {
                db: db_idx,
                question: q,
                gold,
            });
        }
        None
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn databases_cycle_domains() {
        let mut rng = Prng::new(1);
        let dbs = generate_databases(15, &DbGenConfig::default(), &mut rng);
        assert_eq!(dbs.len(), 15);
        let domains: std::collections::HashSet<_> =
            dbs.iter().map(|d| d.schema.domain.clone()).collect();
        assert!(domains.len() >= 12);
        // names unique
        let names: std::collections::HashSet<_> =
            dbs.iter().map(|d| d.schema.name.clone()).collect();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn examples_are_executable_and_fill_the_request() {
        let mut rng = Prng::new(2);
        let dbs = generate_databases(4, &DbGenConfig::default(), &mut rng);
        let examples = generate_examples(
            &dbs,
            0..4,
            &SqlProfile::spider(),
            NlStyle::plain(),
            50,
            &mut rng,
        );
        assert!(examples.len() >= 48, "only {} examples", examples.len());
        let engine = SqlEngine::new();
        for ex in &examples {
            engine.execute(&ex.gold, &dbs[ex.db]).unwrap();
            assert!(!ex.question.text.is_empty());
        }
    }

    #[test]
    fn db_range_is_respected() {
        let mut rng = Prng::new(3);
        let dbs = generate_databases(6, &DbGenConfig::default(), &mut rng);
        let examples = generate_examples(
            &dbs,
            4..6,
            &SqlProfile::wikisql(),
            NlStyle::plain(),
            30,
            &mut rng,
        );
        assert!(examples.iter().all(|e| e.db >= 4 && e.db < 6));
    }

    #[test]
    fn generation_is_stable_under_resizing() {
        // first K examples of a larger corpus equal the K-sized corpus
        let mut r1 = Prng::new(4);
        let dbs = generate_databases(3, &DbGenConfig::default(), &mut r1);
        let small = generate_examples(
            &dbs,
            0..3,
            &SqlProfile::spider(),
            NlStyle::plain(),
            10,
            &mut Prng::new(99),
        );
        let large = generate_examples(
            &dbs,
            0..3,
            &SqlProfile::spider(),
            NlStyle::plain(),
            20,
            &mut Prng::new(99),
        );
        for (a, b) in small.iter().zip(&large) {
            assert_eq!(a.question.text, b.question.text);
            assert_eq!(a.gold, b.gold);
        }
    }
}
