//! Row-value synthesis for generated databases.

use crate::domains::{ValueSpec, CITIES, COUNTRIES, FIRST_NAMES, LAST_NAMES};
use nli_core::{Date, Prng, Value};

/// Generate a value for `spec`.
///
/// * `serial` — 1-based row index, used by [`ValueSpec::Serial`].
/// * `parent_rows` — row count of the FK parent (IDs are `1..=parent_rows`).
pub fn value_for(spec: &ValueSpec, serial: usize, parent_rows: usize, rng: &mut Prng) -> Value {
    match spec {
        ValueSpec::Serial => Value::Int(serial as i64),
        ValueSpec::IntRange(lo, hi) => Value::Int(rng.range(*lo, *hi)),
        ValueSpec::FloatRange(lo, hi) => {
            let v = lo + rng.unit() * (hi - lo);
            Value::Float((v * 100.0).round() / 100.0)
        }
        ValueSpec::Pool(pool) => Value::Text(rng.pick(pool).to_string()),
        ValueSpec::PersonName => Value::Text(format!(
            "{} {}",
            rng.pick(FIRST_NAMES),
            rng.pick(LAST_NAMES)
        )),
        ValueSpec::ProperName(suffixes) => {
            Value::Text(format!("{} {}", rng.pick(LAST_NAMES), rng.pick(suffixes)))
        }
        ValueSpec::City => Value::Text(rng.pick(CITIES).to_string()),
        ValueSpec::Country => Value::Text(rng.pick(COUNTRIES).to_string()),
        ValueSpec::DateRange(lo, hi) => {
            let year = rng.range(*lo as i64, *hi as i64) as i32;
            let month = rng.range(1, 12) as u8;
            let day = rng.range(1, 28) as u8;
            Value::Date(Date::new(year, month, day))
        }
        ValueSpec::Flag => Value::Bool(rng.chance(0.5)),
        ValueSpec::Fk(_) => {
            if parent_rows == 0 {
                Value::Null
            } else {
                Value::Int(rng.range(1, parent_rows as i64))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_match_declared_types() {
        let mut rng = Prng::new(1);
        let specs = [
            ValueSpec::Serial,
            ValueSpec::IntRange(0, 9),
            ValueSpec::FloatRange(0.0, 1.0),
            ValueSpec::Pool(&["a", "b"]),
            ValueSpec::PersonName,
            ValueSpec::ProperName(&["Corp"]),
            ValueSpec::City,
            ValueSpec::Country,
            ValueSpec::DateRange(2000, 2001),
            ValueSpec::Flag,
            ValueSpec::Fk("t"),
        ];
        for spec in specs {
            let v = value_for(&spec, 3, 5, &mut rng);
            assert_eq!(
                v.data_type(),
                Some(spec.data_type()),
                "{spec:?} produced {v:?}"
            );
        }
    }

    #[test]
    fn serial_uses_row_index() {
        let mut rng = Prng::new(1);
        assert_eq!(value_for(&ValueSpec::Serial, 7, 0, &mut rng), Value::Int(7));
    }

    #[test]
    fn fk_stays_within_parent_range() {
        let mut rng = Prng::new(2);
        for _ in 0..500 {
            match value_for(&ValueSpec::Fk("p"), 1, 4, &mut rng) {
                Value::Int(i) => assert!((1..=4).contains(&i)),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn fk_with_no_parent_rows_is_null() {
        let mut rng = Prng::new(3);
        assert!(value_for(&ValueSpec::Fk("p"), 1, 0, &mut rng).is_null());
    }

    #[test]
    fn floats_are_rounded_to_cents() {
        let mut rng = Prng::new(4);
        for _ in 0..100 {
            if let Value::Float(f) = value_for(&ValueSpec::FloatRange(0.0, 10.0), 1, 0, &mut rng) {
                assert!(((f * 100.0).round() - f * 100.0).abs() < 1e-9);
            }
        }
    }
}
