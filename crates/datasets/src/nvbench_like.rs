//! nvBench-like Text-to-Vis benchmark, synthesized from the cross-domain
//! SQL substrate the way Luo et al. (2021) synthesized nvBench from Spider.
//!
//! Each example pairs a chart request in natural language with a gold VQL
//! program. Chart shapes follow the nvBench distribution: grouped bar/pie
//! charts from aggregation queries, scatter plots from numeric column
//! pairs, and line charts over temporally binned date columns.

use crate::builder::generate_databases;
use crate::nl_gen::{column_phrase, condition_phrase, NlStyle};
use crate::schema_gen::DbGenConfig;
use crate::sql_gen::{sample_plan, CondSpec, Plan, SqlProfile, Task};
use crate::types::{Family, VisBenchmark, VisExample};
use nli_core::{ColumnRef, DataType, Database, ExecutionEngine, Language, NlQuestion, Prng};
use nli_sql::{ColName, Expr, Query, Select, SelectItem};
use nli_vql::{BinUnit, ChartType, VisEngine, VisQuery};

/// Configuration for the nvBench-like builder.
#[derive(Debug, Clone, Copy)]
pub struct NvBenchConfig {
    pub n_databases: usize,
    pub n_dev_databases: usize,
    pub n_train: usize,
    pub n_dev: usize,
    pub seed: u64,
}

impl Default for NvBenchConfig {
    fn default() -> Self {
        // Scaled from nvBench's 25,750 pairs over 153 databases.
        NvBenchConfig {
            n_databases: 26,
            n_dev_databases: 6,
            n_train: 200,
            n_dev: 100,
            seed: 0x5EED_0005,
        }
    }
}

/// A vis intent: chart + data plan (+ optional temporal bin).
#[derive(Debug, Clone, PartialEq)]
pub struct VisPlan {
    pub chart: ChartType,
    pub kind: VisKind,
    pub cond: Option<CondSpec>,
}

/// The data shape behind the chart.
#[derive(Debug, Clone, PartialEq)]
pub enum VisKind {
    /// `AGG(y) GROUP BY key` → bar/pie.
    Grouped {
        table: usize,
        key: ColumnRef,
        func: nli_sql::AggFunc,
        arg: Option<ColumnRef>,
    },
    /// Two numeric columns → scatter.
    Pair {
        table: usize,
        x: ColumnRef,
        y: ColumnRef,
    },
    /// Date column binned + numeric column → line/bar over time.
    Temporal {
        table: usize,
        date: ColumnRef,
        y: ColumnRef,
        unit: BinUnit,
    },
}

/// Sample a vis plan over `db`.
pub fn sample_vis_plan(db: &Database, rng: &mut Prng) -> Option<VisPlan> {
    for _attempt in 0..10 {
        let mut try_rng = rng.fork(_attempt as u64);
        match try_rng.below(3) {
            0 => {
                // grouped: reuse the SQL sampler's GroupAgg machinery
                let profile = SqlProfile {
                    p_group: 1.0,
                    p_join: 0.0,
                    p_nested: 0.0,
                    p_compound: 0.0,
                    p_order: 0.0,
                    p_having: 0.0,
                    ..SqlProfile::spider()
                };
                if let Some(Plan::Simple(intent)) = sample_plan(db, &profile, &mut try_rng) {
                    if let Task::GroupAgg { key, func, arg, .. } = intent.task {
                        let chart = if try_rng.chance(0.3) {
                            ChartType::Pie
                        } else {
                            ChartType::Bar
                        };
                        return Some(VisPlan {
                            chart,
                            kind: VisKind::Grouped {
                                table: intent.main,
                                key,
                                func,
                                arg,
                            },
                            cond: intent.conds.first().cloned(),
                        });
                    }
                }
            }
            1 => {
                // scatter: two distinct numeric columns of one table
                if let Some((t, x, y)) = pick_numeric_pair(db, &mut try_rng) {
                    return Some(VisPlan {
                        chart: ChartType::Scatter,
                        kind: VisKind::Pair { table: t, x, y },
                        cond: None,
                    });
                }
            }
            _ => {
                // temporal: date + numeric column
                if let Some((t, date, y)) = pick_temporal_pair(db, &mut try_rng) {
                    let unit = *try_rng.pick(&[BinUnit::Year, BinUnit::Quarter, BinUnit::Month]);
                    let chart = if try_rng.chance(0.7) {
                        ChartType::Line
                    } else {
                        ChartType::Bar
                    };
                    return Some(VisPlan {
                        chart,
                        kind: VisKind::Temporal {
                            table: t,
                            date,
                            y,
                            unit,
                        },
                        cond: None,
                    });
                }
            }
        }
    }
    None
}

fn numeric_cols(db: &Database, t: usize) -> Vec<ColumnRef> {
    db.schema.tables[t]
        .columns
        .iter()
        .enumerate()
        .filter(|(ci, c)| {
            c.dtype.is_numeric()
                && !c.primary_key
                && !db.schema.foreign_keys.iter().any(|fk| {
                    fk.from
                        == ColumnRef {
                            table: t,
                            column: *ci,
                        }
                })
        })
        .map(|(ci, _)| ColumnRef {
            table: t,
            column: ci,
        })
        .collect()
}

fn pick_numeric_pair(db: &Database, rng: &mut Prng) -> Option<(usize, ColumnRef, ColumnRef)> {
    let mut candidates = Vec::new();
    for t in 0..db.schema.tables.len() {
        if db.rows(t).is_empty() {
            continue;
        }
        let nums = numeric_cols(db, t);
        if nums.len() >= 2 {
            candidates.push((t, nums));
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (t, nums) = candidates[rng.below(candidates.len())].clone();
    let i = rng.below(nums.len());
    let mut j = rng.below(nums.len());
    if i == j {
        j = (j + 1) % nums.len();
    }
    Some((t, nums[i], nums[j]))
}

fn pick_temporal_pair(db: &Database, rng: &mut Prng) -> Option<(usize, ColumnRef, ColumnRef)> {
    let mut candidates = Vec::new();
    for t in 0..db.schema.tables.len() {
        if db.rows(t).is_empty() {
            continue;
        }
        let dates: Vec<ColumnRef> = db.schema.tables[t]
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.dtype == DataType::Date)
            .map(|(ci, _)| ColumnRef {
                table: t,
                column: ci,
            })
            .collect();
        let nums = numeric_cols(db, t);
        if !dates.is_empty() && !nums.is_empty() {
            candidates.push((t, dates, nums));
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (t, dates, nums) = candidates[rng.below(candidates.len())].clone();
    Some((
        t,
        dates[rng.below(dates.len())],
        nums[rng.below(nums.len())],
    ))
}

/// Lower a vis plan to gold VQL.
pub fn vis_plan_to_vql(db: &Database, plan: &VisPlan) -> VisQuery {
    let schema = &db.schema;
    let col_name = |r: ColumnRef| ColName::new(&schema.column(r).name);
    let (query, bin): (Query, Option<(ColName, BinUnit)>) = match &plan.kind {
        VisKind::Grouped {
            table,
            key,
            func,
            arg,
        } => {
            let name = &schema.tables[*table].name;
            let key_expr = Expr::Column(col_name(*key));
            let agg = match arg {
                Some(r) => Expr::agg(*func, Expr::Column(col_name(*r))),
                None => Expr::count_star(),
            };
            let mut s = Select::simple(
                name,
                vec![SelectItem::plain(key_expr.clone()), SelectItem::plain(agg)],
            );
            s.group_by = vec![key_expr];
            (Query::single(s), None)
        }
        VisKind::Pair { table, x, y } => {
            let name = &schema.tables[*table].name;
            let s = Select::simple(
                name,
                vec![
                    SelectItem::plain(Expr::Column(col_name(*x))),
                    SelectItem::plain(Expr::Column(col_name(*y))),
                ],
            );
            (Query::single(s), None)
        }
        VisKind::Temporal {
            table,
            date,
            y,
            unit,
        } => {
            let name = &schema.tables[*table].name;
            let s = Select::simple(
                name,
                vec![
                    SelectItem::plain(Expr::Column(col_name(*date))),
                    SelectItem::plain(Expr::Column(col_name(*y))),
                ],
            );
            (Query::single(s), Some((col_name(*date), *unit)))
        }
    };
    let mut query = query;
    if let Some(c) = &plan.cond {
        let table_name = &schema.tables[c.col.table].name;
        query.select.where_clause = Some(crate::sql_gen::cond_to_expr(db, c, table_name));
    }
    let mut v = VisQuery::new(plan.chart, query);
    if let Some((col, unit)) = bin {
        v = v.with_bin(col, unit);
    }
    v
}

/// Realize a vis plan into a chart request.
pub fn realize_vis(db: &Database, plan: &VisPlan, style: NlStyle, rng: &mut Prng) -> NlQuestion {
    let verb = *rng.pick(&["Show", "Draw", "Plot"]);
    let chart_word = match plan.chart {
        ChartType::Bar => "bar chart",
        ChartType::Pie => "pie chart",
        ChartType::Line => "line chart",
        ChartType::Scatter => "scatter chart",
    };
    let cond_suffix = match &plan.cond {
        Some(c) => {
            let r = condition_phrase(db, c, style, rng);
            format!(" {}", r.text)
        }
        None => String::new(),
    };
    let text = match &plan.kind {
        VisKind::Grouped {
            table,
            key,
            func,
            arg,
        } => {
            let (_, plural) = crate::nl_gen::table_phrase(db, *table, style, rng);
            let keyp = column_phrase(db, *key, style, rng);
            let ypart = match (func, arg) {
                (nli_sql::AggFunc::Count, None) => format!("the number of {plural}"),
                (f, Some(r)) => {
                    let word = match f {
                        nli_sql::AggFunc::Sum => "total",
                        nli_sql::AggFunc::Avg => "average",
                        nli_sql::AggFunc::Max => "maximum",
                        nli_sql::AggFunc::Min => "minimum",
                        nli_sql::AggFunc::Count => "count of",
                    };
                    format!("the {word} {}", column_phrase(db, *r, style, rng))
                }
                (f, None) => format!("the {} of {plural}", f.name().to_lowercase()),
            };
            format!("{verb} a {chart_word} of {ypart} for each {keyp}{cond_suffix}.")
        }
        VisKind::Pair { table, x, y } => {
            let (_, plural) = crate::nl_gen::table_phrase(db, *table, style, rng);
            let xp = column_phrase(db, *x, style, rng);
            let yp = column_phrase(db, *y, style, rng);
            format!("{verb} a {chart_word} of {yp} against {xp} for {plural}{cond_suffix}.")
        }
        VisKind::Temporal {
            table,
            date,
            y,
            unit,
        } => {
            let (_, plural) = crate::nl_gen::table_phrase(db, *table, style, rng);
            let dp = column_phrase(db, *date, style, rng);
            let yp = column_phrase(db, *y, style, rng);
            let unit_word = match unit {
                BinUnit::Year => "year",
                BinUnit::Quarter => "quarter",
                BinUnit::Month => "month",
                BinUnit::Weekday => "weekday",
            };
            format!(
                "{verb} a {chart_word} of {yp} of {plural} over {dp} binned by {unit_word}{cond_suffix}."
            )
        }
    };
    NlQuestion::new(text)
}

fn generate_vis_examples(
    databases: &[Database],
    db_range: std::ops::Range<usize>,
    n: usize,
    rng: &mut Prng,
) -> Vec<VisExample> {
    let engine = VisEngine::new();
    let width = db_range.len().max(1);
    // Same reseeding rule as the SQL builder: fork per-example streams
    // sequentially, realize the examples in parallel.
    let forks = rng.fork_n(n);
    nli_core::par::par_map(&forks, |_, ex_rng| {
        let mut ex_rng = ex_rng.clone();
        let db_idx = db_range.start + ex_rng.below(width);
        let db = &databases[db_idx];
        for attempt in 0..10u64 {
            let mut try_rng = ex_rng.fork(attempt);
            let Some(plan) = sample_vis_plan(db, &mut try_rng) else {
                continue;
            };
            let gold = vis_plan_to_vql(db, &plan);
            if engine.execute(&gold, db).is_err() {
                continue;
            }
            let question = realize_vis(db, &plan, NlStyle::plain(), &mut try_rng);
            return Some(VisExample {
                db: db_idx,
                question,
                gold,
            });
        }
        None
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Build the nvBench-like benchmark.
pub fn build(cfg: &NvBenchConfig) -> VisBenchmark {
    let mut rng = Prng::new(cfg.seed);
    let db_cfg = DbGenConfig {
        min_tables: 2,
        optional_col_p: 0.8,
        rows: (15, 40),
    };
    let databases = generate_databases(cfg.n_databases, &db_cfg, &mut rng);
    let train_dbs = cfg.n_databases - cfg.n_dev_databases.min(cfg.n_databases);
    let train = generate_vis_examples(&databases, 0..train_dbs.max(1), cfg.n_train, &mut rng);
    let dev = generate_vis_examples(&databases, train_dbs..cfg.n_databases, cfg.n_dev, &mut rng);
    VisBenchmark {
        name: "nvbench-like".into(),
        family: Family::CrossDomain,
        language: Language::English,
        databases,
        train,
        dev,
        dialogues: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> NvBenchConfig {
        NvBenchConfig {
            n_databases: 13,
            n_dev_databases: 3,
            n_train: 60,
            n_dev: 40,
            ..Default::default()
        }
    }

    #[test]
    fn gold_vql_renders_charts() {
        let b = build(&small());
        assert!(b.dev.len() >= 35, "dev size {}", b.dev.len());
        let engine = VisEngine::new();
        for ex in &b.dev {
            let chart = engine.execute(&ex.gold, &b.databases[ex.db]).unwrap();
            assert_eq!(chart.chart_type, ex.gold.chart);
        }
    }

    #[test]
    fn chart_types_are_diverse() {
        let b = build(&NvBenchConfig {
            n_train: 150,
            ..small()
        });
        let mut seen = std::collections::HashSet::new();
        for ex in b.train.iter().chain(&b.dev) {
            seen.insert(ex.gold.chart);
        }
        assert!(seen.len() >= 3, "chart types seen: {seen:?}");
    }

    #[test]
    fn questions_mention_the_chart_type() {
        let b = build(&small());
        for ex in &b.dev {
            assert!(ex.question.text.contains("chart"), "{}", ex.question.text);
        }
    }

    #[test]
    fn temporal_plans_carry_bins() {
        let b = build(&NvBenchConfig {
            n_train: 150,
            ..small()
        });
        let binned = b
            .train
            .iter()
            .chain(&b.dev)
            .filter(|e| e.gold.bin.is_some())
            .count();
        assert!(binned > 5, "only {binned} binned examples");
    }

    #[test]
    fn dev_databases_unseen_in_train() {
        let b = build(&small());
        assert!(b.train.iter().all(|e| e.db < 10));
        assert!(b.dev.iter().all(|e| e.db >= 10));
    }

    #[test]
    fn vql_roundtrips_through_parser() {
        let b = build(&small());
        for ex in b.dev.iter().take(20) {
            let text = ex.gold.to_string();
            let parsed = nli_vql::parse_vis(&text).unwrap();
            assert_eq!(parsed, ex.gold);
        }
    }
}
