//! # nli-data
//!
//! Seeded synthetic benchmark generators for every dataset family the
//! survey tabulates (Table 1), for both tasks:
//!
//! | Family | Text-to-SQL exemplar | Text-to-Vis exemplar | Generator |
//! |---|---|---|---|
//! | single-domain | ATIS/GeoQuery/Academic | Gao et al./Kumar et al. | [`single_domain`] |
//! | cross-domain | WikiSQL, Spider | nvBench | [`wikisql_like`], [`spider_like`], [`nvbench_like`] |
//! | multi-turn | SParC, CoSQL | ChartDialogs, Dial-NVBench | [`multiturn`] |
//! | multilingual | CSpider, DuSQL, ViText2SQL | CNvBench | [`multilingual`] |
//! | robustness | Spider-SYN/-DK/-realistic | — | [`robustness`] |
//! | knowledge-grounded | BIRD, knowSQL | — | [`bird_like`] |
//!
//! Real corpora are unavailable offline; these generators reproduce the
//! corpora's *structural axes* (schema diversity, query complexity
//! profiles, conversational dependency, lexical perturbation, evidence
//! grounding) so every downstream experiment exercises the same parser code
//! paths. See DESIGN.md §2 for the substitution argument.
//!
//! Generation is compositional and invertible-by-construction: a sampled
//! SQL/VQL program is realized into a natural-language question by
//! [`nl_gen`], with controlled lexical noise, so (question, program) pairs
//! are faithful by construction and parsers face a genuine (if synthetic)
//! semantic-parsing problem.

pub mod bird_like;
pub mod builder;
pub mod domains;
pub mod multilingual;
pub mod multiturn;
pub mod nl_gen;
pub mod nvbench_like;
pub mod pretrain;
pub mod robustness;
pub mod schema_gen;
pub mod single_domain;
pub mod spider_like;
pub mod sql_gen;
pub mod stats;
pub mod types;
pub mod value_gen;
pub mod wikisql_like;

pub use stats::DatasetStats;
pub use types::{Family, SqlBenchmark, SqlDialogue, SqlExample, VisBenchmark, VisExample};
