//! Database sampling: domain template → concrete populated [`Database`].
//!
//! Each call samples which tables and optional columns a database variant
//! includes (giving the schema diversity cross-domain benchmarks need) and
//! populates rows with referentially consistent values.

use crate::domains::{ColTemplate, Domain, TableTemplate, ValueSpec};
use crate::value_gen::value_for;
use nli_core::{Column, Database, Prng, Schema, Table, Value};

/// Generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct DbGenConfig {
    /// Minimum tables to keep from the domain template (FK-closure may add
    /// more).
    pub min_tables: usize,
    /// Probability an optional column is included.
    pub optional_col_p: f64,
    /// Rows per table (uniform in the range).
    pub rows: (usize, usize),
}

impl Default for DbGenConfig {
    fn default() -> Self {
        DbGenConfig {
            min_tables: 2,
            optional_col_p: 0.7,
            rows: (12, 40),
        }
    }
}

/// Sample one database from `domain`. `variant` disambiguates the database
/// name (`retail_3`); equal `(domain, variant, seed)` replay identically.
pub fn generate_database(
    domain: &Domain,
    variant: usize,
    cfg: &DbGenConfig,
    rng: &mut Prng,
) -> Database {
    // --- choose tables (always keep table 0; close over FK parents) -----
    let n = domain.tables.len();
    let want = cfg.min_tables.min(n).max(1);
    let mut include = vec![false; n];
    include[0] = true;
    let mut chosen = 1;
    // random inclusion until at least `want`, then coin-flip the rest
    for slot in include.iter_mut().skip(1) {
        if chosen < want || rng.chance(0.6) {
            *slot = true;
            chosen += 1;
        }
    }
    // FK closure: a child needs its parents (parents precede children).
    for i in (0..n).rev() {
        if !include[i] {
            continue;
        }
        for c in domain.tables[i].columns {
            if let ValueSpec::Fk(parent) = c.spec {
                let pi = domain
                    .tables
                    .iter()
                    .position(|t| t.name == parent)
                    .expect("domain templates are validated");
                include[pi] = true;
            }
        }
    }

    let picked: Vec<&TableTemplate> = domain
        .tables
        .iter()
        .enumerate()
        .filter(|(i, _)| include[*i])
        .map(|(_, t)| t)
        .collect();

    // --- choose columns per table ---------------------------------------
    let chosen_cols: Vec<Vec<&ColTemplate>> = picked
        .iter()
        .map(|t| {
            t.columns
                .iter()
                .filter(|c| !c.optional || rng.chance(cfg.optional_col_p))
                .collect()
        })
        .collect();

    // --- build schema -----------------------------------------------------
    let mut tables = Vec::with_capacity(picked.len());
    for (t, cols) in picked.iter().zip(&chosen_cols) {
        let columns = cols
            .iter()
            .map(|c| {
                let mut col = Column::new(c.name, c.spec.data_type()).with_display(c.display);
                if matches!(c.spec, ValueSpec::Serial) {
                    col = col.primary();
                }
                col
            })
            .collect();
        tables.push(Table::new(t.name, columns).with_display(t.singular));
    }
    let mut schema =
        Schema::new(&format!("{}_{variant}", domain.name), tables).with_domain(domain.name);
    for (t, cols) in picked.iter().zip(&chosen_cols) {
        for c in cols {
            if let ValueSpec::Fk(parent) = c.spec {
                schema
                    .add_foreign_key(t.name, c.name, parent, "id")
                    .expect("FK closure guarantees the parent table exists");
            }
        }
    }

    // --- populate ----------------------------------------------------------
    let mut db = Database::empty(schema);
    let mut row_counts: Vec<(String, usize)> = Vec::new();
    for (t, cols) in picked.iter().zip(&chosen_cols) {
        let rows = cfg.rows.0 + rng.below(cfg.rows.1 - cfg.rows.0 + 1);
        for serial in 1..=rows {
            let row: Vec<Value> = cols
                .iter()
                .map(|c| {
                    let parent_rows = match c.spec {
                        ValueSpec::Fk(parent) => row_counts
                            .iter()
                            .find(|(n, _)| n == parent)
                            .map(|(_, k)| *k)
                            .unwrap_or(0),
                        _ => 0,
                    };
                    value_for(&c.spec, serial, parent_rows, rng)
                })
                .collect();
            db.insert(t.name, row)
                .expect("generated rows are schema-consistent");
        }
        row_counts.push((t.name.to_string(), rows));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::all_domains;

    #[test]
    fn every_domain_generates_valid_databases() {
        let cfg = DbGenConfig::default();
        for (i, d) in all_domains().iter().enumerate() {
            let mut rng = Prng::new(100 + i as u64);
            let db = generate_database(d, 0, &cfg, &mut rng);
            assert!(!db.schema.tables.is_empty(), "{}", d.name);
            assert!(db.row_count() > 0);
            db.check_foreign_keys()
                .unwrap_or_else(|e| panic!("{}: {e}", d.name));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let d = all_domains()[0];
        let cfg = DbGenConfig::default();
        let a = generate_database(d, 1, &cfg, &mut Prng::new(7));
        let b = generate_database(d, 1, &cfg, &mut Prng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn variants_differ() {
        let d = all_domains()[0];
        let cfg = DbGenConfig::default();
        let mut rng = Prng::new(7);
        let a = generate_database(d, 1, &cfg, &mut rng);
        let b = generate_database(d, 2, &cfg, &mut rng);
        assert_ne!(a.schema.name, b.schema.name);
        assert_ne!(a.data, b.data);
    }

    #[test]
    fn min_tables_is_respected_where_possible() {
        let d = all_domains()[1]; // music: 3 tables
        let cfg = DbGenConfig {
            min_tables: 3,
            ..DbGenConfig::default()
        };
        let mut rng = Prng::new(9);
        let db = generate_database(d, 0, &cfg, &mut rng);
        assert_eq!(db.schema.tables.len(), 3);
    }

    #[test]
    fn rows_within_configured_range() {
        let d = all_domains()[0];
        let cfg = DbGenConfig {
            rows: (5, 8),
            ..DbGenConfig::default()
        };
        let mut rng = Prng::new(3);
        let db = generate_database(d, 0, &cfg, &mut rng);
        for t in &db.data {
            assert!((5..=8).contains(&t.rows.len()));
        }
    }

    #[test]
    fn display_names_are_carried_over() {
        let d = all_domains()[0]; // retail
        let cfg = DbGenConfig::default();
        let mut rng = Prng::new(11);
        let db = generate_database(d, 0, &cfg, &mut rng);
        let products = db.schema.table("products").unwrap();
        assert_eq!(products.display, "product");
        assert_eq!(db.schema.domain, "retail");
    }
}
