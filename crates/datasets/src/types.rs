//! Benchmark container types shared by all generators.

use nli_core::{Database, Language, NlQuestion};
use nli_sql::Query;
use nli_vql::VisQuery;

/// Dataset family, mirroring the grouping of the survey's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    SingleDomain,
    CrossDomain,
    MultiTurn,
    Multilingual,
    Robustness,
    KnowledgeGrounding,
}

impl Family {
    pub fn name(self) -> &'static str {
        match self {
            Family::SingleDomain => "Single Domain",
            Family::CrossDomain => "Cross Domain",
            Family::MultiTurn => "Multi-turn",
            Family::Multilingual => "Multilingual",
            Family::Robustness => "Robustness",
            Family::KnowledgeGrounding => "Knowledge Grounding",
        }
    }
}

/// One single-turn Text-to-SQL example.
#[derive(Debug, Clone)]
pub struct SqlExample {
    /// Index into the benchmark's `databases`.
    pub db: usize,
    pub question: NlQuestion,
    pub gold: Query,
}

/// One multi-turn Text-to-SQL interaction.
#[derive(Debug, Clone)]
pub struct SqlDialogue {
    pub db: usize,
    pub turns: Vec<(NlQuestion, Query)>,
}

/// A Text-to-SQL benchmark: databases plus train/dev example splits.
/// Cross-domain benchmarks split by *database* (dev schemas unseen in
/// train), the evaluation convention Spider introduced.
#[derive(Debug, Clone)]
pub struct SqlBenchmark {
    pub name: String,
    pub family: Family,
    pub language: Language,
    pub databases: Vec<Database>,
    pub train: Vec<SqlExample>,
    pub dev: Vec<SqlExample>,
    /// Present only for multi-turn benchmarks.
    pub dialogues: Vec<SqlDialogue>,
}

impl SqlBenchmark {
    /// Database of an example.
    pub fn db_of(&self, ex: &SqlExample) -> &Database {
        &self.databases[ex.db]
    }

    pub fn example_count(&self) -> usize {
        self.train.len()
            + self.dev.len()
            + self.dialogues.iter().map(|d| d.turns.len()).sum::<usize>()
    }

    /// Distinct domain labels across databases.
    pub fn domain_count(&self) -> usize {
        let mut set: Vec<&str> = self
            .databases
            .iter()
            .map(|d| d.schema.domain.as_str())
            .collect();
        set.sort();
        set.dedup();
        set.len()
    }

    /// Mean number of tables per database.
    pub fn tables_per_db(&self) -> f64 {
        if self.databases.is_empty() {
            return 0.0;
        }
        self.databases
            .iter()
            .map(|d| d.schema.tables.len())
            .sum::<usize>() as f64
            / self.databases.len() as f64
    }
}

/// One Text-to-Vis example.
#[derive(Debug, Clone)]
pub struct VisExample {
    pub db: usize,
    pub question: NlQuestion,
    pub gold: VisQuery,
}

/// A multi-turn Text-to-Vis dialogue.
#[derive(Debug, Clone)]
pub struct VisDialogue {
    pub db: usize,
    pub turns: Vec<(NlQuestion, VisQuery)>,
}

/// A Text-to-Vis benchmark.
#[derive(Debug, Clone)]
pub struct VisBenchmark {
    pub name: String,
    pub family: Family,
    pub language: Language,
    pub databases: Vec<Database>,
    pub train: Vec<VisExample>,
    pub dev: Vec<VisExample>,
    pub dialogues: Vec<VisDialogue>,
}

impl VisBenchmark {
    pub fn db_of(&self, ex: &VisExample) -> &Database {
        &self.databases[ex.db]
    }

    pub fn example_count(&self) -> usize {
        self.train.len()
            + self.dev.len()
            + self.dialogues.iter().map(|d| d.turns.len()).sum::<usize>()
    }

    pub fn domain_count(&self) -> usize {
        let mut set: Vec<&str> = self
            .databases
            .iter()
            .map(|d| d.schema.domain.as_str())
            .collect();
        set.sort();
        set.dedup();
        set.len()
    }

    pub fn tables_per_db(&self) -> f64 {
        if self.databases.is_empty() {
            return 0.0;
        }
        self.databases
            .iter()
            .map(|d| d.schema.tables.len())
            .sum::<usize>() as f64
            / self.databases.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::Schema;
    use nli_sql::{parse_query, Select, SelectItem};

    #[test]
    fn counts_cover_all_splits() {
        let db = Database::empty(Schema::new("d", vec![]).with_domain("retail"));
        let q = parse_query("SELECT 1 FROM t").unwrap_or_else(|_| {
            nli_sql::Query::single(Select::simple(
                "t",
                vec![SelectItem::plain(nli_sql::Expr::col("x"))],
            ))
        });
        let ex = SqlExample {
            db: 0,
            question: NlQuestion::new("q"),
            gold: q.clone(),
        };
        let b = SqlBenchmark {
            name: "t".into(),
            family: Family::CrossDomain,
            language: Language::English,
            databases: vec![db],
            train: vec![ex.clone(), ex.clone()],
            dev: vec![ex.clone()],
            dialogues: vec![SqlDialogue {
                db: 0,
                turns: vec![(NlQuestion::new("a"), q.clone()), (NlQuestion::new("b"), q)],
            }],
        };
        assert_eq!(b.example_count(), 5);
        assert_eq!(b.domain_count(), 1);
        assert_eq!(b.tables_per_db(), 0.0);
    }
}
