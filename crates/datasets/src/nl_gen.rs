//! Natural-language realization of sampled plans.
//!
//! The NL channel deliberately injects the phenomena the survey's datasets
//! are built around:
//!
//! * **lexical variation** — verbs, aggregate words and comparison phrases
//!   vary per example; with probability [`NlStyle::synonym_p`] a schema
//!   mention is replaced by a synonym (base difficulty; the Spider-SYN
//!   robustness variant pushes this to certainty);
//! * **implicit columns** — with probability [`NlStyle::implicit_col_p`]
//!   the explicit column mention is dropped (Spider-realistic);
//! * **knowledge-grounded conditions** — with probability
//!   [`NlStyle::knowledge_p`] a numeric comparison is verbalized as a vague
//!   concept ("premium products") whose definition is emitted as BIRD-style
//!   *evidence*; with the evidence withheld this becomes the Spider-DK
//!   challenge.

use crate::domains;
use crate::sql_gen::{CondOp, CondSpec, Intent, OrderSpec, Plan, Task};
use nli_core::{ColumnRef, Database, Prng, Value};
use nli_nlu::SynonymLexicon;
use nli_sql::{AggFunc, BinOp, SetOp};

/// Style knobs for NL generation.
#[derive(Debug, Clone, Copy)]
pub struct NlStyle {
    /// Probability a column/table mention is replaced with a synonym.
    pub synonym_p: f64,
    /// Probability an explicit column mention is dropped.
    pub implicit_col_p: f64,
    /// Probability a numeric comparison becomes a knowledge concept.
    pub knowledge_p: f64,
}

impl NlStyle {
    /// Standard benchmark style: mild synonym noise only.
    pub fn plain() -> NlStyle {
        NlStyle {
            synonym_p: 0.15,
            implicit_col_p: 0.0,
            knowledge_p: 0.0,
        }
    }

    /// Spider-SYN-like: every mention synonymized where possible.
    pub fn synonym_heavy() -> NlStyle {
        NlStyle {
            synonym_p: 1.0,
            implicit_col_p: 0.0,
            knowledge_p: 0.0,
        }
    }

    /// Spider-realistic-like: explicit column mentions removed.
    pub fn realistic() -> NlStyle {
        NlStyle {
            synonym_p: 0.15,
            implicit_col_p: 1.0,
            knowledge_p: 0.0,
        }
    }

    /// BIRD/Spider-DK-like: conditions verbalized as domain concepts.
    pub fn knowledge() -> NlStyle {
        NlStyle {
            synonym_p: 0.15,
            implicit_col_p: 0.0,
            knowledge_p: 0.85,
        }
    }
}

/// A realized question plus any evidence sentences its concepts need.
#[derive(Debug, Clone, PartialEq)]
pub struct Realized {
    pub text: String,
    pub evidence: Vec<String>,
}

struct Ctx<'a> {
    db: &'a Database,
    style: NlStyle,
    lex: SynonymLexicon,
    evidence: Vec<String>,
}

impl<'a> Ctx<'a> {
    /// Display phrase of a column, possibly synonymized.
    fn col(&self, r: ColumnRef, rng: &mut Prng) -> String {
        let display = self.db.schema.column(r).display.clone();
        self.maybe_synonymize(&display, rng)
    }

    fn maybe_synonymize(&self, phrase: &str, rng: &mut Prng) -> String {
        if !rng.chance(self.style.synonym_p) {
            return phrase.to_string();
        }
        // Replace the first word that has synonyms.
        let words: Vec<&str> = phrase.split_whitespace().collect();
        for (i, w) in words.iter().enumerate() {
            let syns = self.lex.synonyms_of(w);
            if !syns.is_empty() {
                let pick = syns[rng.below(syns.len())].to_string();
                let mut out = words.clone();
                let owned = pick;
                out[i] = &owned;
                return out.join(" ");
            }
        }
        phrase.to_string()
    }

    /// Singular/plural display of a table (from the domain template when
    /// available), possibly synonymized.
    fn table_forms(&self, t: usize, rng: &mut Prng) -> (String, String) {
        let name = &self.db.schema.tables[t].name;
        let (sing, plur) = match domains::domain(&self.db.schema.domain)
            .and_then(|d| d.tables.iter().find(|tt| tt.name == *name))
        {
            Some(tt) => (tt.singular.to_string(), tt.plural.to_string()),
            None => {
                let s = self.db.schema.tables[t].display.clone();
                let p = format!("{s}s");
                (s, p)
            }
        };
        (
            self.maybe_synonymize(&sing, rng),
            self.maybe_synonymize(&plur, rng),
        )
    }
}

fn value_phrase(v: &Value) -> String {
    match v {
        Value::Text(s) => format!("'{s}'"),
        Value::Date(d) => format!("'{d}'"),
        other => other.canonical(),
    }
}

/// Verbalize one condition (may add evidence).
fn cond_phrase(ctx: &mut Ctx, c: &CondSpec, rng: &mut Prng) -> String {
    let col = ctx.col(c.col, rng);
    match &c.op {
        CondOp::Cmp(op) => {
            let is_date = matches!(c.value, Value::Date(_));
            let numeric = matches!(c.value, Value::Int(_) | Value::Float(_));
            // knowledge-grounded verbalization for numeric thresholds
            if numeric && ctx.style.knowledge_p > 0.0 && rng.chance(ctx.style.knowledge_p) {
                let (concept, dir) = match op {
                    BinOp::Gt | BinOp::Ge => ("high", "greater than"),
                    BinOp::Lt | BinOp::Le => ("low", "less than"),
                    _ => ("notable", "equal to"),
                };
                ctx.evidence.push(format!(
                    "a {concept} {col} means {col} {dir} {}",
                    value_phrase(&c.value)
                ));
                return format!("with a {concept} {col}");
            }
            let v = value_phrase(&c.value);
            match op {
                BinOp::Gt if is_date => format!("with {col} after {v}"),
                BinOp::Lt if is_date => format!("with {col} before {v}"),
                BinOp::Ge if is_date => format!("with {col} on or after {v}"),
                BinOp::Le if is_date => format!("with {col} on or before {v}"),
                BinOp::Gt => {
                    let w = *rng.pick(&["greater than", "more than", "above"]);
                    format!("with {col} {w} {v}")
                }
                BinOp::Lt => {
                    let w = *rng.pick(&["less than", "below", "under"]);
                    format!("with {col} {w} {v}")
                }
                BinOp::Ge => format!("with {col} at least {v}"),
                BinOp::Le => format!("with {col} at most {v}"),
                BinOp::Eq => {
                    let w = *rng.pick(&["is", "equal to"]);
                    format!("whose {col} {w} {v}")
                }
                BinOp::Neq => format!("whose {col} is not {v}"),
                _ => format!("with {col} {} {v}", op.symbol()),
            }
        }
        CondOp::Between => format!(
            "with {col} between {} and {}",
            value_phrase(&c.value),
            value_phrase(c.value2.as_ref().expect("between bound"))
        ),
        CondOp::Contains => format!("whose {col} contains {}", value_phrase(&c.value)),
        CondOp::EqExtreme(f) => match f {
            AggFunc::Max => format!("with the maximum {col}"),
            _ => format!("with the minimum {col}"),
        },
    }
}

fn conds_suffix(ctx: &mut Ctx, conds: &[CondSpec], rng: &mut Prng) -> String {
    if conds.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = conds.iter().map(|c| cond_phrase(ctx, c, rng)).collect();
    format!(" {}", parts.join(" and "))
}

#[allow(clippy::explicit_auto_deref)] // T would infer as `str` without the deref
fn agg_word(f: AggFunc, rng: &mut Prng) -> &'static str {
    match f {
        AggFunc::Sum => *rng.pick(&["total", "sum of the"]),
        AggFunc::Avg => *rng.pick(&["average", "mean"]),
        AggFunc::Max => *rng.pick(&["maximum", "highest"]),
        AggFunc::Min => *rng.pick(&["minimum", "lowest"]),
        AggFunc::Count => "number of",
    }
}

fn order_suffix(ctx: &mut Ctx, o: &OrderSpec, limit: Option<u64>, rng: &mut Prng) -> String {
    let dir = if o.desc { "descending" } else { "ascending" };
    let by = match o.col {
        Some(r) => ctx.col(r, rng),
        None => "the result".to_string(),
    };
    match limit {
        Some(k) => format!(", sorted by {by} in {dir} order, and show only the top {k}"),
        None => format!(", sorted by {by} in {dir} order"),
    }
}

/// Verbalize a single condition (public entry point for the multi-turn
/// generators, which phrase follow-up turns around one new condition).
pub fn condition_phrase(db: &Database, c: &CondSpec, style: NlStyle, rng: &mut Prng) -> Realized {
    let mut ctx = Ctx {
        db,
        style,
        lex: SynonymLexicon::default_english(),
        evidence: Vec::new(),
    };
    let text = cond_phrase(&mut ctx, c, rng);
    Realized {
        text,
        evidence: ctx.evidence,
    }
}

/// Display phrase of a column (public for the vis/multi-turn generators).
pub fn column_phrase(db: &Database, r: ColumnRef, style: NlStyle, rng: &mut Prng) -> String {
    let ctx = Ctx {
        db,
        style,
        lex: SynonymLexicon::default_english(),
        evidence: Vec::new(),
    };
    ctx.col(r, rng)
}

/// Singular and plural display of a table (public for the vis/multi-turn
/// generators).
pub fn table_phrase(db: &Database, t: usize, style: NlStyle, rng: &mut Prng) -> (String, String) {
    let ctx = Ctx {
        db,
        style,
        lex: SynonymLexicon::default_english(),
        evidence: Vec::new(),
    };
    ctx.table_forms(t, rng)
}

/// Realize a plan into a question.
pub fn realize(db: &Database, plan: &Plan, style: NlStyle, rng: &mut Prng) -> Realized {
    let mut ctx = Ctx {
        db,
        style,
        lex: SynonymLexicon::default_english(),
        evidence: Vec::new(),
    };
    let text = match plan {
        Plan::Simple(intent) => realize_simple(&mut ctx, intent, rng),
        Plan::Nested {
            outer,
            select_col,
            child,
            negated,
            inner_cond,
            ..
        } => {
            let (_, outer_p) = ctx.table_forms(*outer, rng);
            let (child_s, _) = ctx.table_forms(*child, rng);
            let col = ctx.col(*select_col, rng);
            let inner = match inner_cond {
                Some(c) => format!(" {}", cond_phrase(&mut ctx, c, rng)),
                None => String::new(),
            };
            if *negated {
                format!("List the {col} of {outer_p} that have no {child_s}{inner}.")
            } else {
                format!("List the {col} of {outer_p} that have at least one {child_s}{inner}.")
            }
        }
        Plan::Compound {
            table,
            col,
            left,
            right,
            op,
        } => {
            let (_, plur) = ctx.table_forms(*table, rng);
            let col = ctx.col(*col, rng);
            let a = cond_phrase(&mut ctx, left, rng);
            let b = cond_phrase(&mut ctx, right, rng);
            match op {
                SetOp::Union => format!("List the {col} of {plur} {a} or {b}."),
                SetOp::Intersect => format!("List the {col} of {plur} {a} and also {b}."),
                SetOp::Except => format!("List the {col} of {plur} {a} but not {b}."),
            }
        }
    };
    Realized {
        text,
        evidence: ctx.evidence,
    }
}

fn realize_simple(ctx: &mut Ctx, intent: &Intent, rng: &mut Prng) -> String {
    let (main_s, main_p) = ctx.table_forms(intent.main, rng);
    let conds = conds_suffix(ctx, &intent.conds, rng);
    let order = match &intent.order {
        Some(o) => order_suffix(ctx, o, intent.limit, rng),
        None => String::new(),
    };
    // Parent-owned columns get a "<parent> <column>" phrase so join intent
    // is recoverable from the words.
    let colp = |ctx: &mut Ctx, r: ColumnRef, rng: &mut Prng| -> String {
        let base = ctx.col(r, rng);
        match &intent.join {
            Some(j) if r.table == j.parent => {
                let (ps, _) = ctx.table_forms(j.parent, rng);
                format!("{ps} {base}")
            }
            _ => base,
        }
    };
    match &intent.task {
        Task::Columns(cols) => {
            let verb = *rng.pick(&["List", "Show", "Give"]);
            let the_cols: Vec<String> = cols.iter().map(|r| colp(ctx, *r, rng)).collect();
            let distinct_w = if intent.distinct { "different " } else { "" };
            if ctx.style.implicit_col_p > 0.0
                && cols.len() == 1
                && rng.chance(ctx.style.implicit_col_p)
            {
                // Spider-realistic: no explicit column mention.
                format!("{verb} the {distinct_w}{main_p}{conds}{order}.")
            } else {
                format!(
                    "{verb} the {distinct_w}{} of {main_p}{conds}{order}.",
                    the_cols.join(" and ")
                )
            }
        }
        Task::Agg {
            func: AggFunc::Count,
            arg: None,
        } => match rng.below(3) {
            0 => format!("How many {main_p}{conds} are there?"),
            1 => format!("Count the {main_p}{conds}."),
            _ => format!("What is the number of {main_p}{conds}?"),
        },
        Task::Agg { func, arg } => {
            let word = agg_word(*func, rng);
            let arg_phrase = match arg {
                Some(r) => colp(ctx, *r, rng),
                None => main_s.clone(),
            };
            match rng.below(2) {
                0 => format!("What is the {word} {arg_phrase} of {main_p}{conds}?"),
                _ => format!("Find the {word} {arg_phrase} of {main_p}{conds}."),
            }
        }
        Task::GroupAgg {
            key,
            func,
            arg,
            having_min_count,
        } => {
            let keyp = colp(ctx, *key, rng);
            let agg_part = match (func, arg) {
                (AggFunc::Count, None) => format!("how many {main_p} are there"),
                (f, Some(r)) => {
                    let word = agg_word(*f, rng);
                    let ap = colp(ctx, *r, rng);
                    format!("what is the {word} {ap} of {main_p}")
                }
                (f, None) => format!("what is the {} of {main_p}", agg_word(*f, rng)),
            };
            let having = match having_min_count {
                Some(n) => format!(", keeping only groups with more than {n} {main_p}"),
                None => String::new(),
            };
            format!("For each {keyp}, {agg_part}{conds}{having}{order}?")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::all_domains;
    use crate::schema_gen::{generate_database, DbGenConfig};
    use crate::sql_gen::{sample_plan, SqlProfile};

    fn db(seed: u64) -> Database {
        let d = all_domains()[seed as usize % all_domains().len()];
        generate_database(d, 0, &DbGenConfig::default(), &mut Prng::new(seed))
    }

    #[test]
    fn every_plan_realizes_to_nonempty_text() {
        for seed in 0..120u64 {
            let db = db(seed % 10);
            let mut rng = Prng::new(40_000 + seed);
            if let Some(plan) = sample_plan(&db, &SqlProfile::spider(), &mut rng) {
                let r = realize(&db, &plan, NlStyle::plain(), &mut rng);
                assert!(r.text.len() > 10, "{:?} -> {}", plan, r.text);
                assert!(r.text.ends_with('.') || r.text.ends_with('?'), "{}", r.text);
            }
        }
    }

    #[test]
    fn realization_is_deterministic() {
        let db = db(2);
        let mut r1 = Prng::new(9);
        let mut r2 = Prng::new(9);
        let p1 = sample_plan(&db, &SqlProfile::spider(), &mut r1).unwrap();
        let p2 = sample_plan(&db, &SqlProfile::spider(), &mut r2).unwrap();
        assert_eq!(
            realize(&db, &p1, NlStyle::plain(), &mut r1),
            realize(&db, &p2, NlStyle::plain(), &mut r2)
        );
    }

    #[test]
    fn knowledge_style_produces_evidence() {
        let mut produced = 0;
        for seed in 0..200u64 {
            let db = db(seed % 6);
            let mut rng = Prng::new(60_000 + seed);
            if let Some(plan) = sample_plan(&db, &SqlProfile::spider(), &mut rng) {
                let r = realize(&db, &plan, NlStyle::knowledge(), &mut rng);
                if !r.evidence.is_empty() {
                    produced += 1;
                    assert!(
                        r.text.contains("high")
                            || r.text.contains("low")
                            || r.text.contains("notable"),
                        "{}",
                        r.text
                    );
                    assert!(r.evidence[0].contains("means"));
                }
            }
        }
        assert!(
            produced > 20,
            "knowledge evidence produced only {produced} times"
        );
    }

    #[test]
    fn plain_style_never_produces_evidence() {
        for seed in 0..60u64 {
            let db = db(seed % 5);
            let mut rng = Prng::new(70_000 + seed);
            if let Some(plan) = sample_plan(&db, &SqlProfile::spider(), &mut rng) {
                let r = realize(&db, &plan, NlStyle::plain(), &mut rng);
                assert!(r.evidence.is_empty());
            }
        }
    }

    #[test]
    fn synonym_heavy_changes_surface_forms() {
        // with synonym_p = 1.0 at least some questions must differ from the
        // plain realization of the same plan
        let mut differs = 0;
        let mut total = 0;
        for seed in 0..60u64 {
            let db = db(seed % 5);
            let mut rng = Prng::new(80_000 + seed);
            if let Some(plan) = sample_plan(&db, &SqlProfile::spider(), &mut rng) {
                let mut ra = rng.fork(1);
                let mut rb = rng.fork(1);
                // fork with the same salt from clones so word-choice draws align
                let plain = realize(
                    &db,
                    &plan,
                    NlStyle {
                        synonym_p: 0.0,
                        ..NlStyle::plain()
                    },
                    &mut ra,
                );
                let syn = realize(&db, &plan, NlStyle::synonym_heavy(), &mut rb);
                total += 1;
                if plain.text != syn.text {
                    differs += 1;
                }
            }
        }
        assert!(
            differs * 3 > total,
            "synonyms changed only {differs}/{total} questions"
        );
    }

    #[test]
    fn realistic_style_drops_column_mentions() {
        // craft a plain Columns intent and verify the column word is absent
        let db = db(0); // retail
        for seed in 0..200u64 {
            let mut rng = Prng::new(90_000 + seed);
            if let Some(Plan::Simple(intent)) = sample_plan(&db, &SqlProfile::spider(), &mut rng) {
                if let Task::Columns(cols) = &intent.task {
                    if cols.len() == 1 && intent.join.is_none() {
                        let col_display = db.schema.column(cols[0]).display.clone();
                        let mut rr = rng.fork(3);
                        let r = realize(
                            &db,
                            &Plan::Simple(intent.clone()),
                            NlStyle::realistic(),
                            &mut rr,
                        );
                        assert!(
                            !r.text.contains(&format!("the {col_display} of")),
                            "column mention survived: {}",
                            r.text
                        );
                        return;
                    }
                }
            }
        }
        panic!("no suitable intent sampled");
    }
}
