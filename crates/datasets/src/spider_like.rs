//! Spider-like benchmark: cross-domain, multi-table databases with complex
//! queries, and the Spider evaluation convention — dev databases are
//! *unseen* during training, so models must generalize across schemas.

use crate::builder::{generate_databases, generate_examples};
use crate::nl_gen::NlStyle;
use crate::schema_gen::DbGenConfig;
use crate::sql_gen::SqlProfile;
use crate::types::{Family, SqlBenchmark};
use nli_core::{Language, Prng};

/// Configuration for the Spider-like builder.
#[derive(Debug, Clone, Copy)]
pub struct SpiderConfig {
    pub n_databases: usize,
    /// Databases reserved for the dev split (taken from the end).
    pub n_dev_databases: usize,
    pub n_train: usize,
    pub n_dev: usize,
    pub seed: u64,
    /// NL style (robustness variants override this).
    pub style: NlStyle,
}

impl Default for SpiderConfig {
    fn default() -> Self {
        // Scaled from Spider's 200 databases / 10,181 questions.
        SpiderConfig {
            n_databases: 40,
            n_dev_databases: 10,
            n_train: 300,
            n_dev: 150,
            seed: 0x5EED_0002,
            style: NlStyle::plain(),
        }
    }
}

/// Build the benchmark.
pub fn build(cfg: &SpiderConfig) -> SqlBenchmark {
    let mut rng = Prng::new(cfg.seed);
    let db_cfg = DbGenConfig {
        min_tables: 2,
        optional_col_p: 0.7,
        rows: (12, 40),
    };
    let databases = generate_databases(cfg.n_databases, &db_cfg, &mut rng);
    let train_dbs = cfg.n_databases - cfg.n_dev_databases.min(cfg.n_databases);
    let profile = SqlProfile::spider();
    let train = generate_examples(
        &databases,
        0..train_dbs.max(1),
        &profile,
        cfg.style,
        cfg.n_train,
        &mut rng,
    );
    let dev = generate_examples(
        &databases,
        train_dbs..cfg.n_databases,
        &profile,
        cfg.style,
        cfg.n_dev,
        &mut rng,
    );
    SqlBenchmark {
        name: "spider-like".into(),
        family: Family::CrossDomain,
        language: Language::English,
        databases,
        train,
        dev,
        dialogues: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SpiderConfig {
        SpiderConfig {
            n_databases: 13,
            n_dev_databases: 3,
            n_train: 60,
            n_dev: 30,
            ..Default::default()
        }
    }

    #[test]
    fn dev_databases_are_unseen_in_train() {
        let b = build(&small());
        let max_train_db = b.train.iter().map(|e| e.db).max().unwrap();
        let min_dev_db = b.dev.iter().map(|e| e.db).min().unwrap();
        assert!(max_train_db < 10);
        assert!(min_dev_db >= 10);
    }

    #[test]
    fn covers_multiple_domains() {
        let b = build(&small());
        assert!(b.domain_count() >= 10, "domains: {}", b.domain_count());
        assert!(b.tables_per_db() >= 2.0);
    }

    #[test]
    fn complex_shapes_appear_in_the_corpus() {
        let b = build(&SpiderConfig {
            n_train: 200,
            ..small()
        });
        let all: Vec<_> = b.train.iter().chain(&b.dev).collect();
        assert!(all.iter().any(|e| e.gold.select.from.len() > 1), "no joins");
        assert!(
            all.iter().any(|e| !e.gold.select.group_by.is_empty()),
            "no group-by"
        );
        assert!(
            all.iter().any(|e| e.gold.select.limit.is_some()),
            "no limits"
        );
    }

    #[test]
    fn average_complexity_exceeds_wikisql() {
        let s = build(&small());
        let w = crate::wikisql_like::build(&crate::wikisql_like::WikiSqlConfig {
            n_databases: 13,
            n_train: 60,
            n_dev: 30,
            ..Default::default()
        });
        let avg = |b: &SqlBenchmark| {
            let xs: Vec<u32> = b.dev.iter().map(|e| e.gold.complexity()).collect();
            xs.iter().sum::<u32>() as f64 / xs.len().max(1) as f64
        };
        assert!(
            avg(&s) > avg(&w),
            "spider {} should beat wikisql {}",
            avg(&s),
            avg(&w)
        );
    }
}
