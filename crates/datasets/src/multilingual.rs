//! Multilingual variants via deterministic pseudo-localization.
//!
//! CSpider/ViText2SQL/PortugueseSpider/PAUQ translate Spider's questions
//! while keeping schemas and SQL in English. The *structural* challenge is
//! that question surface forms stop overlapping schema names (and training
//! vocabulary). Pseudo-localization reproduces exactly that: every English
//! word maps deterministically to a language-flavoured token (a small real
//! dictionary for frequent words, syllable synthesis elsewhere), while
//! quoted database values are preserved — they must still match content.

use crate::types::{Family, SqlBenchmark, VisBenchmark};
use nli_core::Language;
use nli_nlu::{tokenize, TokenKind};

/// Deterministic word hash for syllable synthesis.
fn word_hash(word: &str, salt: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
    for b in word.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Frequent-word dictionaries per language (tiny but real, so the output
/// reads plausibly; everything else is synthesized).
fn dictionary(lang: Language) -> &'static [(&'static str, &'static str)] {
    match lang {
        Language::Chinese => &[
            ("how", "多少"),
            ("many", "个"),
            ("list", "列出"),
            ("show", "显示"),
            ("the", "的"),
            ("of", "的"),
            ("what", "什么"),
            ("is", "是"),
            ("average", "平均"),
            ("total", "总"),
            ("count", "数量"),
            ("each", "每个"),
            ("with", "有"),
            ("and", "和"),
            ("or", "或者"),
            ("name", "名字"),
            ("for", "为"),
            ("are", "是"),
            ("there", "那里"),
        ],
        Language::Vietnamese => &[
            ("how", "bao"),
            ("many", "nhiêu"),
            ("list", "liệt kê"),
            ("show", "hiển thị"),
            ("the", "các"),
            ("of", "của"),
            ("what", "gì"),
            ("is", "là"),
            ("average", "trung bình"),
            ("total", "tổng"),
            ("count", "đếm"),
            ("each", "mỗi"),
            ("with", "với"),
            ("and", "và"),
            ("or", "hoặc"),
            ("name", "tên"),
            ("for", "cho"),
            ("are", "là"),
            ("there", "đó"),
        ],
        Language::Portuguese => &[
            ("how", "quantos"),
            ("many", "muitos"),
            ("list", "liste"),
            ("show", "mostre"),
            ("the", "o"),
            ("of", "de"),
            ("what", "qual"),
            ("is", "é"),
            ("average", "média"),
            ("total", "total"),
            ("count", "conte"),
            ("each", "cada"),
            ("with", "com"),
            ("and", "e"),
            ("or", "ou"),
            ("name", "nome"),
            ("for", "para"),
            ("are", "são"),
            ("there", "lá"),
        ],
        Language::Russian => &[
            ("how", "сколько"),
            ("many", "много"),
            ("list", "перечисли"),
            ("show", "покажи"),
            ("the", "эти"),
            ("of", "из"),
            ("what", "что"),
            ("is", "есть"),
            ("average", "средний"),
            ("total", "общий"),
            ("count", "число"),
            ("each", "каждый"),
            ("with", "с"),
            ("and", "и"),
            ("or", "или"),
            ("name", "имя"),
            ("for", "для"),
            ("are", "есть"),
            ("there", "там"),
        ],
        Language::English => &[],
    }
}

/// Language-flavoured syllable pools for synthesized words.
fn syllables(lang: Language) -> &'static [&'static str] {
    match lang {
        Language::Chinese => &[
            "zh", "ang", "ing", "uan", "shi", "xia", "men", "gao", "lin", "hua",
        ],
        Language::Vietnamese => &[
            "ng", "uy", "ph", "tr", "anh", "uong", "iet", "ao", "inh", "em",
        ],
        Language::Portuguese => &[
            "ção", "inho", "ar", "os", "eira", "ade", "ento", "al", "ura", "ista",
        ],
        Language::Russian => &[
            "ов", "ский", "ина", "ать", "ник", "ост", "ель", "ка", "ич", "ное",
        ],
        Language::English => &[""],
    }
}

/// Translate one word deterministically.
fn translate_word(word: &str, lang: Language) -> String {
    if lang == Language::English {
        return word.to_string();
    }
    let lower = word.to_lowercase();
    if let Some((_, t)) = dictionary(lang).iter().find(|(en, _)| *en == lower) {
        return t.to_string();
    }
    // synthesize: 2-3 syllables chosen by the word's hash, so the same
    // English word always maps to the same pseudo-word.
    let pool = syllables(lang);
    let h = word_hash(&lower, lang as u64 + 1);
    let n = 2 + (h % 2) as usize;
    let mut out = String::new();
    for i in 0..n {
        out.push_str(pool[((h >> (i * 13)) % pool.len() as u64) as usize]);
    }
    out
}

/// Translate a question, keeping quoted values and numbers intact.
pub fn translate_question(text: &str, lang: Language) -> String {
    let mut parts = Vec::new();
    for tok in tokenize(text) {
        match tok.kind {
            TokenKind::Quoted => parts.push(format!("'{}'", tok.text)),
            TokenKind::Number => parts.push(tok.text),
            TokenKind::Word => parts.push(translate_word(&tok.text, lang)),
        }
    }
    parts.join(" ")
}

/// CSpider/ViText2SQL/PortugueseSpider/PAUQ-like: translate a Text-to-SQL
/// benchmark. Gold SQL and databases stay English, as in the real corpora.
pub fn translate(base: &SqlBenchmark, lang: Language) -> SqlBenchmark {
    let mut out = base.clone();
    out.name = format!("{}-{}", base.name, lang.name().to_lowercase());
    out.family = Family::Multilingual;
    out.language = lang;
    for ex in out.train.iter_mut().chain(out.dev.iter_mut()) {
        ex.question.text = translate_question(&ex.question.text, lang);
        ex.question.language = lang;
    }
    for d in out.dialogues.iter_mut() {
        for (q, _) in d.turns.iter_mut() {
            q.text = translate_question(&q.text, lang);
            q.language = lang;
        }
    }
    out
}

/// CNvBench-like: translate a Text-to-Vis benchmark.
pub fn translate_vis(base: &VisBenchmark, lang: Language) -> VisBenchmark {
    let mut out = base.clone();
    out.name = format!("{}-{}", base.name, lang.name().to_lowercase());
    out.family = Family::Multilingual;
    out.language = lang;
    for ex in out.train.iter_mut().chain(out.dev.iter_mut()) {
        ex.question.text = translate_question(&ex.question.text, lang);
        ex.question.language = lang;
    }
    for d in out.dialogues.iter_mut() {
        for (q, _) in d.turns.iter_mut() {
            q.text = translate_question(&q.text, lang);
            q.language = lang;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spider_like::{self, SpiderConfig};

    #[test]
    fn translation_is_deterministic_and_total() {
        let q = "List the names of singers with age greater than 30.";
        for lang in [
            Language::Chinese,
            Language::Vietnamese,
            Language::Portuguese,
            Language::Russian,
        ] {
            let a = translate_question(q, lang);
            let b = translate_question(q, lang);
            assert_eq!(a, b);
            assert_ne!(a, q);
            assert!(a.contains("30"), "numbers must survive: {a}");
        }
    }

    #[test]
    fn quoted_values_survive_translation() {
        let q = "Show products whose category is 'Tools' and price above 5.";
        let t = translate_question(q, Language::Chinese);
        assert!(t.contains("'Tools'"), "{t}");
    }

    #[test]
    fn english_is_identity_modulo_tokenization() {
        let q = "list the names of singers";
        assert_eq!(translate_question(q, Language::English), q);
    }

    #[test]
    fn same_word_same_pseudo_word() {
        let a = translate_question("singers singers", Language::Vietnamese);
        let parts: Vec<&str> = a.split_whitespace().collect();
        assert_eq!(parts[0], parts[1]);
    }

    #[test]
    fn benchmark_translation_keeps_gold_sql() {
        let base = spider_like::build(&SpiderConfig {
            n_databases: 13,
            n_dev_databases: 3,
            n_train: 20,
            n_dev: 20,
            ..Default::default()
        });
        let zh = translate(&base, Language::Chinese);
        assert_eq!(zh.language, Language::Chinese);
        assert_eq!(zh.family, Family::Multilingual);
        for (a, b) in base.dev.iter().zip(&zh.dev) {
            assert_eq!(a.gold, b.gold);
            assert_eq!(b.question.language, Language::Chinese);
            assert_ne!(a.question.text, b.question.text);
        }
    }
}
