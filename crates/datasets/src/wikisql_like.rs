//! WikiSQL-like benchmark: a very large collection of *single-table*
//! databases with simple aggregate/condition queries — the shape of Zhong
//! et al.'s 80k-question corpus over 26k Wikipedia tables.

use crate::builder::{generate_databases, generate_examples};
use crate::nl_gen::NlStyle;
use crate::schema_gen::DbGenConfig;
use crate::sql_gen::SqlProfile;
use crate::types::{Family, SqlBenchmark};
use nli_core::{Language, Prng};

/// Configuration for the WikiSQL-like builder.
#[derive(Debug, Clone, Copy)]
pub struct WikiSqlConfig {
    pub n_databases: usize,
    pub n_train: usize,
    pub n_dev: usize,
    pub seed: u64,
}

impl Default for WikiSqlConfig {
    fn default() -> Self {
        // Scaled from the paper's 80,654 / 26,521 to dev-loop size while
        // keeping the queries-per-table ratio (~3).
        WikiSqlConfig {
            n_databases: 120,
            n_train: 260,
            n_dev: 120,
            seed: 0x5EED_0001,
        }
    }
}

/// Build the benchmark. Tables are single-table databases (the WikiSQL
/// signature); train and dev share tables *types* but not examples, like
/// the original's random split.
pub fn build(cfg: &WikiSqlConfig) -> SqlBenchmark {
    let mut rng = Prng::new(cfg.seed);
    let db_cfg = DbGenConfig {
        min_tables: 1,
        optional_col_p: 0.6,
        rows: (8, 25),
    };
    // Force single-table: generate, then truncate each schema to its first
    // table (domain templates put the most self-contained table first).
    let mut databases = generate_databases(cfg.n_databases, &db_cfg, &mut rng);
    for db in &mut databases {
        db.schema.tables.truncate(1);
        db.schema.foreign_keys.clear();
        db.data.truncate(1);
    }
    let half = cfg.n_databases / 2;
    let profile = SqlProfile::wikisql();
    let train = generate_examples(
        &databases,
        0..half.max(1),
        &profile,
        NlStyle::plain(),
        cfg.n_train,
        &mut rng,
    );
    let dev = generate_examples(
        &databases,
        half..cfg.n_databases,
        &profile,
        NlStyle::plain(),
        cfg.n_dev,
        &mut rng,
    );
    SqlBenchmark {
        name: "wikisql-like".into(),
        family: Family::CrossDomain,
        language: Language::English,
        databases,
        train,
        dev,
        dialogues: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_databases_are_single_table() {
        let b = build(&WikiSqlConfig {
            n_databases: 20,
            n_train: 30,
            n_dev: 15,
            ..Default::default()
        });
        assert!(b.databases.iter().all(|d| d.schema.tables.len() == 1));
        assert!((b.tables_per_db() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn queries_are_single_table_simple() {
        let b = build(&WikiSqlConfig {
            n_databases: 20,
            n_train: 40,
            n_dev: 20,
            ..Default::default()
        });
        for ex in b.train.iter().chain(&b.dev) {
            assert_eq!(ex.gold.select.from.len(), 1);
            assert!(ex.gold.select.group_by.is_empty());
            assert!(ex.gold.compound.is_none());
        }
    }

    #[test]
    fn splits_use_disjoint_database_halves() {
        let b = build(&WikiSqlConfig {
            n_databases: 10,
            n_train: 20,
            n_dev: 10,
            ..Default::default()
        });
        assert!(b.train.iter().all(|e| e.db < 5));
        assert!(b.dev.iter().all(|e| e.db >= 5));
    }

    #[test]
    fn build_is_deterministic() {
        let cfg = WikiSqlConfig {
            n_databases: 8,
            n_train: 10,
            n_dev: 5,
            ..Default::default()
        };
        let a = build(&cfg);
        let b = build(&cfg);
        assert_eq!(a.train.len(), b.train.len());
        for (x, y) in a.train.iter().zip(&b.train) {
            assert_eq!(x.question.text, y.question.text);
        }
    }
}
