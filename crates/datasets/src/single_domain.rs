//! Single-domain benchmarks (ATIS/GeoQuery/Academic-era): one database, one
//! domain, simpler query shapes — the proof-of-concept stage of both tasks.

use crate::builder::generate_examples;
use crate::domains;
use crate::nl_gen::NlStyle;
use crate::schema_gen::{generate_database, DbGenConfig};
use crate::sql_gen::SqlProfile;
use crate::types::{Family, SqlBenchmark};
use nli_core::{Language, Prng};

/// Configuration for a single-domain benchmark.
#[derive(Debug, Clone, Copy)]
pub struct SingleDomainConfig {
    pub domain: &'static str,
    pub n_train: usize,
    pub n_dev: usize,
    pub seed: u64,
}

impl Default for SingleDomainConfig {
    fn default() -> Self {
        // aviation echoes ATIS's flight-information focus.
        SingleDomainConfig {
            domain: "aviation",
            n_train: 120,
            n_dev: 60,
            seed: 0x5EED_0003,
        }
    }
}

/// Build a single-domain benchmark over one fully-included database.
pub fn build(cfg: &SingleDomainConfig) -> SqlBenchmark {
    let domain =
        domains::domain(cfg.domain).unwrap_or_else(|| panic!("unknown domain: {}", cfg.domain));
    let mut rng = Prng::new(cfg.seed);
    let db_cfg = DbGenConfig {
        min_tables: domain.tables.len(),
        optional_col_p: 1.0,
        rows: (20, 50),
    };
    let databases = vec![generate_database(domain, 0, &db_cfg, &mut rng)];
    let profile = SqlProfile::early();
    let train = generate_examples(
        &databases,
        0..1,
        &profile,
        NlStyle::plain(),
        cfg.n_train,
        &mut rng,
    );
    let dev = generate_examples(
        &databases,
        0..1,
        &profile,
        NlStyle::plain(),
        cfg.n_dev,
        &mut rng,
    );
    SqlBenchmark {
        name: format!("{}-single", cfg.domain),
        family: Family::SingleDomain,
        language: Language::English,
        databases,
        train,
        dev,
        dialogues: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_database_one_domain() {
        let b = build(&SingleDomainConfig {
            n_train: 20,
            n_dev: 10,
            ..Default::default()
        });
        assert_eq!(b.databases.len(), 1);
        assert_eq!(b.domain_count(), 1);
        assert_eq!(b.family, Family::SingleDomain);
        assert!(b.example_count() >= 25);
    }

    #[test]
    fn no_nested_or_compound_queries() {
        let b = build(&SingleDomainConfig {
            n_train: 60,
            n_dev: 20,
            ..Default::default()
        });
        for ex in b.train.iter().chain(&b.dev) {
            assert!(ex.gold.compound.is_none());
        }
    }

    #[test]
    fn different_domains_build() {
        for d in ["retail", "music", "geography"] {
            let b = build(&SingleDomainConfig {
                domain: d,
                n_train: 10,
                n_dev: 5,
                seed: 7,
            });
            assert_eq!(b.databases[0].schema.domain, d);
        }
    }

    #[test]
    #[should_panic(expected = "unknown domain")]
    fn unknown_domain_panics() {
        build(&SingleDomainConfig {
            domain: "atlantis",
            n_train: 1,
            n_dev: 1,
            seed: 1,
        });
    }
}
