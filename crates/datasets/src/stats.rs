//! Dataset statistics for the Table 1 reproduction.

use crate::types::{SqlBenchmark, VisBenchmark};

/// One row of the Table 1 reproduction: measured statistics of a generated
/// corpus, alongside the paper-reported statistics of the dataset it
/// imitates.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    pub name: String,
    pub family: String,
    pub language: String,
    pub n_query: usize,
    pub n_database: usize,
    pub n_domain: usize,
    pub tables_per_db: f64,
}

impl DatasetStats {
    pub fn of_sql(b: &SqlBenchmark) -> DatasetStats {
        DatasetStats {
            name: b.name.clone(),
            family: b.family.name().to_string(),
            language: b.language.name().to_string(),
            n_query: b.example_count(),
            n_database: b.databases.len(),
            n_domain: b.domain_count(),
            tables_per_db: b.tables_per_db(),
        }
    }

    pub fn of_vis(b: &VisBenchmark) -> DatasetStats {
        DatasetStats {
            name: b.name.clone(),
            family: b.family.name().to_string(),
            language: b.language.name().to_string(),
            n_query: b.example_count(),
            n_database: b.databases.len(),
            n_domain: b.domain_count(),
            tables_per_db: b.tables_per_db(),
        }
    }

    /// Fixed-width row for the harness output.
    pub fn row(&self) -> String {
        format!(
            "{:<28} {:>7} {:>6} {:>7} {:>6.1}  {:<10} {}",
            self.name,
            self.n_query,
            self.n_database,
            self.n_domain,
            self.tables_per_db,
            self.language,
            self.family
        )
    }

    /// Header matching [`DatasetStats::row`].
    pub fn header() -> String {
        format!(
            "{:<28} {:>7} {:>6} {:>7} {:>6}  {:<10} {}",
            "Dataset", "#Query", "#DB", "#Domain", "#T/DB", "Language", "Main Features"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wikisql_like::{self, WikiSqlConfig};

    #[test]
    fn stats_reflect_the_benchmark() {
        let b = wikisql_like::build(&WikiSqlConfig {
            n_databases: 10,
            n_train: 20,
            n_dev: 10,
            ..Default::default()
        });
        let s = DatasetStats::of_sql(&b);
        assert_eq!(s.n_database, 10);
        assert_eq!(s.n_query, b.example_count());
        assert!((s.tables_per_db - 1.0).abs() < 1e-9);
        assert_eq!(s.language, "English");
    }

    #[test]
    fn row_and_header_align() {
        let b = wikisql_like::build(&WikiSqlConfig {
            n_databases: 4,
            n_train: 5,
            n_dev: 5,
            ..Default::default()
        });
        let s = DatasetStats::of_sql(&b);
        let row = s.row();
        assert!(row.contains("wikisql-like"));
        assert!(DatasetStats::header().contains("#Query"));
    }
}
