//! BIRD-like benchmark: knowledge-grounded questions over larger databases.
//!
//! BIRD's signature challenges are (1) questions whose conditions need
//! *external knowledge* to resolve ("premium products" → `price > 250`) and
//! (2) value-heavy databases where grounding matters. Here every
//! knowledge-phrased condition carries a BIRD-style evidence string, and
//! databases are generated with several times more rows than the
//! Spider-like corpus.

use crate::builder::{generate_databases, generate_examples};
use crate::nl_gen::NlStyle;
use crate::schema_gen::DbGenConfig;
use crate::sql_gen::SqlProfile;
use crate::types::{Family, SqlBenchmark};
use nli_core::{Language, Prng};

/// Configuration for the BIRD-like builder.
#[derive(Debug, Clone, Copy)]
pub struct BirdConfig {
    pub n_databases: usize,
    pub n_dev_databases: usize,
    pub n_train: usize,
    pub n_dev: usize,
    pub seed: u64,
}

impl Default for BirdConfig {
    fn default() -> Self {
        BirdConfig {
            n_databases: 16,
            n_dev_databases: 4,
            n_train: 150,
            n_dev: 80,
            seed: 0x5EED_0004,
        }
    }
}

/// Build the benchmark.
pub fn build(cfg: &BirdConfig) -> SqlBenchmark {
    let mut rng = Prng::new(cfg.seed);
    // "vast databases": many more rows than the Spider-like generator uses.
    let db_cfg = DbGenConfig {
        min_tables: 2,
        optional_col_p: 0.8,
        rows: (80, 200),
    };
    let databases = generate_databases(cfg.n_databases, &db_cfg, &mut rng);
    let train_dbs = cfg.n_databases - cfg.n_dev_databases.min(cfg.n_databases);
    // knowledge-heavy shape profile: every question filters, often twice,
    // so the concept-verbalization channel has numeric thresholds to bite on.
    let profile = SqlProfile {
        p_where: 1.0,
        p_second_cond: 0.55,
        p_nested: 0.05,
        p_compound: 0.0,
        ..SqlProfile::spider()
    };
    let style = NlStyle::knowledge();
    let train = generate_examples(
        &databases,
        0..train_dbs.max(1),
        &profile,
        style,
        cfg.n_train,
        &mut rng,
    );
    let dev = generate_examples(
        &databases,
        train_dbs..cfg.n_databases,
        &profile,
        style,
        cfg.n_dev,
        &mut rng,
    );
    SqlBenchmark {
        name: "bird-like".into(),
        family: Family::KnowledgeGrounding,
        language: Language::English,
        databases,
        train,
        dev,
        dialogues: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BirdConfig {
        BirdConfig {
            n_databases: 6,
            n_dev_databases: 2,
            n_train: 40,
            n_dev: 30,
            ..Default::default()
        }
    }

    #[test]
    fn a_good_share_of_examples_carry_evidence() {
        let b = build(&small());
        let with_ev = b
            .dev
            .iter()
            .filter(|e| e.question.evidence.is_some())
            .count();
        assert!(
            with_ev * 4 >= b.dev.len(),
            "only {with_ev}/{} dev examples have evidence",
            b.dev.len()
        );
    }

    #[test]
    fn databases_are_larger_than_spider_like() {
        let b = build(&small());
        let avg_rows: f64 = b
            .databases
            .iter()
            .map(|d| d.row_count() as f64)
            .sum::<f64>()
            / b.databases.len() as f64;
        assert!(avg_rows > 150.0, "avg rows {avg_rows}");
    }

    #[test]
    fn evidence_mentions_the_concept_definition() {
        let b = build(&small());
        let ex = b
            .dev
            .iter()
            .chain(&b.train)
            .find(|e| e.question.evidence.is_some())
            .expect("some example has evidence");
        let ev = ex.question.evidence.as_ref().unwrap();
        assert!(ev.contains("means"), "{ev}");
    }

    #[test]
    fn family_is_knowledge_grounding() {
        let b = build(&small());
        assert_eq!(b.family, Family::KnowledgeGrounding);
    }
}
