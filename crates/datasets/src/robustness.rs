//! Robustness variants of the Spider-like benchmark, mirroring the
//! perturbation families of Spider-SYN, Spider-realistic, and Spider-DK.

use crate::nl_gen::NlStyle;
use crate::spider_like::{self, SpiderConfig};
use crate::types::{Family, SqlBenchmark};
use nli_core::Prng;
use nli_nlu::{tokenize, SynonymLexicon, TokenKind};

/// Spider-SYN-like: post-hoc synonym substitution on dev questions. Words
/// that name schema elements are swapped for lexicon synonyms with
/// probability `p`, which removes the exact-overlap signal schema linkers
/// lean on — the attack Gan et al. (2021) formalized.
pub fn synonymize(base: &SqlBenchmark, p: f64, seed: u64) -> SqlBenchmark {
    let lex = SynonymLexicon::default_english();
    let mut rng = Prng::new(seed);
    let mut out = base.clone();
    out.name = format!("{}-syn", base.name);
    out.family = Family::Robustness;
    for ex in out.dev.iter_mut() {
        let db = &base.databases[ex.db];
        // words that appear in any schema identifier are substitution targets
        let schema_words: std::collections::HashSet<String> = db
            .schema
            .tables
            .iter()
            .flat_map(|t| {
                t.columns
                    .iter()
                    .flat_map(|c| c.display.split_whitespace())
                    .chain(t.display.split_whitespace())
                    .map(|w| w.to_lowercase())
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut new_words = Vec::new();
        for tok in tokenize(&ex.question.text) {
            if tok.kind == TokenKind::Quoted {
                new_words.push(format!("'{}'", tok.text));
                continue;
            }
            let stemmed = nli_nlu::stem(&tok.text);
            let is_schema_word = schema_words.contains(&tok.text)
                || schema_words.iter().any(|w| nli_nlu::stem(w) == stemmed);
            if is_schema_word && rng.chance(p) {
                let syns = lex.synonyms_of(&tok.text);
                if !syns.is_empty() {
                    new_words.push(syns[rng.below(syns.len())].to_string());
                    continue;
                }
                // try the stemmed form ("singers" -> synonyms of "singer")
                let syns = lex.synonyms_of(&stemmed);
                if !syns.is_empty() {
                    new_words.push(syns[rng.below(syns.len())].to_string());
                    continue;
                }
            }
            new_words.push(tok.text);
        }
        ex.question.text = new_words.join(" ");
    }
    out
}

/// Spider-realistic-like: rebuild the corpus with explicit column mentions
/// removed from questions. Plans (and therefore gold SQL) are identical to
/// the base configuration because the plan RNG stream is independent of the
/// NL style.
pub fn realistic(cfg: &SpiderConfig) -> SqlBenchmark {
    let mut b = spider_like::build(&SpiderConfig {
        style: NlStyle::realistic(),
        ..*cfg
    });
    b.name = "spider-like-realistic".into();
    b.family = Family::Robustness;
    b
}

/// Spider-DK-like: knowledge-requiring phrasing with the evidence
/// *withheld*, so models must supply domain knowledge themselves.
pub fn domain_knowledge(cfg: &SpiderConfig) -> SqlBenchmark {
    let mut b = spider_like::build(&SpiderConfig {
        style: NlStyle::knowledge(),
        ..*cfg
    });
    b.name = "spider-like-dk".into();
    b.family = Family::Robustness;
    for ex in b.train.iter_mut().chain(b.dev.iter_mut()) {
        ex.question.evidence = None;
    }
    b
}

/// Spider-CG/Spider-SSP-like compositional-generalization split (§6.5 of
/// the survey): the train split keeps only *atomic* queries (at most one
/// optional feature: a condition, OR an ordering, OR a grouping — never a
/// combination), while dev keeps only *compositions* (two or more features
/// together). A model that merely memorizes whole shapes fails on dev;
/// a model that composes known concepts generalizes.
pub fn compositional_split(base: &SqlBenchmark) -> SqlBenchmark {
    fn feature_count(q: &nli_sql::Query) -> usize {
        let s = &q.select;
        let mut n = 0;
        if s.where_clause.is_some() {
            n += 1;
        }
        if !s.order_by.is_empty() || s.limit.is_some() {
            n += 1;
        }
        if !s.group_by.is_empty() {
            n += 1;
        }
        if s.from.len() > 1 {
            n += 1;
        }
        if q.compound.is_some() {
            n += 1;
        }
        n
    }
    let mut out = base.clone();
    out.name = format!("{}-cg", base.name);
    out.family = Family::Robustness;
    // atoms come from the full corpus (train + dev questions over train DBs)
    out.train = base
        .train
        .iter()
        .filter(|e| feature_count(&e.gold) <= 1)
        .cloned()
        .collect();
    out.dev = base
        .dev
        .iter()
        .filter(|e| feature_count(&e.gold) >= 2)
        .cloned()
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> SpiderConfig {
        SpiderConfig {
            n_databases: 13,
            n_dev_databases: 3,
            n_train: 40,
            n_dev: 40,
            ..Default::default()
        }
    }

    #[test]
    fn synonymize_changes_questions_but_not_gold() {
        let base = spider_like::build(&base_cfg());
        let syn = synonymize(&base, 1.0, 42);
        let mut changed = 0;
        for (a, b) in base.dev.iter().zip(&syn.dev) {
            assert_eq!(a.gold, b.gold, "gold SQL must be untouched");
            if a.question.text != b.question.text {
                changed += 1;
            }
        }
        assert!(
            changed * 2 >= base.dev.len(),
            "only {changed}/{} questions perturbed",
            base.dev.len()
        );
        assert_eq!(syn.family, Family::Robustness);
    }

    #[test]
    fn synonymize_preserves_quoted_values() {
        let base = spider_like::build(&base_cfg());
        let syn = synonymize(&base, 1.0, 42);
        for (a, b) in base.dev.iter().zip(&syn.dev) {
            // every quoted literal of the original survives verbatim
            for tok in tokenize(&a.question.text) {
                if tok.kind == TokenKind::Quoted {
                    assert!(
                        b.question.text.contains(&tok.text),
                        "literal '{}' lost in: {}",
                        tok.text,
                        b.question.text
                    );
                }
            }
        }
    }

    #[test]
    fn realistic_keeps_gold_identical_to_base() {
        let cfg = base_cfg();
        let base = spider_like::build(&cfg);
        let real = realistic(&cfg);
        assert_eq!(base.dev.len(), real.dev.len());
        for (a, b) in base.dev.iter().zip(&real.dev) {
            assert_eq!(a.gold, b.gold);
        }
    }

    #[test]
    fn dk_strips_evidence() {
        let dk = domain_knowledge(&base_cfg());
        assert!(dk.dev.iter().all(|e| e.question.evidence.is_none()));
        // ...but the questions still contain concept words somewhere
        let conceptual = dk
            .dev
            .iter()
            .filter(|e| e.question.text.contains("high") || e.question.text.contains("low"))
            .count();
        assert!(conceptual > 0, "no knowledge-phrased questions generated");
    }

    #[test]
    fn compositional_split_separates_atoms_from_compositions() {
        let base = spider_like::build(&SpiderConfig {
            n_databases: 13,
            n_dev_databases: 3,
            n_train: 120,
            n_dev: 120,
            ..Default::default()
        });
        let cg = compositional_split(&base);
        assert!(!cg.train.is_empty() && !cg.dev.is_empty());
        for e in &cg.dev {
            let s = &e.gold.select;
            let features = usize::from(s.where_clause.is_some())
                + usize::from(!s.order_by.is_empty() || s.limit.is_some())
                + usize::from(!s.group_by.is_empty())
                + usize::from(s.from.len() > 1)
                + usize::from(e.gold.compound.is_some());
            assert!(features >= 2, "dev example is atomic: {}", e.gold);
        }
    }
}
