//! Gold-program sampling.
//!
//! Examples are generated *intent-first*: we sample a structured [`Plan`]
//! (what the user wants), then derive both the gold SQL ([`plan_to_query`])
//! and the natural-language question ([`crate::nl_gen::realize`]) from it.
//! This guarantees (question, SQL) faithfulness by construction while
//! keeping the two surfaces independent enough that parsing is a real
//! problem (the NL channel adds synonym noise, drops explicit column
//! mentions, etc.).
//!
//! Conditions are *value-grounded*: literals are drawn from the actual
//! database content, so execution-based evaluation is non-trivial and
//! BIRD-style content challenges are expressible.

use nli_core::{ColumnRef, DataType, Database, Prng, Value};
use nli_sql::{
    AggFunc, BinOp, ColName, Expr, JoinCond, OrderItem, Query, Select, SelectItem, SetOp, TableRef,
};

/// Comparison flavor of a sampled condition.
#[derive(Debug, Clone, PartialEq)]
pub enum CondOp {
    /// `col <op> literal`.
    Cmp(BinOp),
    /// `col BETWEEN a AND b` (the second literal rides in `value2`).
    Between,
    /// `col LIKE '%sub%'`.
    Contains,
    /// `col = (SELECT MAX/MIN(col) FROM table)` — superlative by scalar
    /// subquery.
    EqExtreme(AggFunc),
}

/// One grounded condition.
#[derive(Debug, Clone, PartialEq)]
pub struct CondSpec {
    pub col: ColumnRef,
    pub op: CondOp,
    pub value: Value,
    /// Upper bound for `Between`.
    pub value2: Option<Value>,
}

/// What the SELECT computes.
#[derive(Debug, Clone, PartialEq)]
pub enum Task {
    /// Plain projection of 1–2 columns.
    Columns(Vec<ColumnRef>),
    /// Single aggregate; `arg = None` means `COUNT(*)`.
    Agg {
        func: AggFunc,
        arg: Option<ColumnRef>,
    },
    /// `SELECT key, AGG(arg) ... GROUP BY key` with optional
    /// `HAVING COUNT(*) > n`.
    GroupAgg {
        key: ColumnRef,
        func: AggFunc,
        arg: Option<ColumnRef>,
        having_min_count: Option<i64>,
    },
}

/// Ordering request.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSpec {
    /// `None` orders by the aggregate output (group mode only).
    pub col: Option<ColumnRef>,
    pub desc: bool,
}

/// A join from the main (child) table to a parent table over a declared FK.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinSpec {
    pub parent: usize,
    /// FK column on the child side.
    pub fk_col: ColumnRef,
    /// PK column on the parent side.
    pk_col: ColumnRef,
}

/// The single-SELECT intent.
#[derive(Debug, Clone, PartialEq)]
pub struct Intent {
    pub main: usize,
    pub join: Option<JoinSpec>,
    pub task: Task,
    pub conds: Vec<CondSpec>,
    pub order: Option<OrderSpec>,
    pub limit: Option<u64>,
    pub distinct: bool,
}

/// A full sampled plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    Simple(Intent),
    /// `SELECT col FROM outer WHERE id [NOT] IN
    ///  (SELECT fk FROM child [WHERE inner_cond])`
    Nested {
        outer: usize,
        select_col: ColumnRef,
        child: usize,
        fk_col: ColumnRef,
        negated: bool,
        inner_cond: Option<CondSpec>,
    },
    /// `SELECT col FROM t WHERE a UNION/INTERSECT/EXCEPT SELECT col FROM t
    ///  WHERE b`
    Compound {
        table: usize,
        col: ColumnRef,
        left: CondSpec,
        right: CondSpec,
        op: SetOp,
    },
}

/// Shape-frequency profile of a benchmark family.
#[derive(Debug, Clone, Copy)]
pub struct SqlProfile {
    pub p_join: f64,
    pub p_agg: f64,
    pub p_group: f64,
    pub p_where: f64,
    pub p_second_cond: f64,
    pub p_or: f64,
    pub p_order: f64,
    pub p_limit_given_order: f64,
    pub p_nested: f64,
    pub p_compound: f64,
    pub p_having: f64,
    pub p_distinct: f64,
    pub p_superlative: f64,
    pub p_two_cols: f64,
}

impl SqlProfile {
    /// WikiSQL-class: single table, one aggregate at most, simple
    /// conditions, no ordering/grouping (the original WikiSQL grammar).
    pub fn wikisql() -> SqlProfile {
        SqlProfile {
            p_join: 0.0,
            p_agg: 0.45,
            p_group: 0.0,
            p_where: 0.85,
            p_second_cond: 0.25,
            p_or: 0.0,
            p_order: 0.0,
            p_limit_given_order: 0.0,
            p_nested: 0.0,
            p_compound: 0.0,
            p_having: 0.0,
            p_distinct: 0.0,
            p_superlative: 0.0,
            p_two_cols: 0.15,
        }
    }

    /// Spider-class: joins, grouping, ordering, nesting, set operators.
    pub fn spider() -> SqlProfile {
        SqlProfile {
            p_join: 0.40,
            p_agg: 0.30,
            p_group: 0.30,
            p_where: 0.65,
            p_second_cond: 0.30,
            p_or: 0.12,
            p_order: 0.35,
            p_limit_given_order: 0.55,
            p_nested: 0.10,
            p_compound: 0.06,
            p_having: 0.30,
            p_distinct: 0.12,
            p_superlative: 0.12,
            p_two_cols: 0.30,
        }
    }

    /// Single-domain/early-era: simpler than Spider, no nesting.
    pub fn early() -> SqlProfile {
        SqlProfile {
            p_nested: 0.0,
            p_compound: 0.0,
            p_join: 0.2,
            ..SqlProfile::spider()
        }
    }
}

/// Sample a plan for `db`, or `None` when the schema can't support the drawn
/// shape (caller retries with fresh randomness).
pub fn sample_plan(db: &Database, profile: &SqlProfile, rng: &mut Prng) -> Option<Plan> {
    // occasionally a nested or compound query
    if rng.chance(profile.p_nested) {
        if let Some(p) = sample_nested(db, rng) {
            return Some(p);
        }
    }
    if rng.chance(profile.p_compound) {
        if let Some(p) = sample_compound(db, rng) {
            return Some(p);
        }
    }
    sample_simple(db, profile, rng).map(Plan::Simple)
}

fn tables_with_rows(db: &Database) -> Vec<usize> {
    (0..db.schema.tables.len())
        .filter(|&t| !db.rows(t).is_empty())
        .collect()
}

fn sample_simple(db: &Database, profile: &SqlProfile, rng: &mut Prng) -> Option<Intent> {
    let candidates = tables_with_rows(db);
    if candidates.is_empty() {
        return None;
    }
    let main = *rng.pick(&candidates);

    // join?
    let join = if rng.chance(profile.p_join) {
        db.schema
            .foreign_keys
            .iter()
            .filter(|fk| fk.from.table == main)
            .map(|fk| JoinSpec {
                parent: fk.to.table,
                fk_col: fk.from,
                pk_col: fk.to,
            })
            .collect::<Vec<_>>()
            .first()
            .copied()
    } else {
        None
    };

    let scope_tables: Vec<usize> = match &join {
        Some(j) => vec![main, j.parent],
        None => vec![main],
    };

    // task
    let task = if rng.chance(profile.p_group) {
        let key = pick_group_key(db, &scope_tables, rng)?;
        let (func, arg) = pick_aggregate(db, &scope_tables, rng);
        let having_min_count = if rng.chance(profile.p_having) {
            Some(rng.range(1, 3))
        } else {
            None
        };
        Task::GroupAgg {
            key,
            func,
            arg,
            having_min_count,
        }
    } else if rng.chance(profile.p_agg) {
        let (func, arg) = pick_aggregate(db, &scope_tables, rng);
        Task::Agg { func, arg }
    } else {
        let mut cols = vec![pick_display_col(db, &scope_tables, rng)?];
        if rng.chance(profile.p_two_cols) {
            if let Some(c2) = pick_display_col(db, &scope_tables, rng) {
                if c2 != cols[0] {
                    cols.push(c2);
                }
            }
        }
        Task::Columns(cols)
    };

    // conditions
    let mut conds = Vec::new();
    if rng.chance(profile.p_where) {
        if let Some(c) = sample_cond(db, &scope_tables, rng) {
            conds.push(c);
        }
        if !conds.is_empty() && rng.chance(profile.p_second_cond) {
            if let Some(c2) = sample_cond(db, &scope_tables, rng) {
                if c2.col != conds[0].col {
                    conds.push(c2);
                }
            }
        }
    }
    // superlative condition (scalar subquery) only for plain projections
    if matches!(task, Task::Columns(_)) && rng.chance(profile.p_superlative) {
        if let Some(col) = pick_numeric_col(db, &[main], rng) {
            let func = if rng.chance(0.5) {
                AggFunc::Max
            } else {
                AggFunc::Min
            };
            conds.push(CondSpec {
                col,
                op: CondOp::EqExtreme(func),
                value: Value::Null,
                value2: None,
            });
        }
    }

    // ordering
    let order = if rng.chance(profile.p_order) {
        match &task {
            Task::GroupAgg { .. } => Some(OrderSpec {
                col: None,
                desc: rng.chance(0.7),
            }),
            Task::Agg { .. } => None,
            Task::Columns(_) => pick_orderable_col(db, &scope_tables, rng).map(|col| OrderSpec {
                col: Some(col),
                desc: rng.chance(0.5),
            }),
        }
    } else {
        None
    };
    let limit = match &order {
        Some(_) if rng.chance(profile.p_limit_given_order) => Some(rng.range(1, 5) as u64),
        _ => None,
    };
    let distinct = matches!(task, Task::Columns(_)) && rng.chance(profile.p_distinct);

    Some(Intent {
        main,
        join,
        task,
        conds,
        order,
        limit,
        distinct,
    })
}

fn sample_nested(db: &Database, rng: &mut Prng) -> Option<Plan> {
    // need an FK child -> outer
    let fks: Vec<_> = db
        .schema
        .foreign_keys
        .iter()
        .filter(|fk| !db.rows(fk.from.table).is_empty() && !db.rows(fk.to.table).is_empty())
        .collect();
    if fks.is_empty() {
        return None;
    }
    let fk = *rng.pick(&fks);
    let outer = fk.to.table;
    let select_col = pick_display_col(db, &[outer], rng)?;
    let inner_cond = if rng.chance(0.6) {
        sample_cond(db, &[fk.from.table], rng)
    } else {
        None
    };
    Some(Plan::Nested {
        outer,
        select_col,
        child: fk.from.table,
        fk_col: fk.from,
        negated: rng.chance(0.4),
        inner_cond,
    })
}

fn sample_compound(db: &Database, rng: &mut Prng) -> Option<Plan> {
    let candidates = tables_with_rows(db);
    if candidates.is_empty() {
        return None;
    }
    let table = *rng.pick(&candidates);
    let col = pick_display_col(db, &[table], rng)?;
    let left = sample_cond(db, &[table], rng)?;
    let right = sample_cond(db, &[table], rng)?;
    if left.col == right.col && left.value == right.value {
        return None;
    }
    let op = match rng.below(3) {
        0 => SetOp::Union,
        1 => SetOp::Intersect,
        _ => SetOp::Except,
    };
    Some(Plan::Compound {
        table,
        col,
        left,
        right,
        op,
    })
}

/// A column worth projecting: text preferred, any non-PK otherwise.
fn pick_display_col(db: &Database, tables: &[usize], rng: &mut Prng) -> Option<ColumnRef> {
    let mut text = Vec::new();
    let mut other = Vec::new();
    for &t in tables {
        for (ci, c) in db.schema.tables[t].columns.iter().enumerate() {
            let r = ColumnRef {
                table: t,
                column: ci,
            };
            if c.primary_key || is_fk_col(db, r) {
                continue;
            }
            if c.dtype == DataType::Text {
                text.push(r);
            } else {
                other.push(r);
            }
        }
    }
    if !text.is_empty() && (other.is_empty() || rng.chance(0.75)) {
        Some(*rng.pick(&text))
    } else if !other.is_empty() {
        Some(*rng.pick(&other))
    } else {
        None
    }
}

fn is_fk_col(db: &Database, r: ColumnRef) -> bool {
    db.schema.foreign_keys.iter().any(|fk| fk.from == r)
}

/// A numeric column for aggregates/superlatives/order.
fn pick_numeric_col(db: &Database, tables: &[usize], rng: &mut Prng) -> Option<ColumnRef> {
    let mut nums = Vec::new();
    for &t in tables {
        for (ci, c) in db.schema.tables[t].columns.iter().enumerate() {
            let r = ColumnRef {
                table: t,
                column: ci,
            };
            if c.dtype.is_numeric() && !c.primary_key && !is_fk_col(db, r) {
                nums.push(r);
            }
        }
    }
    if nums.is_empty() {
        None
    } else {
        Some(*rng.pick(&nums))
    }
}

fn pick_orderable_col(db: &Database, tables: &[usize], rng: &mut Prng) -> Option<ColumnRef> {
    let mut cols = Vec::new();
    for &t in tables {
        for (ci, c) in db.schema.tables[t].columns.iter().enumerate() {
            let r = ColumnRef {
                table: t,
                column: ci,
            };
            if c.dtype.is_ordered() && !c.primary_key && !is_fk_col(db, r) {
                cols.push(r);
            }
        }
    }
    if cols.is_empty() {
        None
    } else {
        Some(*rng.pick(&cols))
    }
}

/// A groupable key: a text/bool column with modest cardinality in the data.
fn pick_group_key(db: &Database, tables: &[usize], rng: &mut Prng) -> Option<ColumnRef> {
    let mut keys = Vec::new();
    for &t in tables {
        for (ci, c) in db.schema.tables[t].columns.iter().enumerate() {
            let r = ColumnRef {
                table: t,
                column: ci,
            };
            if c.primary_key || is_fk_col(db, r) {
                continue;
            }
            if !matches!(c.dtype, DataType::Text | DataType::Bool) {
                continue;
            }
            let distinct = db.distinct_values(t, ci).len();
            let rows = db.rows(t).len();
            if distinct >= 2 && distinct * 2 <= rows.max(4) {
                keys.push(r);
            }
        }
    }
    if keys.is_empty() {
        None
    } else {
        Some(*rng.pick(&keys))
    }
}

fn pick_aggregate(db: &Database, tables: &[usize], rng: &mut Prng) -> (AggFunc, Option<ColumnRef>) {
    // COUNT(*) is the most common aggregate in every benchmark.
    if rng.chance(0.45) {
        return (AggFunc::Count, None);
    }
    match pick_numeric_col(db, tables, rng) {
        Some(col) => {
            let func = *rng.pick(&[AggFunc::Sum, AggFunc::Avg, AggFunc::Max, AggFunc::Min]);
            (func, Some(col))
        }
        None => (AggFunc::Count, None),
    }
}

/// A grounded condition over one of `tables`.
fn sample_cond(db: &Database, tables: &[usize], rng: &mut Prng) -> Option<CondSpec> {
    for _attempt in 0..8 {
        let t = *rng.pick(tables);
        let ncols = db.schema.tables[t].columns.len();
        let ci = rng.below(ncols);
        let col = ColumnRef {
            table: t,
            column: ci,
        };
        let c = db.schema.column(col);
        if c.primary_key || is_fk_col(db, col) {
            continue;
        }
        let values = db.distinct_values(t, ci);
        if values.is_empty() {
            continue;
        }
        let v = values[rng.below(values.len())].clone();
        let spec = match c.dtype {
            DataType::Int | DataType::Float => {
                if rng.chance(0.2) && values.len() >= 2 {
                    let w = values[rng.below(values.len())].clone();
                    let (lo, hi) = if v.total_cmp(&w) == std::cmp::Ordering::Greater {
                        (w, v)
                    } else {
                        (v, w)
                    };
                    CondSpec {
                        col,
                        op: CondOp::Between,
                        value: lo,
                        value2: Some(hi),
                    }
                } else {
                    let op = *rng.pick(&[BinOp::Gt, BinOp::Lt, BinOp::Ge, BinOp::Le, BinOp::Eq]);
                    CondSpec {
                        col,
                        op: CondOp::Cmp(op),
                        value: v,
                        value2: None,
                    }
                }
            }
            DataType::Text => {
                if rng.chance(0.2) {
                    // substring of a real value
                    let s = v.as_text().unwrap_or("");
                    let word = s.split_whitespace().next().unwrap_or(s);
                    if word.len() < 3 {
                        continue;
                    }
                    CondSpec {
                        col,
                        op: CondOp::Contains,
                        value: Value::Text(word.to_string()),
                        value2: None,
                    }
                } else {
                    let op = if rng.chance(0.12) {
                        BinOp::Neq
                    } else {
                        BinOp::Eq
                    };
                    CondSpec {
                        col,
                        op: CondOp::Cmp(op),
                        value: v,
                        value2: None,
                    }
                }
            }
            DataType::Date => {
                let op = *rng.pick(&[BinOp::Gt, BinOp::Lt, BinOp::Ge, BinOp::Le]);
                CondSpec {
                    col,
                    op: CondOp::Cmp(op),
                    value: v,
                    value2: None,
                }
            }
            DataType::Bool => CondSpec {
                col,
                op: CondOp::Cmp(BinOp::Eq),
                value: Value::Bool(rng.chance(0.5)),
                value2: None,
            },
        };
        return Some(spec);
    }
    None
}

// ---- plan → SQL ---------------------------------------------------------

/// Whether column names must be table-qualified (a join is in scope).
fn col_expr(db: &Database, r: ColumnRef, qualify: bool) -> Expr {
    let schema = &db.schema;
    if qualify {
        Expr::Column(ColName::qualified(
            &schema.tables[r.table].name,
            &schema.column(r).name,
        ))
    } else {
        Expr::Column(ColName::new(&schema.column(r).name))
    }
}

fn cond_expr(db: &Database, c: &CondSpec, qualify: bool, table_name: &str) -> Expr {
    let lhs = col_expr(db, c.col, qualify);
    match &c.op {
        CondOp::Cmp(op) => Expr::binary(lhs, *op, Expr::Literal(c.value.clone())),
        CondOp::Between => Expr::Between {
            expr: Box::new(lhs),
            low: Box::new(Expr::Literal(c.value.clone())),
            high: Box::new(Expr::Literal(
                c.value2.clone().expect("between has two bounds"),
            )),
            negated: false,
        },
        CondOp::Contains => Expr::Like {
            expr: Box::new(lhs),
            pattern: format!("%{}%", c.value.canonical()),
            negated: false,
        },
        CondOp::EqExtreme(func) => {
            let inner_col = Expr::Column(ColName::new(&db.schema.column(c.col).name));
            let inner = Query::single(Select::simple(
                table_name,
                vec![SelectItem::plain(Expr::agg(*func, inner_col))],
            ));
            Expr::binary(lhs, BinOp::Eq, Expr::ScalarSubquery(Box::new(inner)))
        }
    }
}

/// Public lowering of a single condition with unqualified column names
/// (used by the vis and multi-turn generators, which are single-table).
pub fn cond_to_expr(db: &Database, c: &CondSpec, table_name: &str) -> Expr {
    cond_expr(db, c, false, table_name)
}

fn and_all(mut exprs: Vec<Expr>) -> Option<Expr> {
    if exprs.is_empty() {
        return None;
    }
    let first = exprs.remove(0);
    Some(
        exprs
            .into_iter()
            .fold(first, |acc, e| Expr::binary(acc, BinOp::And, e)),
    )
}

/// Lower a plan to its gold SQL query.
pub fn plan_to_query(db: &Database, plan: &Plan) -> Query {
    let schema = &db.schema;
    match plan {
        Plan::Simple(intent) => {
            let qualify = intent.join.is_some();
            let main_name = schema.tables[intent.main].name.clone();
            let mut select = Select::simple(&main_name, Vec::new());
            if let Some(j) = &intent.join {
                select.from.push(TableRef {
                    name: schema.tables[j.parent].name.clone(),
                });
                select.joins.push(JoinCond {
                    left: ColName::qualified(
                        &schema.tables[j.fk_col.table].name,
                        &schema.column(j.fk_col).name,
                    ),
                    right: ColName::qualified(
                        &schema.tables[j.pk_col.table].name,
                        &schema.column(j.pk_col).name,
                    ),
                });
            }
            let agg_expr = |func: AggFunc, arg: &Option<ColumnRef>| match arg {
                Some(r) => Expr::agg(func, col_expr(db, *r, qualify)),
                None => Expr::count_star(),
            };
            match &intent.task {
                Task::Columns(cols) => {
                    select.items = cols
                        .iter()
                        .map(|r| SelectItem::plain(col_expr(db, *r, qualify)))
                        .collect();
                }
                Task::Agg { func, arg } => {
                    select.items = vec![SelectItem::plain(agg_expr(*func, arg))];
                }
                Task::GroupAgg {
                    key,
                    func,
                    arg,
                    having_min_count,
                } => {
                    let key_expr = col_expr(db, *key, qualify);
                    select.items = vec![
                        SelectItem::plain(key_expr.clone()),
                        SelectItem::plain(agg_expr(*func, arg)),
                    ];
                    select.group_by = vec![key_expr];
                    if let Some(n) = having_min_count {
                        select.having =
                            Some(Expr::binary(Expr::count_star(), BinOp::Gt, Expr::lit(*n)));
                    }
                }
            }
            select.distinct = intent.distinct;
            let conds: Vec<Expr> = intent
                .conds
                .iter()
                .map(|c| cond_expr(db, c, qualify, &schema.tables[c.col.table].name))
                .collect();
            select.where_clause = and_all(conds);
            if let Some(o) = &intent.order {
                let expr = match (&o.col, &intent.task) {
                    (Some(r), _) => col_expr(db, *r, qualify),
                    (None, Task::GroupAgg { func, arg, .. }) => match arg {
                        Some(r) => Expr::agg(*func, col_expr(db, *r, qualify)),
                        None => Expr::count_star(),
                    },
                    (None, _) => Expr::count_star(),
                };
                select.order_by = vec![OrderItem { expr, desc: o.desc }];
            }
            select.limit = intent.limit;
            Query::single(select)
        }
        Plan::Nested {
            outer,
            select_col,
            child,
            fk_col,
            negated,
            inner_cond,
        } => {
            let outer_name = &schema.tables[*outer].name;
            let child_name = &schema.tables[*child].name;
            let mut inner = Select::simple(
                child_name,
                vec![SelectItem::plain(Expr::Column(ColName::new(
                    &schema.column(*fk_col).name,
                )))],
            );
            if let Some(c) = inner_cond {
                inner.where_clause = Some(cond_expr(db, c, false, child_name));
            }
            let pk = schema.tables[*outer]
                .primary_key()
                .expect("outer tables have serial PKs");
            let mut outer_sel = Select::simple(
                outer_name,
                vec![SelectItem::plain(col_expr(db, *select_col, false))],
            );
            outer_sel.where_clause = Some(Expr::InSubquery {
                expr: Box::new(Expr::Column(ColName::new(
                    &schema.tables[*outer].columns[pk].name,
                ))),
                query: Box::new(Query::single(inner)),
                negated: *negated,
            });
            Query::single(outer_sel)
        }
        Plan::Compound {
            table,
            col,
            left,
            right,
            op,
        } => {
            let name = &schema.tables[*table].name;
            let mk = |cond: &CondSpec| {
                let mut s =
                    Select::simple(name, vec![SelectItem::plain(col_expr(db, *col, false))]);
                s.where_clause = Some(cond_expr(db, cond, false, name));
                Query::single(s)
            };
            let mut q = mk(left);
            q.compound = Some((*op, Box::new(mk(right))));
            q
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::all_domains;
    use crate::schema_gen::{generate_database, DbGenConfig};
    use nli_core::ExecutionEngine;
    use nli_sql::SqlEngine;

    fn sample_db(seed: u64) -> Database {
        let d = all_domains()[seed as usize % all_domains().len()];
        generate_database(d, 0, &DbGenConfig::default(), &mut Prng::new(seed))
    }

    #[test]
    fn sampled_queries_execute() {
        let engine = SqlEngine::new();
        let mut executed = 0;
        for seed in 0..60u64 {
            let db = sample_db(seed / 5);
            let mut rng = Prng::new(1000 + seed);
            if let Some(plan) = sample_plan(&db, &SqlProfile::spider(), &mut rng) {
                let q = plan_to_query(&db, &plan);
                engine
                    .execute(&q, &db)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}\nSQL: {q}"));
                executed += 1;
            }
        }
        assert!(executed >= 50, "only {executed}/60 plans sampled");
    }

    #[test]
    fn wikisql_profile_keeps_queries_single_table() {
        for seed in 0..40u64 {
            let db = sample_db(seed % 4);
            let mut rng = Prng::new(seed);
            if let Some(plan) = sample_plan(&db, &SqlProfile::wikisql(), &mut rng) {
                let q = plan_to_query(&db, &plan);
                assert_eq!(q.select.from.len(), 1, "{q}");
                assert!(q.select.group_by.is_empty());
                assert!(q.compound.is_none());
            }
        }
    }

    #[test]
    fn spider_profile_eventually_produces_all_shapes() {
        let mut joins = 0;
        let mut groups = 0;
        let mut nested = 0;
        let mut compound = 0;
        let mut ordered = 0;
        for seed in 0..400u64 {
            let db = sample_db(seed % 8);
            let mut rng = Prng::new(77_000 + seed);
            if let Some(plan) = sample_plan(&db, &SqlProfile::spider(), &mut rng) {
                match &plan {
                    Plan::Nested { .. } => nested += 1,
                    Plan::Compound { .. } => compound += 1,
                    Plan::Simple(i) => {
                        joins += usize::from(i.join.is_some());
                        groups += usize::from(matches!(i.task, Task::GroupAgg { .. }));
                        ordered += usize::from(i.order.is_some());
                    }
                }
            }
        }
        assert!(joins > 20, "joins: {joins}");
        assert!(groups > 20, "groups: {groups}");
        assert!(nested > 5, "nested: {nested}");
        assert!(compound > 2, "compound: {compound}");
        assert!(ordered > 20, "ordered: {ordered}");
    }

    #[test]
    fn plan_lowering_is_deterministic() {
        let db = sample_db(3);
        let mut r1 = Prng::new(5);
        let mut r2 = Prng::new(5);
        let p1 = sample_plan(&db, &SqlProfile::spider(), &mut r1);
        let p2 = sample_plan(&db, &SqlProfile::spider(), &mut r2);
        assert_eq!(p1, p2);
        if let Some(p) = p1 {
            assert_eq!(plan_to_query(&db, &p), plan_to_query(&db, &p));
        }
    }

    #[test]
    fn conditions_are_value_grounded() {
        // equality conditions over text columns must use values present in
        // the data, so the gold query has non-trivial execution semantics.
        let engine = SqlEngine::new();
        let mut nonempty = 0;
        let mut total = 0;
        for seed in 0..80u64 {
            let db = sample_db(seed % 6);
            let mut rng = Prng::new(9_000 + seed);
            if let Some(plan) = sample_plan(&db, &SqlProfile::spider(), &mut rng) {
                let q = plan_to_query(&db, &plan);
                let r = engine.execute(&q, &db).unwrap();
                total += 1;
                if !r.rows.is_empty() {
                    nonempty += 1;
                }
            }
        }
        assert!(
            nonempty * 2 > total,
            "most gold queries should return rows ({nonempty}/{total})"
        );
    }
}
