//! Domain vocabularies: the raw material for cross-domain schema sampling.
//!
//! Each [`Domain`] declares themed table templates with typed columns,
//! value distributions, and foreign-key structure. Twelve domains span the
//! sectors the survey's datasets cover (business, healthcare, education,
//! aviation, entertainment, sports, geography, ...), and the schema
//! generator ([`crate::schema_gen`]) multiplies them into many database
//! variants the way Spider's 138 domains fan out over 200 databases.

use nli_core::DataType;

/// How values of a column are generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueSpec {
    /// Auto-incrementing primary key.
    Serial,
    /// Uniform integer in `[lo, hi]`.
    IntRange(i64, i64),
    /// Uniform float in `[lo, hi]`, rounded to 2 decimals.
    FloatRange(f64, f64),
    /// Categorical value from a closed pool.
    Pool(&'static [&'static str]),
    /// Synthesized person name (first + last pools).
    PersonName,
    /// Synthesized proper name with a themed suffix pool (e.g. "Corp").
    ProperName(&'static [&'static str]),
    /// City name pool.
    City,
    /// Country name pool.
    Country,
    /// Date with year uniform in `[lo, hi]`.
    DateRange(i32, i32),
    /// Boolean.
    Flag,
    /// Foreign key into `table.column` (always the parent's Serial PK).
    Fk(&'static str),
}

impl ValueSpec {
    pub fn data_type(&self) -> DataType {
        match self {
            ValueSpec::Serial | ValueSpec::IntRange(..) | ValueSpec::Fk(_) => DataType::Int,
            ValueSpec::FloatRange(..) => DataType::Float,
            ValueSpec::Pool(_)
            | ValueSpec::PersonName
            | ValueSpec::ProperName(_)
            | ValueSpec::City
            | ValueSpec::Country => DataType::Text,
            ValueSpec::DateRange(..) => DataType::Date,
            ValueSpec::Flag => DataType::Bool,
        }
    }
}

/// A column template: SQL name, display phrase, and value distribution.
#[derive(Debug, Clone, Copy)]
pub struct ColTemplate {
    pub name: &'static str,
    pub display: &'static str,
    pub spec: ValueSpec,
    /// Optional columns are included per-database with some probability,
    /// giving schema variety across databases of the same domain.
    pub optional: bool,
}

const fn col(name: &'static str, display: &'static str, spec: ValueSpec) -> ColTemplate {
    ColTemplate {
        name,
        display,
        spec,
        optional: false,
    }
}

const fn opt(name: &'static str, display: &'static str, spec: ValueSpec) -> ColTemplate {
    ColTemplate {
        name,
        display,
        spec,
        optional: true,
    }
}

/// A table template.
#[derive(Debug, Clone, Copy)]
pub struct TableTemplate {
    pub name: &'static str,
    /// Singular display form ("singer").
    pub singular: &'static str,
    /// Plural display form ("singers").
    pub plural: &'static str,
    pub columns: &'static [ColTemplate],
}

/// A themed domain.
#[derive(Debug, Clone, Copy)]
pub struct Domain {
    pub name: &'static str,
    pub tables: &'static [TableTemplate],
}

// ---- shared pools ------------------------------------------------------

pub const FIRST_NAMES: &[&str] = &[
    "Alice", "Bruno", "Carmen", "Derek", "Elena", "Farid", "Grace", "Hiro", "Ingrid", "Jonas",
    "Kara", "Liam", "Mona", "Nadia", "Omar", "Priya", "Quentin", "Rosa", "Stefan", "Tara",
    "Ulrich", "Vera", "Wanda", "Xavier", "Yusuf", "Zoe",
];

pub const LAST_NAMES: &[&str] = &[
    "Anderson",
    "Baptiste",
    "Chen",
    "Dimitrov",
    "Eriksen",
    "Fischer",
    "Garcia",
    "Hassan",
    "Ivanov",
    "Johansson",
    "Kumar",
    "Lopez",
    "Moreau",
    "Nakamura",
    "Okafor",
    "Petrov",
    "Quinn",
    "Rossi",
    "Schmidt",
    "Tanaka",
    "Umar",
    "Vargas",
    "Weber",
    "Xu",
    "Yilmaz",
    "Zhang",
];

pub const CITIES: &[&str] = &[
    "Springfield",
    "Rivertown",
    "Lakewood",
    "Hillcrest",
    "Maplewood",
    "Fairview",
    "Oakdale",
    "Brookside",
    "Westfield",
    "Easton",
    "Northgate",
    "Southport",
    "Greenville",
    "Ashford",
    "Clearwater",
    "Stonebridge",
];

pub const COUNTRIES: &[&str] = &[
    "France", "Japan", "Brazil", "Canada", "Kenya", "India", "Norway", "Mexico", "Vietnam",
    "Poland", "Egypt", "Chile",
];

const PRODUCT_CATEGORIES: &[&str] = &[
    "Tools",
    "Toys",
    "Electronics",
    "Clothing",
    "Food",
    "Garden",
    "Sports",
    "Books",
];
const CORP_SUFFIX: &[&str] = &["Corp", "Ltd", "Group", "Industries", "Partners"];
const STORE_SUFFIX: &[&str] = &["Mart", "Depot", "Outlet", "Store", "Emporium"];
const GENRES: &[&str] = &[
    "rock",
    "pop",
    "jazz",
    "folk",
    "classical",
    "electronic",
    "hip hop",
];
const MOVIE_GENRES: &[&str] = &[
    "drama",
    "comedy",
    "thriller",
    "documentary",
    "animation",
    "horror",
    "romance",
];
const SPECIALTIES: &[&str] = &[
    "cardiology",
    "oncology",
    "pediatrics",
    "neurology",
    "orthopedics",
    "dermatology",
];
const DEPARTMENTS: &[&str] = &[
    "engineering",
    "marketing",
    "finance",
    "operations",
    "research",
    "support",
];
const MAJORS: &[&str] = &[
    "biology",
    "physics",
    "history",
    "economics",
    "literature",
    "mathematics",
];
const CUISINES: &[&str] = &[
    "italian", "japanese", "mexican", "indian", "french", "thai", "greek",
];
const POSITIONS: &[&str] = &["guard", "forward", "center", "keeper", "winger", "defender"];
const AIRCRAFT: &[&str] = &["A320", "B737", "E190", "A350", "B787", "CRJ900"];
const BOOK_SUBJECTS: &[&str] = &[
    "fiction",
    "science",
    "travel",
    "biography",
    "poetry",
    "cooking",
];
const CAR_MAKERS: &[&str] = &["Vela", "Norden", "Kestrel", "Aurora", "Pampa", "Taiga"];
const FUEL: &[&str] = &["petrol", "diesel", "electric", "hybrid"];
const SONG_WORDS: &[&str] = &[
    "Midnight", "River", "Echo", "Golden", "Wild", "Silent", "Neon", "Paper",
];
const VENUE_SUFFIX: &[&str] = &["Arena", "Hall", "Stadium", "Theatre", "Pavilion"];

// ---- domains -----------------------------------------------------------

/// retail / business domain (the survey's running sales example).
static RETAIL: Domain = Domain {
    name: "retail",
    tables: &[
        TableTemplate {
            name: "products",
            singular: "product",
            plural: "products",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col(
                    "name",
                    "name",
                    ValueSpec::ProperName(&["Basic", "Pro", "Mini", "Max"]),
                ),
                col("category", "category", ValueSpec::Pool(PRODUCT_CATEGORIES)),
                col("price", "price", ValueSpec::FloatRange(1.0, 500.0)),
                opt("stock", "stock", ValueSpec::IntRange(0, 900)),
                opt("rating", "rating", ValueSpec::FloatRange(1.0, 5.0)),
            ],
        },
        TableTemplate {
            name: "stores",
            singular: "store",
            plural: "stores",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("name", "name", ValueSpec::ProperName(STORE_SUFFIX)),
                col("city", "city", ValueSpec::City),
                opt("opened", "opening date", ValueSpec::DateRange(1995, 2020)),
            ],
        },
        TableTemplate {
            name: "sales",
            singular: "sale",
            plural: "sales",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("product_id", "product", ValueSpec::Fk("products")),
                col("store_id", "store", ValueSpec::Fk("stores")),
                col("amount", "amount", ValueSpec::FloatRange(5.0, 2000.0)),
                col("sold_on", "sale date", ValueSpec::DateRange(2021, 2025)),
                opt("quantity", "quantity", ValueSpec::IntRange(1, 40)),
            ],
        },
    ],
};

/// concert/singer domain (Spider's flagship example).
static MUSIC: Domain = Domain {
    name: "music",
    tables: &[
        TableTemplate {
            name: "singer",
            singular: "singer",
            plural: "singers",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("name", "name", ValueSpec::PersonName),
                col("country", "country", ValueSpec::Country),
                col("age", "age", ValueSpec::IntRange(18, 70)),
                opt("genre", "genre", ValueSpec::Pool(GENRES)),
            ],
        },
        TableTemplate {
            name: "concert",
            singular: "concert",
            plural: "concerts",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("singer_id", "singer", ValueSpec::Fk("singer")),
                col("venue", "venue", ValueSpec::ProperName(VENUE_SUFFIX)),
                col("attendance", "attendance", ValueSpec::IntRange(100, 80000)),
                col("held_on", "date", ValueSpec::DateRange(2015, 2025)),
            ],
        },
        TableTemplate {
            name: "song",
            singular: "song",
            plural: "songs",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("singer_id", "singer", ValueSpec::Fk("singer")),
                col("title", "title", ValueSpec::ProperName(SONG_WORDS)),
                col("duration", "duration", ValueSpec::IntRange(90, 600)),
                opt("plays", "play count", ValueSpec::IntRange(0, 5_000_000)),
            ],
        },
    ],
};

static HEALTHCARE: Domain = Domain {
    name: "healthcare",
    tables: &[
        TableTemplate {
            name: "doctors",
            singular: "doctor",
            plural: "doctors",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("name", "name", ValueSpec::PersonName),
                col("specialty", "specialty", ValueSpec::Pool(SPECIALTIES)),
                col("salary", "salary", ValueSpec::FloatRange(60000.0, 320000.0)),
                opt(
                    "experience",
                    "years of experience",
                    ValueSpec::IntRange(1, 40),
                ),
            ],
        },
        TableTemplate {
            name: "patients",
            singular: "patient",
            plural: "patients",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("name", "name", ValueSpec::PersonName),
                col("age", "age", ValueSpec::IntRange(1, 99)),
                col("city", "city", ValueSpec::City),
            ],
        },
        TableTemplate {
            name: "visits",
            singular: "visit",
            plural: "visits",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("doctor_id", "doctor", ValueSpec::Fk("doctors")),
                col("patient_id", "patient", ValueSpec::Fk("patients")),
                col("cost", "cost", ValueSpec::FloatRange(40.0, 5000.0)),
                col("visited_on", "visit date", ValueSpec::DateRange(2019, 2025)),
            ],
        },
    ],
};

static EDUCATION: Domain = Domain {
    name: "education",
    tables: &[
        TableTemplate {
            name: "students",
            singular: "student",
            plural: "students",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("name", "name", ValueSpec::PersonName),
                col("major", "major", ValueSpec::Pool(MAJORS)),
                col("gpa", "gpa", ValueSpec::FloatRange(1.0, 4.0)),
                opt("age", "age", ValueSpec::IntRange(17, 30)),
            ],
        },
        TableTemplate {
            name: "courses",
            singular: "course",
            plural: "courses",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col(
                    "title",
                    "title",
                    ValueSpec::ProperName(&["101", "Advanced", "Intro", "Seminar"]),
                ),
                col("credits", "credits", ValueSpec::IntRange(1, 6)),
                col("department", "department", ValueSpec::Pool(MAJORS)),
            ],
        },
        TableTemplate {
            name: "enrollments",
            singular: "enrollment",
            plural: "enrollments",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("student_id", "student", ValueSpec::Fk("students")),
                col("course_id", "course", ValueSpec::Fk("courses")),
                col("grade", "grade", ValueSpec::FloatRange(0.0, 100.0)),
            ],
        },
    ],
};

static AVIATION: Domain = Domain {
    name: "aviation",
    tables: &[
        TableTemplate {
            name: "airports",
            singular: "airport",
            plural: "airports",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col(
                    "name",
                    "name",
                    ValueSpec::ProperName(&["International", "Regional", "Field"]),
                ),
                col("city", "city", ValueSpec::City),
                col("country", "country", ValueSpec::Country),
                opt("elevation", "elevation", ValueSpec::IntRange(0, 4000)),
            ],
        },
        TableTemplate {
            name: "flights",
            singular: "flight",
            plural: "flights",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("origin_id", "origin airport", ValueSpec::Fk("airports")),
                col("aircraft", "aircraft", ValueSpec::Pool(AIRCRAFT)),
                col("distance", "distance", ValueSpec::IntRange(120, 11000)),
                col("price", "ticket price", ValueSpec::FloatRange(40.0, 2400.0)),
                col(
                    "departed_on",
                    "departure date",
                    ValueSpec::DateRange(2022, 2025),
                ),
            ],
        },
    ],
};

static SPORTS: Domain = Domain {
    name: "sports",
    tables: &[
        TableTemplate {
            name: "teams",
            singular: "team",
            plural: "teams",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col(
                    "name",
                    "name",
                    ValueSpec::ProperName(&["United", "City", "Rovers", "Wanderers"]),
                ),
                col("city", "city", ValueSpec::City),
                col("founded", "founding year", ValueSpec::IntRange(1890, 2010)),
            ],
        },
        TableTemplate {
            name: "players",
            singular: "player",
            plural: "players",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("team_id", "team", ValueSpec::Fk("teams")),
                col("name", "name", ValueSpec::PersonName),
                col("position", "position", ValueSpec::Pool(POSITIONS)),
                col("goals", "goals", ValueSpec::IntRange(0, 60)),
                opt("salary", "salary", ValueSpec::FloatRange(20000.0, 900000.0)),
            ],
        },
        TableTemplate {
            name: "matches",
            singular: "match",
            plural: "matches",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("home_id", "home team", ValueSpec::Fk("teams")),
                col("attendance", "attendance", ValueSpec::IntRange(500, 90000)),
                col("played_on", "match date", ValueSpec::DateRange(2018, 2025)),
            ],
        },
    ],
};

static MOVIES: Domain = Domain {
    name: "movies",
    tables: &[
        TableTemplate {
            name: "directors",
            singular: "director",
            plural: "directors",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("name", "name", ValueSpec::PersonName),
                col("country", "country", ValueSpec::Country),
            ],
        },
        TableTemplate {
            name: "movies",
            singular: "movie",
            plural: "movies",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("director_id", "director", ValueSpec::Fk("directors")),
                col("title", "title", ValueSpec::ProperName(SONG_WORDS)),
                col("genre", "genre", ValueSpec::Pool(MOVIE_GENRES)),
                col("rating", "rating", ValueSpec::FloatRange(1.0, 10.0)),
                col("released", "release date", ValueSpec::DateRange(1980, 2025)),
                opt("budget", "budget", ValueSpec::IntRange(100000, 250000000)),
            ],
        },
    ],
};

static RESTAURANTS: Domain = Domain {
    name: "restaurants",
    tables: &[
        TableTemplate {
            name: "restaurants",
            singular: "restaurant",
            plural: "restaurants",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col(
                    "name",
                    "name",
                    ValueSpec::ProperName(&["Kitchen", "Bistro", "House", "Table"]),
                ),
                col("cuisine", "cuisine", ValueSpec::Pool(CUISINES)),
                col("city", "city", ValueSpec::City),
                col("rating", "rating", ValueSpec::FloatRange(1.0, 5.0)),
                opt("seats", "seating capacity", ValueSpec::IntRange(10, 300)),
            ],
        },
        TableTemplate {
            name: "reviews",
            singular: "review",
            plural: "reviews",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("restaurant_id", "restaurant", ValueSpec::Fk("restaurants")),
                col("score", "score", ValueSpec::IntRange(1, 5)),
                col(
                    "written_on",
                    "review date",
                    ValueSpec::DateRange(2020, 2025),
                ),
            ],
        },
    ],
};

static GEOGRAPHY: Domain = Domain {
    name: "geography",
    tables: &[
        TableTemplate {
            name: "countries",
            singular: "country",
            plural: "countries",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("name", "name", ValueSpec::Country),
                col(
                    "population",
                    "population",
                    ValueSpec::IntRange(500000, 1400000000),
                ),
                col("area", "area", ValueSpec::IntRange(1000, 17000000)),
            ],
        },
        TableTemplate {
            name: "cities",
            singular: "city",
            plural: "cities",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("country_id", "country", ValueSpec::Fk("countries")),
                col("name", "name", ValueSpec::City),
                col(
                    "population",
                    "population",
                    ValueSpec::IntRange(20000, 35000000),
                ),
                opt("is_capital", "capital flag", ValueSpec::Flag),
            ],
        },
        TableTemplate {
            name: "rivers",
            singular: "river",
            plural: "rivers",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("country_id", "country", ValueSpec::Fk("countries")),
                col("name", "name", ValueSpec::ProperName(&["River"])),
                col("length", "length", ValueSpec::IntRange(50, 6800)),
            ],
        },
    ],
};

static LIBRARY: Domain = Domain {
    name: "library",
    tables: &[
        TableTemplate {
            name: "authors",
            singular: "author",
            plural: "authors",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("name", "name", ValueSpec::PersonName),
                col("country", "country", ValueSpec::Country),
            ],
        },
        TableTemplate {
            name: "books",
            singular: "book",
            plural: "books",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("author_id", "author", ValueSpec::Fk("authors")),
                col("title", "title", ValueSpec::ProperName(SONG_WORDS)),
                col("subject", "subject", ValueSpec::Pool(BOOK_SUBJECTS)),
                col("pages", "pages", ValueSpec::IntRange(60, 1200)),
                col(
                    "published",
                    "publication date",
                    ValueSpec::DateRange(1950, 2025),
                ),
            ],
        },
        TableTemplate {
            name: "loans",
            singular: "loan",
            plural: "loans",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("book_id", "book", ValueSpec::Fk("books")),
                col("borrowed_on", "loan date", ValueSpec::DateRange(2022, 2025)),
                opt("late", "late flag", ValueSpec::Flag),
            ],
        },
    ],
};

static COMPANY: Domain = Domain {
    name: "company",
    tables: &[
        TableTemplate {
            name: "departments",
            singular: "department",
            plural: "departments",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("name", "name", ValueSpec::Pool(DEPARTMENTS)),
                col("budget", "budget", ValueSpec::IntRange(100000, 20000000)),
            ],
        },
        TableTemplate {
            name: "employees",
            singular: "employee",
            plural: "employees",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("department_id", "department", ValueSpec::Fk("departments")),
                col("name", "name", ValueSpec::PersonName),
                col("salary", "salary", ValueSpec::FloatRange(28000.0, 260000.0)),
                col("hired_on", "hire date", ValueSpec::DateRange(2005, 2025)),
                opt("remote", "remote flag", ValueSpec::Flag),
            ],
        },
        TableTemplate {
            name: "projects",
            singular: "project",
            plural: "projects",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("department_id", "department", ValueSpec::Fk("departments")),
                col("name", "name", ValueSpec::ProperName(CORP_SUFFIX)),
                col("cost", "cost", ValueSpec::FloatRange(5000.0, 4000000.0)),
            ],
        },
    ],
};

static AUTOMOTIVE: Domain = Domain {
    name: "automotive",
    tables: &[
        TableTemplate {
            name: "makers",
            singular: "maker",
            plural: "makers",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("name", "name", ValueSpec::Pool(CAR_MAKERS)),
                col("country", "country", ValueSpec::Country),
            ],
        },
        TableTemplate {
            name: "cars",
            singular: "car",
            plural: "cars",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("maker_id", "maker", ValueSpec::Fk("makers")),
                col(
                    "model",
                    "model",
                    ValueSpec::ProperName(&["GT", "LX", "S", "Trail"]),
                ),
                col("horsepower", "horsepower", ValueSpec::IntRange(60, 800)),
                col("mpg", "fuel economy", ValueSpec::FloatRange(10.0, 140.0)),
                col("fuel", "fuel type", ValueSpec::Pool(FUEL)),
                opt("year", "model year", ValueSpec::IntRange(1998, 2026)),
            ],
        },
    ],
};

static HOTELS: Domain = Domain {
    name: "hospitality",
    tables: &[
        TableTemplate {
            name: "hotels",
            singular: "hotel",
            plural: "hotels",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col(
                    "name",
                    "name",
                    ValueSpec::ProperName(&["Plaza", "Inn", "Lodge", "Resort"]),
                ),
                col("city", "city", ValueSpec::City),
                col("stars", "star rating", ValueSpec::IntRange(1, 5)),
                col("rooms", "room count", ValueSpec::IntRange(10, 700)),
            ],
        },
        TableTemplate {
            name: "bookings",
            singular: "booking",
            plural: "bookings",
            columns: &[
                col("id", "id", ValueSpec::Serial),
                col("hotel_id", "hotel", ValueSpec::Fk("hotels")),
                col("nights", "nights", ValueSpec::IntRange(1, 21)),
                col("total", "total price", ValueSpec::FloatRange(60.0, 9000.0)),
                col("checkin", "check-in date", ValueSpec::DateRange(2021, 2025)),
            ],
        },
    ],
};

/// All built-in domains.
pub fn all_domains() -> &'static [&'static Domain] {
    static ALL: [&Domain; 13] = [
        &RETAIL,
        &MUSIC,
        &HEALTHCARE,
        &EDUCATION,
        &AVIATION,
        &SPORTS,
        &MOVIES,
        &RESTAURANTS,
        &GEOGRAPHY,
        &LIBRARY,
        &COMPANY,
        &AUTOMOTIVE,
        &HOTELS,
    ];
    &ALL
}

/// Look up a domain by name.
pub fn domain(name: &str) -> Option<&'static Domain> {
    all_domains().iter().copied().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_a_dozen_domains() {
        assert!(all_domains().len() >= 12);
    }

    #[test]
    fn every_fk_references_an_earlier_table() {
        for d in all_domains() {
            for (ti, t) in d.tables.iter().enumerate() {
                for c in t.columns {
                    if let ValueSpec::Fk(parent) = c.spec {
                        let pi = d
                            .tables
                            .iter()
                            .position(|p| p.name == parent)
                            .unwrap_or_else(|| {
                                panic!("{}.{}: unknown parent {parent}", t.name, c.name)
                            });
                        assert!(
                            pi < ti,
                            "{}: FK {} must reference an earlier table",
                            d.name,
                            c.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn every_table_has_a_serial_pk_first() {
        for d in all_domains() {
            for t in d.tables {
                assert_eq!(
                    t.columns[0].spec,
                    ValueSpec::Serial,
                    "{}.{} must start with a Serial pk",
                    d.name,
                    t.name
                );
                assert!(!t.columns[0].optional);
            }
        }
    }

    #[test]
    fn names_are_snake_case_and_displays_nonempty() {
        for d in all_domains() {
            for t in d.tables {
                assert!(t.name.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
                assert!(!t.singular.is_empty() && !t.plural.is_empty());
                for c in t.columns {
                    assert!(
                        c.name.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                        "{}.{}",
                        t.name,
                        c.name
                    );
                    assert!(!c.display.is_empty());
                }
            }
        }
    }

    #[test]
    fn value_specs_have_sane_types() {
        assert_eq!(ValueSpec::Serial.data_type(), DataType::Int);
        assert_eq!(ValueSpec::City.data_type(), DataType::Text);
        assert_eq!(ValueSpec::DateRange(2000, 2001).data_type(), DataType::Date);
        assert_eq!(ValueSpec::Flag.data_type(), DataType::Bool);
    }

    #[test]
    fn domain_lookup() {
        assert!(domain("retail").is_some());
        assert!(domain("nonexistent").is_none());
    }
}
