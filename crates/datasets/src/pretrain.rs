//! GraPPa/GAP/TaBERT-style pretraining data synthesis.
//!
//! The survey's "additional pretraining" row covers models that are not
//! fine-tuned on human annotations but pre-trained on *synthesized*
//! question–SQL pairs over tables ("Grappa fine-tunes BERT by generating
//! question-SQL pairs over tables"). This module is exactly that
//! synthesizer: given databases (no gold annotations), it samples grammar-
//! derived SQL and template-realized questions, producing a pretraining
//! corpus any trainable parser component can consume.
//!
//! The crucial property is that it needs only *schemas and content* — so a
//! parser can be "pretrained" on the dev databases without ever seeing a
//! gold dev annotation, which is precisely how pretraining closes part of
//! the cross-domain gap.

use crate::nl_gen::{realize, NlStyle};
use crate::sql_gen::{plan_to_query, sample_plan, SqlProfile};
use nli_core::{Database, ExecutionEngine, Prng};
use nli_lm::TrainingExample;
use nli_sql::SqlEngine;

/// Synthesize `n` pretraining pairs over `databases` (schemas + content
/// only; no gold annotations involved).
pub fn synthesize(databases: &[Database], n: usize, seed: u64) -> Vec<TrainingExample> {
    let engine = SqlEngine::new();
    let profile = SqlProfile::spider();
    let mut rng = Prng::new(seed);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut ex_rng = rng.fork(i as u64);
        let db = &databases[ex_rng.below(databases.len())];
        for attempt in 0..8u64 {
            let mut try_rng = ex_rng.fork(attempt);
            let Some(plan) = sample_plan(db, &profile, &mut try_rng) else {
                continue;
            };
            let sql = plan_to_query(db, &plan);
            if engine.execute(&sql, db).is_err() {
                continue;
            }
            let question = realize(db, &plan, NlStyle::plain(), &mut try_rng);
            out.push(TrainingExample {
                question: question.text,
                sql,
            });
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spider_like::{self, SpiderConfig};

    #[test]
    fn synthesis_needs_only_databases() {
        let b = spider_like::build(&SpiderConfig {
            n_databases: 8,
            n_dev_databases: 2,
            n_train: 0,
            n_dev: 0,
            ..Default::default()
        });
        let pairs = synthesize(&b.databases, 60, 9);
        assert!(pairs.len() >= 55, "only {} pairs", pairs.len());
        let engine = SqlEngine::new();
        // every synthesized program is executable on some database
        for p in &pairs {
            assert!(!p.question.is_empty());
            assert!(b
                .databases
                .iter()
                .any(|db| engine.execute(&p.sql, db).is_ok()));
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let b = spider_like::build(&SpiderConfig {
            n_databases: 4,
            n_dev_databases: 1,
            n_train: 0,
            n_dev: 0,
            ..Default::default()
        });
        let a = synthesize(&b.databases, 20, 3);
        let c = synthesize(&b.databases, 20, 3);
        assert_eq!(a.len(), c.len());
        for (x, y) in a.iter().zip(&c) {
            assert_eq!(x.question, y.question);
            assert_eq!(x.sql, y.sql);
        }
    }
}
