//! Columnar storage: typed column vectors with null bitmaps.
//!
//! [`ColumnBatch`] is the columnar twin of one table's row store
//! ([`crate::database::TableData`]): one [`ColumnVector`] per schema
//! column, each a typed Rust vector (`Vec<i64>`, `Vec<f64>`, ...) plus a
//! [`NullBitmap`]. The vectorized executor in `nli-sql` reads these
//! directly — filters, join keys, and aggregates run over typed slices
//! instead of cloning `Vec<Value>` rows.
//!
//! Conversion is strictly derived data: [`ColumnBatch::from_rows`] never
//! mutates the row store, and [`crate::Database::columnar`] caches the
//! result per table until the database is mutated. A column whose values
//! disagree with the declared [`DataType`] (possible only by mutating
//! `Database::data` directly, bypassing `insert`'s type check) falls back
//! to [`ColumnData::Mixed`], which keeps `Value` semantics exact at
//! row-store speed.

use crate::value::{DataType, Date, Value};

/// Packed validity bitmap: bit *i* set means row *i* is NULL.
///
/// Stored per column next to the typed data vector; the typed vector holds
/// an arbitrary placeholder at null slots (readers must consult the bitmap
/// first, which [`ColumnVector::value_at`] does).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NullBitmap {
    words: Vec<u64>,
    len: usize,
    null_count: usize,
}

impl NullBitmap {
    /// An all-valid bitmap over `len` rows.
    pub fn new(len: usize) -> Self {
        NullBitmap {
            words: vec![0; len.div_ceil(64)],
            len,
            null_count: 0,
        }
    }

    /// Mark row `i` NULL.
    pub fn set_null(&mut self, i: usize) {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if *w & mask == 0 {
            *w |= mask;
            self.null_count += 1;
        }
    }

    /// Whether row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.null_count
    }

    /// Whether any row is NULL (cheap: a counter, not a scan).
    pub fn any_null(&self) -> bool {
        self.null_count > 0
    }
}

/// The typed payload of one column. Null slots hold a type-default
/// placeholder; the owning [`ColumnVector`]'s bitmap is authoritative.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    Text(Vec<String>),
    Date(Vec<Date>),
    /// Fallback for a column whose stored values disagree with its declared
    /// type; keeps exact `Value` semantics.
    Mixed(Vec<Value>),
}

/// One column: typed data plus null bitmap.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnVector {
    pub data: ColumnData,
    pub nulls: NullBitmap,
}

impl ColumnVector {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.nulls.len()
    }

    /// Whether the column covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.nulls.is_empty()
    }

    /// Whether row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.is_null(i)
    }

    /// Rebuild the owned [`Value`] at row `i` (clones text).
    pub fn value_at(&self, i: usize) -> Value {
        if self.nulls.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Text(v) => Value::Text(v[i].clone()),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// Build one column from row-major data, as declared type `dtype`.
    /// Falls back to [`ColumnData::Mixed`] if any non-NULL value disagrees
    /// with the declaration.
    pub fn from_rows(dtype: DataType, rows: &[Vec<Value>], col: usize) -> ColumnVector {
        let clean = rows
            .iter()
            .all(|r| matches!(r[col], Value::Null) || r[col].data_type() == Some(dtype));
        let mut nulls = NullBitmap::new(rows.len());
        if !clean {
            let data = ColumnData::Mixed(rows.iter().map(|r| r[col].clone()).collect());
            for (i, r) in rows.iter().enumerate() {
                if r[col].is_null() {
                    nulls.set_null(i);
                }
            }
            return ColumnVector { data, nulls };
        }
        macro_rules! build {
            ($variant:ident, $default:expr, $pat:pat => $val:expr) => {{
                let mut out = Vec::with_capacity(rows.len());
                for (i, r) in rows.iter().enumerate() {
                    match &r[col] {
                        $pat => out.push($val),
                        _ => {
                            nulls.set_null(i);
                            out.push($default);
                        }
                    }
                }
                ColumnData::$variant(out)
            }};
        }
        let data = match dtype {
            DataType::Int => build!(Int, 0, Value::Int(x) => *x),
            DataType::Float => build!(Float, 0.0, Value::Float(x) => *x),
            DataType::Bool => build!(Bool, false, Value::Bool(x) => *x),
            DataType::Text => build!(Text, String::new(), Value::Text(x) => x.clone()),
            DataType::Date => build!(Date, Date::new(1970, 1, 1), Value::Date(x) => *x),
        };
        ColumnVector { data, nulls }
    }
}

/// One table in columnar form: a [`ColumnVector`] per schema column, all
/// the same length.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBatch {
    pub columns: Vec<ColumnVector>,
    /// Row count (every column vector has this length).
    pub rows: usize,
}

impl ColumnBatch {
    /// Convert one table's row store. `dtypes` are the declared column
    /// types in schema order; every row must have `dtypes.len()` values
    /// (guaranteed by `Database::insert`).
    pub fn from_rows(dtypes: &[DataType], rows: &[Vec<Value>]) -> ColumnBatch {
        let columns = dtypes
            .iter()
            .enumerate()
            .map(|(c, dt)| ColumnVector::from_rows(*dt, rows, c))
            .collect();
        ColumnBatch {
            columns,
            rows: rows.len(),
        }
    }

    /// Rebuild the owned [`Value`] at (`col`, `row`).
    pub fn value_at(&self, col: usize, row: usize) -> Value {
        self.columns[col].value_at(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::Int(1), Value::Text("a".into()), Value::Float(1.5)],
            vec![Value::Null, Value::Text("b".into()), Value::Null],
            vec![Value::Int(3), Value::Null, Value::Float(-2.0)],
        ]
    }

    #[test]
    fn conversion_round_trips_values_and_nulls() {
        let batch =
            ColumnBatch::from_rows(&[DataType::Int, DataType::Text, DataType::Float], &rows());
        assert_eq!(batch.rows, 3);
        for (ri, row) in rows().iter().enumerate() {
            for (ci, v) in row.iter().enumerate() {
                assert_eq!(&batch.value_at(ci, ri), v, "({ci},{ri})");
            }
        }
        assert!(matches!(batch.columns[0].data, ColumnData::Int(_)));
        assert!(matches!(batch.columns[1].data, ColumnData::Text(_)));
        assert_eq!(batch.columns[0].nulls.null_count(), 1);
        assert!(batch.columns[0].is_null(1));
        assert!(!batch.columns[0].is_null(2));
    }

    #[test]
    fn mistyped_column_falls_back_to_mixed() {
        let rows = vec![
            vec![Value::Int(1)],
            vec![Value::Text("oops".into())], // violates the declared Int
        ];
        let batch = ColumnBatch::from_rows(&[DataType::Int], &rows);
        assert!(matches!(batch.columns[0].data, ColumnData::Mixed(_)));
        assert_eq!(batch.value_at(0, 1), Value::Text("oops".into()));
    }

    #[test]
    fn bitmap_counts_and_crosses_word_boundaries() {
        let mut bm = NullBitmap::new(130);
        bm.set_null(0);
        bm.set_null(64);
        bm.set_null(129);
        bm.set_null(129); // idempotent
        assert_eq!(bm.null_count(), 3);
        assert!(bm.is_null(64) && bm.is_null(129) && !bm.is_null(63));
        assert!(bm.any_null());
        assert!(!NullBitmap::new(8).any_null());
    }
}
