//! The survey's two abstract components: the semantic parser `P` and the
//! execution engine `E`.
//!
//! Text-to-SQL instantiates `Expr = nli_sql::ast::Query` with
//! `Output = nli_sql::exec::ResultSet`; Text-to-Vis instantiates
//! `Expr = nli_vql::ast::VisQuery` with `Output = nli_vql::render::Chart`.

use crate::database::Database;
use crate::error::Result;
use crate::question::NlQuestion;
use crate::schema::Schema;

/// A semantic parser `P`: translates a natural-language question over a
/// database into a functional expression (SQL query, visualization query,
/// ...).
pub trait SemanticParser {
    /// The functional expression type `e` this parser emits.
    type Expr;

    /// Translate `question` against `db`'s schema (parsers may also consult
    /// database *content*, e.g. for value grounding).
    fn parse(&self, question: &NlQuestion, db: &Database) -> Result<Self::Expr>;

    /// Short stable identifier used in evaluation reports (e.g. `"nalir"`,
    /// `"din-sql"`).
    fn name(&self) -> &str;
}

/// An execution engine `E`: evaluates a functional expression on a database,
/// `E(e, D) → r`.
pub trait ExecutionEngine {
    type Expr;
    type Output;

    fn execute(&self, expr: &Self::Expr, db: &Database) -> Result<Self::Output>;
}

/// An execution engine that separates *compilation* from *evaluation*:
/// `prepare` turns an expression source into a reusable prepared form bound
/// against a [`Schema`], and `execute_prepared` runs it on any database
/// whose schema has the same [`Schema::fingerprint`].
///
/// This is the contract execution-based evaluation leans on: test-suite
/// accuracy runs one query over dozens of fuzzed database variants that
/// share a schema, so the parse/plan work should happen once, not once per
/// variant. Implementations are expected to key any internal caching on
/// `(source, schema fingerprint)`.
pub trait PrepareEngine: ExecutionEngine {
    /// The compiled, schema-bound form of an expression.
    type Prepared;

    /// Compile `source` against `schema`. Name-resolution errors (unknown
    /// tables/columns, ambiguity) surface here rather than at execution.
    fn prepare(&self, source: &str, schema: &Schema) -> Result<Self::Prepared>;

    /// Evaluate a prepared expression. The database must structurally match
    /// the schema the expression was prepared against.
    fn execute_prepared(&self, prepared: &Self::Prepared, db: &Database) -> Result<Self::Output>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    /// The traits must be object-safe enough for heterogeneous parser
    /// registries (Table 2's harness stores `Box<dyn SemanticParser<...>>`).
    struct Echo;
    impl SemanticParser for Echo {
        type Expr = String;
        fn parse(&self, q: &NlQuestion, _db: &Database) -> Result<String> {
            Ok(q.text.clone())
        }
        fn name(&self) -> &str {
            "echo"
        }
    }

    #[test]
    fn boxed_parsers_work() {
        let p: Box<dyn SemanticParser<Expr = String>> = Box::new(Echo);
        let db = Database::empty(Schema::new("empty", vec![]));
        let out = p.parse(&NlQuestion::new("hi"), &db).unwrap();
        assert_eq!(out, "hi");
        assert_eq!(p.name(), "echo");
    }
}
