//! # nli-core
//!
//! Shared problem definition for natural language interfaces (NLIs) to
//! tabular data, following the formalization of the survey:
//!
//! > given an input `x = {q, s}` with a natural language query `q` and a
//! > database schema `s`, a semantic parser `P` translates `q` into a
//! > functional expression `e`, which an execution engine `E` evaluates on
//! > the database `D` to produce a result `r`: `E(e, D) → r`.
//!
//! This crate hosts everything both tasks (Text-to-SQL and Text-to-Vis)
//! share: dynamically typed [`Value`]s, [`Schema`]s with primary/foreign
//! keys, in-memory [`Database`]s, natural-language [`NlQuestion`]s and
//! multi-turn [`Dialogue`]s, deterministic random sampling ([`Prng`]), the
//! deterministic parallel runtime ([`par`]), and the [`SemanticParser`] /
//! [`ExecutionEngine`] traits that the rest of the workspace implements.

pub mod cache;
pub mod database;
pub mod error;
pub mod par;
pub mod question;
pub mod rng;
pub mod schema;
pub mod traits;
pub mod value;

pub use cache::{CacheStats, PlanCache};
pub use database::{Database, TableData};
pub use error::{NliError, Result};
pub use par::{par_map, par_map_threads, thread_count, with_threads};
pub use question::{Dialogue, Language, NlQuestion, Turn};
pub use rng::Prng;
pub use schema::{Column, ColumnRef, ForeignKey, Schema, Table};
pub use traits::{ExecutionEngine, PrepareEngine, SemanticParser};
pub use value::{DataType, Date, Value};
