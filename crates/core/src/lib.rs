//! # nli-core
//!
//! Shared problem definition for natural language interfaces (NLIs) to
//! tabular data, following the formalization of the survey:
//!
//! > given an input `x = {q, s}` with a natural language query `q` and a
//! > database schema `s`, a semantic parser `P` translates `q` into a
//! > functional expression `e`, which an execution engine `E` evaluates on
//! > the database `D` to produce a result `r`: `E(e, D) → r`.
//!
//! This crate hosts everything both tasks (Text-to-SQL and Text-to-Vis)
//! share: dynamically typed [`Value`]s, [`Schema`]s with primary/foreign
//! keys, in-memory [`Database`]s, natural-language [`NlQuestion`]s and
//! multi-turn [`Dialogue`]s, deterministic random sampling ([`Prng`]), the
//! deterministic parallel runtime ([`par`]), the observability registry
//! ([`obs`]), and the [`SemanticParser`] / [`ExecutionEngine`] traits that
//! the rest of the workspace implements.
//!
//! ## Example
//!
//! ```
//! use nli_core::{Column, DataType, Database, Schema, Table, Value};
//!
//! // The shared problem input: a schema `s` and the database `D` behind it.
//! let schema = Schema::new(
//!     "shop",
//!     vec![Table::new(
//!         "sales",
//!         vec![
//!             Column::new("id", DataType::Int).primary(),
//!             Column::new("amount", DataType::Float),
//!         ],
//!     )],
//! );
//! let mut db = Database::empty(schema);
//! db.insert_all(
//!     "sales",
//!     vec![
//!         vec![Value::Int(1), Value::Float(10.0)],
//!         vec![Value::Int(2), Value::Float(30.0)],
//!     ],
//! )
//! .unwrap();
//! assert_eq!(db.rows_of("sales").unwrap().len(), 2);
//!
//! // Deterministic fan-out: the same output at any worker count.
//! let doubled = nli_core::par_map(&[1u64, 2, 3], |_idx, x| x * 2);
//! assert_eq!(doubled, vec![2, 4, 6]);
//! ```

pub mod batch;
pub mod cache;
pub mod database;
pub mod error;
pub mod obs;
pub mod par;
pub mod question;
pub mod rng;
pub mod schema;
pub mod stats;
pub mod traits;
pub mod value;

pub use batch::{ColumnBatch, ColumnData, ColumnVector, NullBitmap};
pub use cache::{CacheStats, PlanCache};
pub use database::{Database, TableData};
pub use error::{NliError, Result};
pub use par::{par_map, par_map_threads, thread_count, with_threads};
pub use question::{Dialogue, Language, NlQuestion, Turn};
pub use rng::Prng;
pub use schema::{Column, ColumnRef, ForeignKey, Schema, Table};
pub use stats::{ColumnStats, DatabaseStats, TableStats};
pub use traits::{ExecutionEngine, PrepareEngine, SemanticParser};
pub use value::{DataType, Date, Value};
