//! Deterministic random sampling.
//!
//! Every stochastic component in the workspace — dataset generation, the
//! simulated LLM's noise model, test-suite database fuzzing — draws from a
//! [`Prng`] seeded explicitly, so whole experiments replay bit-for-bit.
//!
//! The generator is a self-contained xoshiro256** (public-domain algorithm
//! by Blackman & Vigna) rather than `rand`'s `StdRng`, because `StdRng`'s
//! stream is documented to be unstable across `rand` versions; reproduction
//! harnesses need streams that survive dependency bumps. `rand`'s *traits*
//! are still the workspace-wide sampling vocabulary.

use rand::rand_core::TryRng;
use std::convert::Infallible;

/// Seedable, splittable deterministic generator.
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Create from a seed; equal seeds produce equal streams forever.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Prng {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64_inner(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derive an independent child generator; used to give each dataset
    /// example its own stream so insertions/removals don't shift neighbours.
    pub fn fork(&mut self, salt: u64) -> Prng {
        Prng::new(self.next_u64_inner() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Fork one child per item index, in index order. This is the parallel
    /// harness's reseeding rule: forking consumes parent state
    /// *sequentially* (a few u64 ops per child, scheduling-independent), so
    /// `fork_n(k)[i]` equals the `i`-th `fork(i)` of a sequential loop and
    /// [`crate::par::par_map`] over the children replays bit-for-bit at any
    /// thread count.
    pub fn fork_n(&mut self, n: usize) -> Vec<Prng> {
        (0..n).map(|i| self.fork(i as u64)).collect()
    }

    /// Random-access variant of the [`Prng::fork_n`] seeding rule: derive
    /// the stream for one `(seed, case_index)` pair without materializing
    /// the whole fork vector. Every `index` gets an independent stream (the
    /// salt is SplitMix64-scrambled before seeding, so adjacent indices
    /// share no state), and a case is replayable from its pair alone —
    /// the contract fuzzing harnesses need to turn a failure report back
    /// into a reproducer.
    pub fn for_case(seed: u64, index: u64) -> Prng {
        let mut parent = Prng::new(seed);
        parent.fork(index)
    }

    /// Uniform in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Prng::below(0)");
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 * n,
        // negligible for the corpus sizes here.
        ((self.next_u64_inner() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as usize) as i64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64_inner() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Pick a uniform element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Pick an index by (non-negative, not-all-zero) weights.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "pick_weighted requires positive total weight");
        let mut x = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (k > n returns all, shuffled).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k.min(n));
        idx
    }
}

// Implementing `TryRng<Error = Infallible>` gives us `rand::Rng` (and the
// `RngExt` sampling vocabulary) through rand's blanket impls.
impl TryRng for Prng {
    type Error = Infallible;

    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        Ok((self.next_u64_inner() >> 32) as u32)
    }

    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        Ok(self.next_u64_inner())
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64_inner().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64_inner().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_replay() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.below(1_000_000), b.below(1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        assert_ne!(
            (0..4).map(|_| a.below(1_000_000)).collect::<Vec<_>>(),
            (0..4).map(|_| b.below(1_000_000)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = Prng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = Prng::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.range(-2, 2);
            assert!((-2..=2).contains(&v));
            seen_lo |= v == -2;
            seen_hi |= v == 2;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn unit_is_half_open() {
        let mut r = Prng::new(11);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn weighted_pick_respects_zero_weights() {
        let mut r = Prng::new(3);
        for _ in 0..1_000 {
            let i = r.pick_weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Prng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn sample_indices_are_distinct() {
        let mut r = Prng::new(8);
        let s = r.sample_indices(10, 4);
        assert_eq!(s.len(), 4);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 4);
        assert_eq!(r.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn forks_are_independent_of_later_parent_use() {
        let mut parent = Prng::new(1);
        let mut f1 = parent.fork(0);
        let a = f1.below(1000);
        let mut parent2 = Prng::new(1);
        let mut f2 = parent2.fork(0);
        let _ = parent2.below(1000); // extra parent draw must not affect the fork
        assert_eq!(a, f2.below(1000));
    }

    #[test]
    fn fork_n_matches_the_sequential_fork_loop() {
        let mut a = Prng::new(17);
        let mut b = Prng::new(17);
        let forks = a.fork_n(5);
        for (i, mut f) in forks.into_iter().enumerate() {
            let mut g = b.fork(i as u64);
            assert_eq!(f.below(1_000_000), g.below(1_000_000));
        }
        // both parents consumed the same number of draws
        assert_eq!(a.below(1_000_000), b.below(1_000_000));
    }

    #[test]
    fn for_case_matches_a_single_fork_of_a_fresh_parent() {
        let direct = Prng::for_case(99, 7);
        let mut parent = Prng::new(99);
        let forked = parent.fork(7);
        let mut a = direct;
        let mut b = forked;
        for _ in 0..100 {
            assert_eq!(a.below(1_000_000), b.below(1_000_000));
        }
    }

    #[test]
    fn for_case_streams_are_pairwise_distinct_over_10k_draws() {
        // The fuzz harness's no-shared-streams guarantee: over 10k draws,
        // no two case indices may replay the same sequence.
        const STREAMS: usize = 16;
        const DRAWS: usize = 10_000;
        let sequences: Vec<Vec<u64>> = (0..STREAMS)
            .map(|i| {
                let mut r = Prng::for_case(0xF0CC_ACC1A, i as u64);
                (0..DRAWS).map(|_| r.next_u64_inner()).collect()
            })
            .collect();
        for i in 0..STREAMS {
            for j in (i + 1)..STREAMS {
                assert_ne!(
                    sequences[i], sequences[j],
                    "case streams {i} and {j} collided"
                );
            }
        }
        // different seeds must also give a distinct stream for equal indices
        let mut x = Prng::for_case(1, 3);
        let mut y = Prng::for_case(2, 3);
        assert_ne!(
            (0..8).map(|_| x.next_u64_inner()).collect::<Vec<_>>(),
            (0..8).map(|_| y.next_u64_inner()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Prng::new(2);
        let mut buf = [0u8; 11];
        r.try_fill_bytes(&mut buf).unwrap();
        assert!(buf.iter().any(|&b| b != 0));
    }
}
