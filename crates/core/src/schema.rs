//! Relational schemas: tables, columns, keys, and name resolution.
//!
//! The schema `s` is half of the parser input `x = {q, s}`. Schemas carry
//! both an internal snake_case name (what SQL references) and a natural
//! display name (what users say), because the gap between the two is exactly
//! what schema linking has to bridge.

use crate::error::{NliError, Result};
use serde::{Deserialize, Serialize};

use crate::value::DataType;

/// A column in a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Internal name used in SQL, e.g. `unit_price`.
    pub name: String,
    /// Natural-language surface form, e.g. `unit price`.
    pub display: String,
    pub dtype: DataType,
    pub primary_key: bool,
}

impl Column {
    pub fn new(name: &str, dtype: DataType) -> Self {
        Column {
            name: name.to_string(),
            display: name.replace('_', " "),
            dtype,
            primary_key: false,
        }
    }

    pub fn primary(mut self) -> Self {
        self.primary_key = true;
        self
    }

    pub fn with_display(mut self, display: &str) -> Self {
        self.display = display.to_string();
        self
    }
}

/// A table: a name plus ordered columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    pub name: String,
    pub display: String,
    pub columns: Vec<Column>,
}

impl Table {
    pub fn new(name: &str, columns: Vec<Column>) -> Self {
        Table {
            name: name.to_string(),
            display: name.replace('_', " "),
            columns,
        }
    }

    pub fn with_display(mut self, display: &str) -> Self {
        self.display = display.to_string();
        self
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column(&self, name: &str) -> Option<&Column> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Primary-key column index, if declared.
    pub fn primary_key(&self) -> Option<usize> {
        self.columns.iter().position(|c| c.primary_key)
    }
}

/// A fully resolved column reference: `(table index, column index)` into a
/// [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnRef {
    pub table: usize,
    pub column: usize,
}

/// A foreign-key edge: `from` references `to` (the primary side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ForeignKey {
    pub from: ColumnRef,
    pub to: ColumnRef,
}

/// A database schema: named tables plus foreign-key edges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Database identifier, e.g. `concert_singer`.
    pub name: String,
    /// Domain label (business, healthcare, ...), used by cross-domain
    /// dataset generators and reporting.
    pub domain: String,
    pub tables: Vec<Table>,
    pub foreign_keys: Vec<ForeignKey>,
}

impl Schema {
    pub fn new(name: &str, tables: Vec<Table>) -> Self {
        Schema {
            name: name.to_string(),
            domain: String::new(),
            tables,
            foreign_keys: Vec::new(),
        }
    }

    pub fn with_domain(mut self, domain: &str) -> Self {
        self.domain = domain.to_string();
        self
    }

    /// Declare a foreign key by names; errors if any name is unknown.
    pub fn add_foreign_key(
        &mut self,
        from_table: &str,
        from_column: &str,
        to_table: &str,
        to_column: &str,
    ) -> Result<()> {
        let from = self.resolve(from_table, from_column)?;
        let to = self.resolve(to_table, to_column)?;
        self.foreign_keys.push(ForeignKey { from, to });
        Ok(())
    }

    pub fn table_index(&self, name: &str) -> Option<usize> {
        self.tables
            .iter()
            .position(|t| t.name.eq_ignore_ascii_case(name))
    }

    pub fn table(&self, name: &str) -> Option<&Table> {
        self.table_index(name).map(|i| &self.tables[i])
    }

    /// Resolve a qualified `table.column` pair to a [`ColumnRef`].
    pub fn resolve(&self, table: &str, column: &str) -> Result<ColumnRef> {
        let ti = self
            .table_index(table)
            .ok_or_else(|| NliError::UnknownTable(table.to_string()))?;
        let ci = self.tables[ti]
            .column_index(column)
            .ok_or_else(|| NliError::UnknownColumn(format!("{table}.{column}")))?;
        Ok(ColumnRef {
            table: ti,
            column: ci,
        })
    }

    /// Resolve an *unqualified* column name; errors when ambiguous across
    /// tables (the classic NLI ambiguity the survey's Fig. 1 feedback loop
    /// exists to resolve).
    pub fn resolve_unqualified(&self, column: &str) -> Result<ColumnRef> {
        let mut hits = Vec::new();
        for (ti, t) in self.tables.iter().enumerate() {
            if let Some(ci) = t.column_index(column) {
                hits.push(ColumnRef {
                    table: ti,
                    column: ci,
                });
            }
        }
        match hits.len() {
            0 => Err(NliError::UnknownColumn(column.to_string())),
            1 => Ok(hits[0]),
            _ => Err(NliError::AmbiguousColumn(column.to_string())),
        }
    }

    pub fn column(&self, r: ColumnRef) -> &Column {
        &self.tables[r.table].columns[r.column]
    }

    /// Fully qualified `table.column` spelling.
    pub fn qualified_name(&self, r: ColumnRef) -> String {
        format!("{}.{}", self.tables[r.table].name, self.column(r).name)
    }

    /// Total number of columns across all tables.
    pub fn column_count(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }

    /// All column references, in schema order.
    pub fn all_columns(&self) -> Vec<ColumnRef> {
        let mut out = Vec::with_capacity(self.column_count());
        for (ti, t) in self.tables.iter().enumerate() {
            for ci in 0..t.columns.len() {
                out.push(ColumnRef {
                    table: ti,
                    column: ci,
                });
            }
        }
        out
    }

    /// Foreign-key edge between two tables (either direction), if any.
    pub fn fk_between(&self, a: usize, b: usize) -> Option<ForeignKey> {
        self.foreign_keys.iter().copied().find(|fk| {
            (fk.from.table == a && fk.to.table == b) || (fk.from.table == b && fk.to.table == a)
        })
    }

    /// Shortest join path between two tables over the foreign-key graph
    /// (BFS). Returns the sequence of table indices including endpoints, or
    /// `None` when the tables are disconnected.
    pub fn join_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if from == to {
            return Some(vec![from]);
        }
        let n = self.tables.len();
        if from >= n || to >= n {
            return None;
        }
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for fk in &self.foreign_keys {
            adj[fk.from.table].push(fk.to.table);
            adj[fk.to.table].push(fk.from.table);
        }
        let mut prev = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        prev[from] = from;
        queue.push_back(from);
        while let Some(t) = queue.pop_front() {
            if t == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = prev[cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &next in &adj[t] {
                if prev[next] == usize::MAX {
                    prev[next] = t;
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Structural fingerprint: a 64-bit FNV-1a hash over table names,
    /// column names, column types, key flags, and foreign-key edges — in
    /// schema order. Two schemas with the same fingerprint resolve every
    /// name to the same `(table, column)` position, so a query plan bound
    /// against one is valid for any database whose schema shares the
    /// fingerprint (the invalidation rule for prepared-plan caches:
    /// data may change freely, structure may not).
    ///
    /// The `name`/`domain`/`display` labels are deliberately excluded:
    /// they never affect name resolution.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for t in &self.tables {
            h.write_str(&t.name);
            for c in &t.columns {
                h.write_str(&c.name);
                h.write_str(c.dtype.name());
                h.write_u8(c.primary_key as u8);
            }
            h.write_u8(0xFF); // table boundary
        }
        for fk in &self.foreign_keys {
            h.write_usize(fk.from.table);
            h.write_usize(fk.from.column);
            h.write_usize(fk.to.table);
            h.write_usize(fk.to.column);
        }
        h.finish()
    }

    /// Human-readable serialization used in prompts and documentation:
    /// one line per table with columns, types, and key markers.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (ti, t) in self.tables.iter().enumerate() {
            out.push_str(&t.name);
            out.push('(');
            for (ci, c) in t.columns.iter().enumerate() {
                if ci > 0 {
                    out.push_str(", ");
                }
                out.push_str(&c.name);
                out.push(' ');
                out.push_str(c.dtype.name());
                if c.primary_key {
                    out.push_str(" PK");
                }
                if let Some(fk) = self.foreign_keys.iter().find(|fk| {
                    fk.from
                        == (ColumnRef {
                            table: ti,
                            column: ci,
                        })
                }) {
                    out.push_str(&format!(" -> {}", self.qualified_name(fk.to)));
                }
            }
            out.push_str(")\n");
        }
        out
    }
}

/// Minimal FNV-1a hasher; case-normalizes identifiers since all name
/// resolution in this module is case-insensitive.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write_str(&mut self, s: &str) {
        for b in s.bytes() {
            self.write_u8(b.to_ascii_lowercase());
        }
        self.write_u8(0); // terminator so "ab","c" != "a","bc"
    }

    fn write_usize(&mut self, n: usize) {
        for b in (n as u64).to_le_bytes() {
            self.write_u8(b);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        let mut s = Schema::new(
            "shop",
            vec![
                Table::new(
                    "products",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("name", DataType::Text),
                        Column::new("category", DataType::Text),
                    ],
                ),
                Table::new(
                    "sales",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("product_id", DataType::Int),
                        Column::new("amount", DataType::Float),
                    ],
                ),
                Table::new("stores", vec![Column::new("id", DataType::Int).primary()]),
            ],
        );
        s.add_foreign_key("sales", "product_id", "products", "id")
            .unwrap();
        s
    }

    #[test]
    fn resolve_qualified_and_unqualified() {
        let s = sample();
        let r = s.resolve("sales", "amount").unwrap();
        assert_eq!(s.qualified_name(r), "sales.amount");
        let r2 = s.resolve_unqualified("category").unwrap();
        assert_eq!(s.qualified_name(r2), "products.category");
    }

    #[test]
    fn ambiguous_unqualified_column_is_an_error() {
        let s = sample();
        assert!(matches!(
            s.resolve_unqualified("id"),
            Err(NliError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn unknown_names_error() {
        let s = sample();
        assert!(s.resolve("nope", "id").is_err());
        assert!(s.resolve("sales", "nope").is_err());
        assert!(s.resolve_unqualified("nope").is_err());
    }

    #[test]
    fn join_path_over_fk_graph() {
        let s = sample();
        let sales = s.table_index("sales").unwrap();
        let products = s.table_index("products").unwrap();
        let stores = s.table_index("stores").unwrap();
        assert_eq!(s.join_path(sales, products), Some(vec![sales, products]));
        assert_eq!(s.join_path(sales, sales), Some(vec![sales]));
        assert_eq!(s.join_path(sales, stores), None, "stores is disconnected");
    }

    #[test]
    fn describe_mentions_keys() {
        let s = sample();
        let d = s.describe();
        assert!(d.contains("id int PK"));
        assert!(d.contains("product_id int -> products.id"));
    }

    #[test]
    fn column_count_and_all_columns_agree() {
        let s = sample();
        assert_eq!(s.column_count(), s.all_columns().len());
        assert_eq!(s.column_count(), 7);
    }

    #[test]
    fn fingerprint_ignores_labels_but_sees_structure() {
        let a = sample();
        // Renaming the database or adding display labels must not change
        // the fingerprint...
        let mut b = sample();
        b.name = "other_db".into();
        b.domain = "retail".into();
        b.tables[0].display = "Product catalogue".into();
        b.tables[0].columns[1].display = "product name".into();
        assert_eq!(a.fingerprint(), b.fingerprint());

        // ...but any structural edit must.
        let mut c = sample();
        c.tables[0].columns[1].name = "title".into();
        assert_ne!(a.fingerprint(), c.fingerprint());

        let mut d = sample();
        d.tables[2]
            .columns
            .push(Column::new("city", DataType::Text));
        assert_ne!(a.fingerprint(), d.fingerprint());

        let mut e = sample();
        e.foreign_keys.clear();
        assert_ne!(a.fingerprint(), e.fingerprint());
    }

    #[test]
    fn fingerprint_is_case_insensitive_like_resolution() {
        let a = sample();
        let mut b = sample();
        b.tables[0].name = "PRODUCTS".into();
        b.tables[0].columns[0].name = "Id".into();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_separates_concatenation_ambiguity() {
        let a = Schema::new(
            "x",
            vec![Table::new("ab", vec![Column::new("c", DataType::Int)])],
        );
        let b = Schema::new(
            "x",
            vec![Table::new("a", vec![Column::new("bc", DataType::Int)])],
        );
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
