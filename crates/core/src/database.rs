//! In-memory databases: a [`Schema`] plus row data per table.
//!
//! This is the `D` in the survey's `E(e, D) → r`. Storage is deliberately a
//! plain row store — the workloads in this reproduction are small dev sets,
//! and a row store keeps execution semantics auditable.

use crate::batch::ColumnBatch;
use crate::error::{NliError, Result};
use crate::schema::Schema;
use crate::stats::{DatabaseStats, TableStats};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Row data for one table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TableData {
    pub rows: Vec<Vec<Value>>,
}

/// Process-wide source of stats epochs. Epochs are globally unique (never
/// reused across databases), so a plan cached under `(source, schema
/// fingerprint, epoch)` can only ever be served for row data identical to
/// what it was costed against.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

fn fresh_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// Derived, lazily computed views of the row store: the columnar form and
/// the table statistics, both tagged by the owning database's stats epoch.
/// Cleared whenever the database is mutated through [`Database::insert`];
/// code that mutates `Database::data` directly must call
/// [`Database::invalidate_derived`] itself.
#[derive(Default)]
pub(crate) struct Derived {
    /// 0 = not yet assigned (assigned on first read, or on mutation).
    epoch: AtomicU64,
    columnar: Mutex<Vec<Option<Arc<ColumnBatch>>>>,
    stats: Mutex<Option<Arc<DatabaseStats>>>,
}

impl Clone for Derived {
    fn clone(&self) -> Self {
        // A clone starts with identical row data, so it may keep the epoch
        // and the cached views; the sides diverge (and re-key) only when
        // one of them is mutated.
        Derived {
            epoch: AtomicU64::new(self.epoch.load(Ordering::Relaxed)),
            columnar: Mutex::new(self.columnar.lock().unwrap().clone()),
            stats: Mutex::new(self.stats.lock().unwrap().clone()),
        }
    }
}

impl std::fmt::Debug for Derived {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Derived")
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// A populated database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Database {
    pub schema: Schema,
    /// One [`TableData`] per `schema.tables` entry, index-aligned.
    pub data: Vec<TableData>,
    /// Cached derived views (columnar form, statistics) plus the stats
    /// epoch; never serialized, rebuilt on demand.
    #[serde(skip, default)]
    pub(crate) derived: Derived,
}

impl PartialEq for Database {
    fn eq(&self, other: &Self) -> bool {
        // Derived state is a cache of (schema, data); it never
        // participates in equality.
        self.schema == other.schema && self.data == other.data
    }
}

impl Database {
    /// An empty database over `schema`.
    pub fn empty(schema: Schema) -> Self {
        let data = vec![TableData::default(); schema.tables.len()];
        Database {
            schema,
            data,
            derived: Derived::default(),
        }
    }

    /// The database's *stats epoch*: a process-unique version number for
    /// its row data. Mutating the database through [`Database::insert`]
    /// (or calling [`Database::invalidate_derived`]) moves it to a fresh
    /// value, so `(schema fingerprint, stats epoch)` identifies the exact
    /// data a cost-based plan was built against — the plan-cache key
    /// ([`crate::PlanCache`]).
    pub fn stats_epoch(&self) -> u64 {
        let cur = self.derived.epoch.load(Ordering::Relaxed);
        if cur != 0 {
            return cur;
        }
        let fresh = fresh_epoch();
        match self
            .derived
            .epoch
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => fresh,
            Err(won) => won,
        }
    }

    /// Drop all cached derived views and return the stats epoch to the
    /// unassigned state — the next [`Database::stats_epoch`] read draws a
    /// fresh, never-before-seen value. Call after mutating
    /// [`Database::data`] directly; [`Database::insert`] does it for you.
    pub fn invalidate_derived(&mut self) {
        *self.derived.epoch.get_mut() = 0;
        self.derived.columnar.get_mut().unwrap().clear();
        *self.derived.stats.get_mut().unwrap() = None;
    }

    /// The columnar form ([`ColumnBatch`]) of the table at schema index
    /// `ti`, built on first use and cached until the database is mutated.
    pub fn columnar(&self, ti: usize) -> Arc<ColumnBatch> {
        let mut cache = self.derived.columnar.lock().unwrap();
        if cache.len() < self.data.len() {
            cache.resize(self.data.len(), None);
        }
        if let Some(batch) = &cache[ti] {
            return Arc::clone(batch);
        }
        let dtypes: Vec<_> = self.schema.tables[ti]
            .columns
            .iter()
            .map(|c| c.dtype)
            .collect();
        let batch = Arc::new(ColumnBatch::from_rows(&dtypes, &self.data[ti].rows));
        cache[ti] = Some(Arc::clone(&batch));
        batch
    }

    /// Table statistics for the whole database, computed on first use
    /// (from the columnar form) and cached until the database is mutated.
    pub fn stats(&self) -> Arc<DatabaseStats> {
        if let Some(stats) = self.derived.stats.lock().unwrap().as_ref() {
            return Arc::clone(stats);
        }
        // Build outside the stats lock: columnar() takes its own lock.
        let tables = (0..self.data.len())
            .map(|ti| TableStats::compute(&self.columnar(ti)))
            .collect();
        let stats = Arc::new(DatabaseStats { tables });
        let mut slot = self.derived.stats.lock().unwrap();
        if let Some(existing) = slot.as_ref() {
            return Arc::clone(existing);
        }
        *slot = Some(Arc::clone(&stats));
        stats
    }

    /// Insert a row into the named table, checking arity and (non-NULL)
    /// column types.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<()> {
        let ti = self
            .schema
            .table_index(table)
            .ok_or_else(|| NliError::UnknownTable(table.to_string()))?;
        let t = &self.schema.tables[ti];
        if row.len() != t.columns.len() {
            return Err(NliError::Execution(format!(
                "table {table} expects {} values, got {}",
                t.columns.len(),
                row.len()
            )));
        }
        for (c, v) in t.columns.iter().zip(&row) {
            if let Some(dt) = v.data_type() {
                if dt != c.dtype {
                    return Err(NliError::Execution(format!(
                        "column {}.{} expects {}, got {}",
                        table,
                        c.name,
                        c.dtype.name(),
                        dt.name()
                    )));
                }
            }
        }
        self.data[ti].rows.push(row);
        self.invalidate_derived();
        Ok(())
    }

    /// Insert many rows; stops at the first error.
    pub fn insert_all(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<()> {
        for row in rows {
            self.insert(table, row)?;
        }
        Ok(())
    }

    /// Rows of the table at schema index `ti`.
    pub fn rows(&self, ti: usize) -> &[Vec<Value>] {
        &self.data[ti].rows
    }

    /// Rows of the named table.
    pub fn rows_of(&self, table: &str) -> Result<&[Vec<Value>]> {
        let ti = self
            .schema
            .table_index(table)
            .ok_or_else(|| NliError::UnknownTable(table.to_string()))?;
        Ok(&self.data[ti].rows)
    }

    /// Total number of stored rows.
    pub fn row_count(&self) -> usize {
        self.data.iter().map(|t| t.rows.len()).sum()
    }

    /// Distinct non-NULL values of one column, in first-seen order. Schema
    /// linking and value-grounded parsing use this to match question tokens
    /// against database *content* (the BIRD-style challenge).
    pub fn distinct_values(&self, table: usize, column: usize) -> Vec<Value> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for row in &self.data[table].rows {
            let v = &row[column];
            if v.is_null() {
                continue;
            }
            if seen.insert(v.canonical()) {
                out.push(v.clone());
            }
        }
        out
    }

    /// Verify referential integrity of all declared foreign keys.
    pub fn check_foreign_keys(&self) -> Result<()> {
        for fk in &self.schema.foreign_keys {
            let targets: std::collections::HashSet<String> = self.data[fk.to.table]
                .rows
                .iter()
                .map(|r| r[fk.to.column].canonical())
                .collect();
            for row in &self.data[fk.from.table].rows {
                let v = &row[fk.from.column];
                if v.is_null() {
                    continue;
                }
                if !targets.contains(&v.canonical()) {
                    return Err(NliError::Execution(format!(
                        "dangling foreign key {} = {}",
                        self.schema.qualified_name(fk.from),
                        v
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Table};
    use crate::value::DataType;

    fn db() -> Database {
        let mut schema = Schema::new(
            "shop",
            vec![
                Table::new(
                    "products",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("name", DataType::Text),
                    ],
                ),
                Table::new(
                    "sales",
                    vec![
                        Column::new("product_id", DataType::Int),
                        Column::new("amount", DataType::Float),
                    ],
                ),
            ],
        );
        schema
            .add_foreign_key("sales", "product_id", "products", "id")
            .unwrap();
        Database::empty(schema)
    }

    #[test]
    fn insert_checks_arity_and_types() {
        let mut d = db();
        d.insert("products", vec![1.into(), "ball".into()]).unwrap();
        assert!(d.insert("products", vec![1.into()]).is_err());
        assert!(d
            .insert("products", vec!["oops".into(), "ball".into()])
            .is_err());
        assert!(d.insert("nope", vec![]).is_err());
    }

    #[test]
    fn null_is_accepted_in_any_column() {
        let mut d = db();
        d.insert("products", vec![Value::Null, Value::Null])
            .unwrap();
        assert_eq!(d.row_count(), 1);
    }

    #[test]
    fn distinct_values_dedup_in_order() {
        let mut d = db();
        d.insert_all(
            "products",
            vec![
                vec![1.into(), "ball".into()],
                vec![2.into(), "bat".into()],
                vec![3.into(), "ball".into()],
                vec![4.into(), Value::Null],
            ],
        )
        .unwrap();
        let vals = d.distinct_values(0, 1);
        assert_eq!(vals, vec![Value::from("ball"), Value::from("bat")]);
    }

    #[test]
    fn foreign_key_check_detects_dangles() {
        let mut d = db();
        d.insert("products", vec![1.into(), "ball".into()]).unwrap();
        d.insert("sales", vec![1.into(), 9.5.into()]).unwrap();
        d.check_foreign_keys().unwrap();
        d.insert("sales", vec![99.into(), 1.0.into()]).unwrap();
        assert!(d.check_foreign_keys().is_err());
    }
}
