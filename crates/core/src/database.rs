//! In-memory databases: a [`Schema`] plus row data per table.
//!
//! This is the `D` in the survey's `E(e, D) → r`. Storage is deliberately a
//! plain row store — the workloads in this reproduction are small dev sets,
//! and a row store keeps execution semantics auditable.

use crate::error::{NliError, Result};
use crate::schema::Schema;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Row data for one table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TableData {
    pub rows: Vec<Vec<Value>>,
}

/// A populated database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Database {
    pub schema: Schema,
    /// One [`TableData`] per `schema.tables` entry, index-aligned.
    pub data: Vec<TableData>,
}

impl Database {
    /// An empty database over `schema`.
    pub fn empty(schema: Schema) -> Self {
        let data = vec![TableData::default(); schema.tables.len()];
        Database { schema, data }
    }

    /// Insert a row into the named table, checking arity and (non-NULL)
    /// column types.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<()> {
        let ti = self
            .schema
            .table_index(table)
            .ok_or_else(|| NliError::UnknownTable(table.to_string()))?;
        let t = &self.schema.tables[ti];
        if row.len() != t.columns.len() {
            return Err(NliError::Execution(format!(
                "table {table} expects {} values, got {}",
                t.columns.len(),
                row.len()
            )));
        }
        for (c, v) in t.columns.iter().zip(&row) {
            if let Some(dt) = v.data_type() {
                if dt != c.dtype {
                    return Err(NliError::Execution(format!(
                        "column {}.{} expects {}, got {}",
                        table,
                        c.name,
                        c.dtype.name(),
                        dt.name()
                    )));
                }
            }
        }
        self.data[ti].rows.push(row);
        Ok(())
    }

    /// Insert many rows; stops at the first error.
    pub fn insert_all(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<()> {
        for row in rows {
            self.insert(table, row)?;
        }
        Ok(())
    }

    /// Rows of the table at schema index `ti`.
    pub fn rows(&self, ti: usize) -> &[Vec<Value>] {
        &self.data[ti].rows
    }

    /// Rows of the named table.
    pub fn rows_of(&self, table: &str) -> Result<&[Vec<Value>]> {
        let ti = self
            .schema
            .table_index(table)
            .ok_or_else(|| NliError::UnknownTable(table.to_string()))?;
        Ok(&self.data[ti].rows)
    }

    /// Total number of stored rows.
    pub fn row_count(&self) -> usize {
        self.data.iter().map(|t| t.rows.len()).sum()
    }

    /// Distinct non-NULL values of one column, in first-seen order. Schema
    /// linking and value-grounded parsing use this to match question tokens
    /// against database *content* (the BIRD-style challenge).
    pub fn distinct_values(&self, table: usize, column: usize) -> Vec<Value> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for row in &self.data[table].rows {
            let v = &row[column];
            if v.is_null() {
                continue;
            }
            if seen.insert(v.canonical()) {
                out.push(v.clone());
            }
        }
        out
    }

    /// Verify referential integrity of all declared foreign keys.
    pub fn check_foreign_keys(&self) -> Result<()> {
        for fk in &self.schema.foreign_keys {
            let targets: std::collections::HashSet<String> = self.data[fk.to.table]
                .rows
                .iter()
                .map(|r| r[fk.to.column].canonical())
                .collect();
            for row in &self.data[fk.from.table].rows {
                let v = &row[fk.from.column];
                if v.is_null() {
                    continue;
                }
                if !targets.contains(&v.canonical()) {
                    return Err(NliError::Execution(format!(
                        "dangling foreign key {} = {}",
                        self.schema.qualified_name(fk.from),
                        v
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Table};
    use crate::value::DataType;

    fn db() -> Database {
        let mut schema = Schema::new(
            "shop",
            vec![
                Table::new(
                    "products",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("name", DataType::Text),
                    ],
                ),
                Table::new(
                    "sales",
                    vec![
                        Column::new("product_id", DataType::Int),
                        Column::new("amount", DataType::Float),
                    ],
                ),
            ],
        );
        schema
            .add_foreign_key("sales", "product_id", "products", "id")
            .unwrap();
        Database::empty(schema)
    }

    #[test]
    fn insert_checks_arity_and_types() {
        let mut d = db();
        d.insert("products", vec![1.into(), "ball".into()]).unwrap();
        assert!(d.insert("products", vec![1.into()]).is_err());
        assert!(d
            .insert("products", vec!["oops".into(), "ball".into()])
            .is_err());
        assert!(d.insert("nope", vec![]).is_err());
    }

    #[test]
    fn null_is_accepted_in_any_column() {
        let mut d = db();
        d.insert("products", vec![Value::Null, Value::Null])
            .unwrap();
        assert_eq!(d.row_count(), 1);
    }

    #[test]
    fn distinct_values_dedup_in_order() {
        let mut d = db();
        d.insert_all(
            "products",
            vec![
                vec![1.into(), "ball".into()],
                vec![2.into(), "bat".into()],
                vec![3.into(), "ball".into()],
                vec![4.into(), Value::Null],
            ],
        )
        .unwrap();
        let vals = d.distinct_values(0, 1);
        assert_eq!(vals, vec![Value::from("ball"), Value::from("bat")]);
    }

    #[test]
    fn foreign_key_check_detects_dangles() {
        let mut d = db();
        d.insert("products", vec![1.into(), "ball".into()]).unwrap();
        d.insert("sales", vec![1.into(), 9.5.into()]).unwrap();
        d.check_foreign_keys().unwrap();
        d.insert("sales", vec![99.into(), 1.0.into()]).unwrap();
        assert!(d.check_foreign_keys().is_err());
    }
}
