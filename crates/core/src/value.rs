//! Dynamically typed cell values and their column types.
//!
//! Every table cell in the workspace is a [`Value`]. The engine performs the
//! small amount of coercion real NLI stacks rely on (integer/float
//! comparison, textual equality case-folded at call sites that need it) and
//! keeps everything else strict so type errors surface as errors rather than
//! silent `NULL`s.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Column (and literal) data types supported by the tabular substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
    /// Calendar date (no time-of-day component).
    Date,
}

impl DataType {
    /// Whether values of this type participate in arithmetic and numeric
    /// aggregates (`SUM`, `AVG`, ...).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// Whether `<`/`>` comparisons on this type are meaningful for query
    /// generation (numerics and dates).
    pub fn is_ordered(self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Date)
    }

    /// Lower-case SQL-ish name, used by schema printers and prompts.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Text => "text",
            DataType::Bool => "bool",
            DataType::Date => "date",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A calendar date. Kept deliberately simple (no time zones, no leap-second
/// pedantry): ordering and formatting are what query execution needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    pub year: i32,
    pub month: u8,
    pub day: u8,
}

impl Date {
    /// Construct a date, clamping month/day into valid calendar ranges.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        let month = month.clamp(1, 12);
        let day = day.clamp(1, days_in_month(year, month));
        Date { year, month, day }
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split('-');
        let year: i32 = parts.next()?.parse().ok()?;
        let month: u8 = parts.next()?.parse().ok()?;
        let day: u8 = parts.next()?.parse().ok()?;
        if parts.next().is_some() || !(1..=12).contains(&month) {
            return None;
        }
        if day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(Date { year, month, day })
    }

    /// Calendar quarter (1..=4), used by the sales examples from Fig. 2.
    pub fn quarter(&self) -> u8 {
        (self.month - 1) / 3 + 1
    }

    /// Day of week, 0 = Monday .. 6 = Sunday (Sakamoto's method).
    pub fn weekday(&self) -> u8 {
        const T: [i32; 12] = [0, 3, 2, 5, 0, 3, 5, 1, 4, 6, 2, 4];
        let mut y = self.year;
        if self.month < 3 {
            y -= 1;
        }
        let dow_sun0 =
            (y + y / 4 - y / 100 + y / 400 + T[(self.month - 1) as usize] + self.day as i32)
                .rem_euclid(7);
        // convert Sunday=0 to Monday=0
        ((dow_sun0 + 6) % 7) as u8
    }
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 30,
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A dynamically typed cell value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Text(String),
    Bool(bool),
    Date(Date),
}

impl Value {
    /// Static type of this value, `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used by arithmetic and aggregates; integers widen to
    /// floats, everything else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL-style three-valued comparison: `None` when either side is NULL or
    /// the types are incomparable.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// SQL equality (`=`): NULL never equals anything.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.compare(other).map(|o| o == Ordering::Equal)
    }

    /// Total ordering for sorting result sets: NULLs first, then by type
    /// rank, then by value. Unlike [`Value::compare`], this never fails —
    /// execution engines need *some* deterministic sort order.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Date(_) => 3,
                Value::Text(_) => 4,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a.total_cmp(&b),
                _ => rank(self).cmp(&rank(other)),
            },
        }
    }

    /// Canonical text used for grouping keys and result comparison. Floats
    /// are formatted with enough precision to round-trip, and integral
    /// floats collapse to their integer spelling so `2.0` groups with `2`.
    pub fn canonical(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{}", *f as i64)
                } else {
                    format!("{f}")
                }
            }
            Value::Text(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
            Value::Date(d) => d.to_string(),
        }
    }
}

impl PartialEq for Value {
    /// Structural equality used by result-set comparison: unlike SQL `=`,
    /// `NULL == NULL` here, and `Int`/`Float` compare numerically.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(s) => write!(f, "{s}"),
            other => f.write_str(&other.canonical()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_parse_roundtrip() {
        let d = Date::parse("2024-03-09").unwrap();
        assert_eq!(d, Date::new(2024, 3, 9));
        assert_eq!(d.to_string(), "2024-03-09");
        assert_eq!(d.quarter(), 1);
    }

    #[test]
    fn date_parse_rejects_invalid() {
        assert!(Date::parse("2024-13-01").is_none());
        assert!(Date::parse("2023-02-29").is_none());
        assert!(Date::parse("2024-02-29").is_some()); // leap year
        assert!(Date::parse("2024-02").is_none());
        assert!(Date::parse("2024-02-01-05").is_none());
    }

    #[test]
    fn weekday_known_dates() {
        assert_eq!(Date::new(2024, 1, 1).weekday(), 0); // Monday
        assert_eq!(Date::new(2024, 1, 7).weekday(), 6); // Sunday
        assert_eq!(Date::new(2000, 1, 1).weekday(), 5); // Saturday
        assert_eq!(Date::new(2026, 7, 6).weekday(), 0); // Monday
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            Value::Int(3).compare(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(2.5).compare(&Value::Int(3)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn null_propagates_in_sql_comparison() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        // ... but structural equality treats NULLs as equal.
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn canonical_collapses_integral_floats() {
        assert_eq!(Value::Float(2.0).canonical(), "2");
        assert_eq!(Value::Float(2.5).canonical(), "2.5");
        assert_eq!(Value::Int(2).canonical(), "2");
    }

    #[test]
    fn total_cmp_is_total_over_mixed_types() {
        let mut vals = [
            Value::Text("a".into()),
            Value::Null,
            Value::Int(5),
            Value::Float(1.5),
            Value::Bool(true),
            Value::Date(Date::new(2020, 1, 1)),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
    }

    #[test]
    fn incomparable_types_return_none() {
        assert_eq!(Value::Text("1".into()).compare(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).compare(&Value::Int(1)), None);
    }
}
