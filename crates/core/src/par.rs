//! Deterministic scoped parallel runtime.
//!
//! The evaluation harness is embarrassingly parallel — per-example metric
//! rows, per-variant test-suite executions, per-example dataset synthesis —
//! but reproduction harnesses live or die on replayability, so parallelism
//! here comes with a *determinism contract*:
//!
//! 1. **Order-stable reduction.** [`par_map`] returns results in item-index
//!    order no matter which worker computed which item, so folds over the
//!    output (including float summation) associate exactly as the
//!    sequential loop would.
//! 2. **Pre-forked randomness.** Callers fork one child [`crate::Prng`] per
//!    item *sequentially* (cheap: a few u64 ops each) before fanning out,
//!    so the stream each item sees is independent of scheduling.
//! 3. **Sequential oracle.** `NLI_THREADS=1` (or [`with_threads`]`(1, ..)`)
//!    runs the plain sequential loop on the calling thread; every migrated
//!    path is tested byte-identical against it.
//!
//! The pool itself is a small scoped work-stealing scheduler: items are
//! dealt to per-worker deques in contiguous blocks (cache locality),
//! workers drain their own deque from the front and steal from the back of
//! their neighbours' when empty. `std::thread::scope` keeps everything
//! borrow-friendly — no `'static` bounds, no channels, no external deps.
//!
//! Worker count comes from the `NLI_THREADS` environment variable, falling
//! back to the machine's available parallelism (capped at 8 so test runs
//! don't oversubscribe CI boxes); [`with_threads`] overrides it lexically
//! for the current thread, which nested `par_map` calls on that thread
//! observe. A `par_map` issued from *inside* a worker runs sequentially on
//! that worker — the outermost fan-out owns the hardware — so parallelize
//! the outermost loop and let inner layers inherit.

use crate::obs;
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::OnceLock;

/// Upper bound on workers regardless of configuration; far above any win
/// for these workloads, it only guards against `NLI_THREADS=100000`.
const MAX_THREADS: usize = 64;

/// Cached handles into the global registry so the hot path pays a few
/// relaxed atomic adds per *fan-out* (never per item), not a registry
/// lookup. See DESIGN.md §3.3 for the metric names.
struct ParObs {
    /// Deterministic: parallel fan-outs issued (sequential fallbacks are
    /// not counted — at `NLI_THREADS=1` this stays 0).
    fanouts: obs::Counter,
    /// Deterministic: items dispatched across all fan-outs.
    items: obs::Counter,
    /// Deterministic: worker count of the most recent fan-out.
    workers: obs::Gauge,
    /// Scheduling: successful steals, summed over workers.
    steals: obs::Counter,
    /// Scheduling: times a worker drained its own deque and switched to
    /// scanning its neighbours'.
    idle_transitions: obs::Counter,
}

fn par_obs() -> &'static ParObs {
    static OBS: OnceLock<ParObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = obs::global();
        ParObs {
            fanouts: r.counter("par.fanouts"),
            items: r.counter("par.items"),
            workers: r.gauge("par.workers"),
            steals: r.scheduling_counter("par.steals"),
            idle_transitions: r.scheduling_counter("par.idle_transitions"),
        }
    })
}

/// One worker's results plus its scheduling tallies, recorded into the
/// registry after the join (observation only — the reduction below never
/// reads them).
struct WorkerPart<R> {
    results: Vec<(usize, R)>,
    steals: u64,
    idle_transitions: u64,
}

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The worker count [`par_map`] will use on this thread: the innermost
/// [`with_threads`] override if one is active, else `NLI_THREADS`, else
/// available parallelism capped at 8.
pub fn thread_count() -> usize {
    if let Some(n) = OVERRIDE.with(|c| c.get()) {
        return n;
    }
    match std::env::var("NLI_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n.min(MAX_THREADS),
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Run `f` with [`thread_count`] pinned to `threads` on the current thread
/// (nests; restores the previous value on exit, including unwinds). This is
/// how tests hold the parallel harness against its sequential oracle
/// without touching process-global environment state.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|c| c.replace(Some(threads.clamp(1, MAX_THREADS))));
    let _restore = Restore(prev);
    f()
}

/// Map `f` over `items` on the configured number of workers, returning
/// results in item order. `f` receives `(index, &item)`; with one worker
/// (or one item) this is exactly the sequential loop.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_threads(thread_count(), items, f)
}

/// [`par_map`] with an explicit worker count (ignores the configuration).
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1)).min(MAX_THREADS);
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Deal contiguous index blocks to per-worker deques. Workers pop their
    // own block front-to-back (locality) and steal from the *back* of a
    // victim's deque, so a thief takes the work its owner would reach last.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| Mutex::new((w * n / threads..(w + 1) * n / threads).collect()))
        .collect();

    let queues = &queues;
    let f = &f;
    let parts: Vec<WorkerPart<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                s.spawn(move || {
                    // Nested par_map calls made from inside an item run
                    // sequentially on this worker: the outer fan-out
                    // already owns the hardware, and recursive pools would
                    // oversubscribe it without changing any result.
                    with_threads(1, || {
                        let mut part = WorkerPart {
                            results: Vec::with_capacity(n / threads + 1),
                            steals: 0,
                            idle_transitions: 0,
                        };
                        loop {
                            // The guard must drop before stealing: holding
                            // our own queue's lock while locking a victim's
                            // deadlocks the moment two idle workers steal
                            // from each other.
                            let own = queues[w].lock().pop_front();
                            if own.is_none() {
                                part.idle_transitions += 1;
                            }
                            let stolen = own.is_none();
                            match own.or_else(|| steal(queues, w)) {
                                Some(i) => {
                                    if stolen {
                                        part.steals += 1;
                                    }
                                    part.results.push((i, f(i, &items[i])));
                                }
                                // No queue had work at scan time, and work
                                // is never re-enqueued, so this worker is
                                // done.
                                None => break,
                            }
                        }
                        part
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });

    // Record pool telemetry once per fan-out, after the join — observation
    // only, nothing below reads it (see the obs module's determinism
    // contract).
    let o = par_obs();
    o.fanouts.inc();
    o.items.add(n as u64);
    o.workers.set(threads as u64);
    let registry = obs::global();
    for (w, part) in parts.iter().enumerate() {
        o.steals.add(part.steals);
        o.idle_transitions.add(part.idle_transitions);
        registry
            .scheduling_counter(&format!("par.worker.{w}.tasks"))
            .add(part.results.len() as u64);
        registry
            .scheduling_counter(&format!("par.worker.{w}.steals"))
            .add(part.steals);
    }

    // Order-stable reduction: place every (index, result) into its slot.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for part in parts {
        for (i, r) in part.results {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|o| o.expect("par_map: every index is processed exactly once"))
        .collect()
}

fn steal(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    let t = queues.len();
    (1..t).find_map(|d| queues[(me + d) % t].lock().pop_back())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_item_order_for_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let got = par_map_threads(threads, &items, |_, x| x * x);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let n = 1000;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..n).collect();
        par_map_threads(8, &items, |i, _| counts[i].fetch_add(1, Ordering::SeqCst));
        assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_threads(4, &empty, |_, x| *x).is_empty());
        assert_eq!(par_map_threads(4, &[7u32], |i, x| (i, *x)), vec![(0, 7)]);
    }

    #[test]
    fn uneven_splits_cover_all_items() {
        // n not divisible by threads; n < threads; n == threads
        for (n, threads) in [(10, 3), (3, 8), (8, 8), (65, 64)] {
            let items: Vec<usize> = (0..n).collect();
            let got = par_map_threads(threads, &items, |i, _| i);
            assert_eq!(got, items, "n={n} threads={threads}");
        }
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        with_threads(3, || {
            assert_eq!(thread_count(), 3);
            with_threads(1, || assert_eq!(thread_count(), 1));
            assert_eq!(thread_count(), 3);
        });
    }

    #[test]
    fn with_threads_restores_on_panic() {
        with_threads(5, || {
            let r = std::panic::catch_unwind(|| with_threads(2, || panic!("boom")));
            assert!(r.is_err());
            assert_eq!(thread_count(), 5);
        });
    }

    #[test]
    fn float_reduction_is_bit_identical_across_thread_counts() {
        // The classic nondeterminism trap: float sums depend on association
        // order. Order-stable reduction makes them identical.
        let items: Vec<f64> = (0..1023).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let fold = |threads| {
            par_map_threads(threads, &items, |_, x| x * 1.000000001)
                .iter()
                .sum::<f64>()
                .to_bits()
        };
        let oracle = fold(1);
        for threads in [2, 4, 8] {
            assert_eq!(fold(threads), oracle, "threads={threads}");
        }
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        let r = std::panic::catch_unwind(|| {
            par_map_threads(4, &items, |i, _| {
                if i == 33 {
                    panic!("worker 33 failed");
                }
                i
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn idle_workers_stealing_from_each_other_never_deadlock() {
        // Regression: a worker's own-queue guard must drop before the
        // steal scan locks a victim's queue. One item per worker makes
        // everyone go idle and steal-scan at once, every round; holding
        // the own-queue lock across the scan deadlocked here.
        for round in 0..200 {
            let items: Vec<usize> = (0..8).collect();
            let got = par_map_threads(8, &items, |i, _| i + round);
            assert_eq!(got.len(), 8, "round {round}");
        }
    }

    #[test]
    fn stealing_balances_a_skewed_workload() {
        // One pathological item must not serialize the rest: with stealing,
        // total wall-clock stays well under sum-of-items. We can't time
        // reliably in CI, so just assert completion with heavy skew.
        let items: Vec<u64> = (0..128)
            .map(|i| if i == 0 { 200_000 } else { 50 })
            .collect();
        let got = par_map_threads(8, &items, |_, &spin| {
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(k).rotate_left(1);
            }
            acc
        });
        assert_eq!(got.len(), 128);
    }
}
