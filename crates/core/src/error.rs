//! Workspace-wide error type.

use std::fmt;

/// Errors shared across the NLI workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NliError {
    /// A referenced table does not exist in the schema.
    UnknownTable(String),
    /// A referenced column does not exist (payload may be qualified).
    UnknownColumn(String),
    /// An unqualified column name matches several tables.
    AmbiguousColumn(String),
    /// Lexing/parsing failure of a formal language (SQL or VQL).
    Syntax(String),
    /// A well-formed program failed during execution.
    Execution(String),
    /// The semantic parser could not produce a program for the question.
    Parse(String),
    /// The (simulated) language model refused or degenerated.
    Model(String),
}

impl fmt::Display for NliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NliError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            NliError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            NliError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            NliError::Syntax(m) => write!(f, "syntax error: {m}"),
            NliError::Execution(m) => write!(f, "execution error: {m}"),
            NliError::Parse(m) => write!(f, "semantic parse error: {m}"),
            NliError::Model(m) => write!(f, "model error: {m}"),
        }
    }
}

impl std::error::Error for NliError {}

/// Workspace result alias.
pub type Result<T> = std::result::Result<T, NliError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_prefixed() {
        assert_eq!(
            NliError::UnknownTable("t".into()).to_string(),
            "unknown table: t"
        );
        assert!(NliError::Syntax("x".into())
            .to_string()
            .starts_with("syntax"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&NliError::Parse("p".into()));
    }
}
