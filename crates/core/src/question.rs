//! Natural-language questions, languages, and multi-turn dialogues.
//!
//! Single-turn datasets pair one [`NlQuestion`] with one gold program;
//! multi-turn datasets (SParC/CoSQL/ChartDialogs-style) chain [`Turn`]s into
//! a [`Dialogue`] where later questions depend on earlier context.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Query language. English is native; the others are produced by the
/// multilingual generators via deterministic pseudo-localization (see
/// `nli-data::multilingual`), which preserves the *structure* of the
/// cross-lingual challenge (surface forms no longer match schema names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Language {
    English,
    Chinese,
    Vietnamese,
    Portuguese,
    Russian,
}

impl Language {
    pub fn name(self) -> &'static str {
        match self {
            Language::English => "English",
            Language::Chinese => "Chinese",
            Language::Vietnamese => "Vietnamese",
            Language::Portuguese => "Portuguese",
            Language::Russian => "Russian",
        }
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A natural-language question `q` posed against some database schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NlQuestion {
    pub text: String,
    pub language: Language,
    /// Optional external knowledge / evidence string, the BIRD-style hint
    /// that bridges the question with database content.
    pub evidence: Option<String>,
}

impl NlQuestion {
    pub fn new(text: impl Into<String>) -> Self {
        NlQuestion {
            text: text.into(),
            language: Language::English,
            evidence: None,
        }
    }

    pub fn in_language(mut self, language: Language) -> Self {
        self.language = language;
        self
    }

    pub fn with_evidence(mut self, evidence: impl Into<String>) -> Self {
        self.evidence = Some(evidence.into());
        self
    }
}

impl fmt::Display for NlQuestion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// One exchange in a conversation: the user question plus, once answered,
/// the system's functional expression rendered as text (SQL or VQL).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Turn {
    pub question: NlQuestion,
    /// Gold (or produced) program for this turn, as text.
    pub program: String,
}

/// A multi-turn conversation over a single database.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dialogue {
    pub turns: Vec<Turn>,
}

impl Dialogue {
    pub fn new() -> Self {
        Dialogue::default()
    }

    pub fn push(&mut self, question: NlQuestion, program: impl Into<String>) {
        self.turns.push(Turn {
            question,
            program: program.into(),
        });
    }

    pub fn len(&self) -> usize {
        self.turns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.turns.is_empty()
    }

    /// Conversation context preceding turn `i` (exclusive).
    pub fn context(&self, i: usize) -> &[Turn] {
        &self.turns[..i.min(self.turns.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn question_builders_compose() {
        let q = NlQuestion::new("how many singers are there?")
            .in_language(Language::Chinese)
            .with_evidence("singers are rows of the singer table");
        assert_eq!(q.language, Language::Chinese);
        assert!(q.evidence.is_some());
        assert_eq!(q.to_string(), "how many singers are there?");
    }

    #[test]
    fn dialogue_context_is_strictly_prior_turns() {
        let mut d = Dialogue::new();
        d.push(NlQuestion::new("show all singers"), "SELECT * FROM singer");
        d.push(NlQuestion::new("only the french ones"), "SELECT ...");
        assert_eq!(d.context(0).len(), 0);
        assert_eq!(d.context(1).len(), 1);
        assert_eq!(d.context(5).len(), 2);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }
}
