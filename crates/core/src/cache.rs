//! Schema-fingerprinted LRU cache for prepared query plans.
//!
//! Execution-based evaluation re-runs the same query text against many
//! database variants that share one schema (test-suite accuracy), and runs
//! whole corpora of distinct queries against one database. [`PlanCache`]
//! makes the parse/plan step amortize across both axes: entries are keyed
//! by `(source text, schema fingerprint, stats epoch)`, so a plan is reused
//! exactly when re-planning would be guaranteed to produce the same result,
//! and is invalidated — by key miss, not by eviction scans — the moment the
//! schema structurally changes or the table statistics a cost-based plan
//! was built against move to a new epoch (see
//! [`crate::Database::stats_epoch`]). Rule-based planning, which never
//! reads statistics, passes epoch 0 so its entries survive data mutations.

use crate::error::Result;
use crate::obs;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: the expression source plus [`crate::Schema::fingerprint`]
/// plus the stats epoch the plan was costed against (0 for plans that do
/// not depend on statistics).
type Key = (String, u64, u64);

#[derive(Debug)]
struct Slot<P> {
    plan: Arc<P>,
    /// Logical timestamp of last use; smallest is evicted first.
    last_used: u64,
}

/// Registry mirrors of the cache's internal counters (see
/// [`PlanCache::attach_obs`]). Updated under the cache mutex, so the
/// mirrored values can only trail the internal ones between operations,
/// never disagree after one completes. In debug builds a shadow copy of
/// every count this cache has pushed into its mirrors is kept alongside
/// and asserted against the internal counters on every bump, so mirror
/// drift fails loudly at the exact operation that introduced it instead
/// of surfacing as a confusing trace diff later.
#[derive(Debug)]
struct ObsCounters {
    hits: obs::Counter,
    misses: obs::Counter,
    evictions: obs::Counter,
    duplicate_inserts: obs::Counter,
    /// What this cache believes it has mirrored (the registry counters may
    /// aggregate several caches sharing a prefix, so they can't be compared
    /// against [`CacheStats`] directly — this per-cache shadow can).
    #[cfg(debug_assertions)]
    shadow: ShadowCounts,
}

#[cfg(debug_assertions)]
#[derive(Debug, Default)]
struct ShadowCounts {
    hits: u64,
    misses: u64,
    evictions: u64,
    duplicate_inserts: u64,
}

#[derive(Debug)]
struct Inner<P> {
    slots: HashMap<Key, Slot<P>>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    duplicate_inserts: u64,
    obs: Option<ObsCounters>,
}

/// Bump one internal counter and its registry mirror together (both under
/// the cache mutex), then debug-assert the mirror's per-cache shadow still
/// equals the internal count — the "mirrors always agree" invariant.
macro_rules! bump_mirrored {
    ($inner:expr, $field:ident, $what:literal) => {{
        $inner.$field += 1;
        #[cfg(debug_assertions)]
        let internal = $inner.$field;
        if let Some(o) = $inner.obs.as_mut() {
            o.$field.inc();
            #[cfg(debug_assertions)]
            {
                o.shadow.$field += 1;
                debug_assert_eq!(
                    o.shadow.$field, internal,
                    concat!("plan-cache ", $what, " mirror drifted from CacheStats"),
                );
            }
        }
    }};
}

/// Running totals for cache effectiveness reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries dropped by the LRU policy (capacity pressure), as opposed
    /// to invalidation by key miss after a schema change.
    pub evictions: u64,
    /// Inserts that found the key already present — two threads raced to
    /// compile the same `(source, fingerprint)` and the loser's plan
    /// replaced an interchangeable winner. (A true 64-bit fingerprint
    /// *collision* — distinct schemas hashing alike — is indistinguishable
    /// from a hit and is not counted; see DESIGN.md §3.3.)
    pub duplicate_inserts: u64,
    pub len: usize,
    pub capacity: usize,
}

impl CacheStats {
    /// Total lookups: every [`PlanCache::get_or_insert`] call counts as
    /// exactly one hit or one miss.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from cache (0.0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded, thread-safe, least-recently-used plan cache.
///
/// `P` is the prepared-plan type; plans are handed out as `Arc<P>` so a hit
/// costs a clone of a pointer, never of a plan. Failed compilations are
/// *not* cached: an erroring source re-compiles on every lookup, which keeps
/// error reporting fresh and the cache free of dead entries.
#[derive(Debug)]
pub struct PlanCache<P> {
    inner: Mutex<Inner<P>>,
    capacity: usize,
}

impl<P> PlanCache<P> {
    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                clock: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                duplicate_inserts: 0,
                obs: None,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Mirror this cache's counters into `registry` under
    /// `{prefix}.hits`, `.misses`, `.evictions`, and `.duplicate_inserts`.
    /// Several caches may share one prefix (the registry counters then
    /// aggregate across them); the mirrored counters always agree with
    /// [`PlanCache::stats`] — `hits + misses == lookups` — because both
    /// are bumped under the same lock.
    ///
    /// The mirrors are registered as *scheduling* counters: with more than
    /// one worker, which thread warms a key first is a race (two threads
    /// can both miss and compile), so the hit/miss split is reproducible
    /// only at `NLI_THREADS=1` even though their sum is always exact.
    pub fn attach_obs(&self, registry: &obs::Registry, prefix: &str) {
        let mut inner = self.inner.lock();
        // Seed the debug shadow from the counts accumulated before
        // attachment, so the shadow == internal invariant holds for caches
        // instrumented late.
        #[cfg(debug_assertions)]
        let shadow = ShadowCounts {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            duplicate_inserts: inner.duplicate_inserts,
        };
        inner.obs = Some(ObsCounters {
            hits: registry.scheduling_counter(&format!("{prefix}.hits")),
            misses: registry.scheduling_counter(&format!("{prefix}.misses")),
            evictions: registry.scheduling_counter(&format!("{prefix}.evictions")),
            duplicate_inserts: registry.scheduling_counter(&format!("{prefix}.duplicate_inserts")),
            #[cfg(debug_assertions)]
            shadow,
        });
    }

    /// Look up `(source, fingerprint, epoch)`; on a miss, compile via
    /// `build`, insert, and evict the least-recently-used entry if over
    /// capacity. `epoch` is the stats epoch a cost-based plan depends on
    /// ([`crate::Database::stats_epoch`]); pass 0 for plans built without
    /// statistics.
    pub fn get_or_insert(
        &self,
        source: &str,
        fingerprint: u64,
        epoch: u64,
        build: impl FnOnce() -> Result<P>,
    ) -> Result<Arc<P>> {
        {
            let mut inner = self.inner.lock();
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(slot) = inner
                .slots
                .get_mut(&(source.to_string(), fingerprint, epoch))
            {
                slot.last_used = clock;
                let plan = Arc::clone(&slot.plan);
                bump_mirrored!(inner, hits, "hits");
                return Ok(plan);
            }
            bump_mirrored!(inner, misses, "misses");
        }
        // Compile outside the lock: builds can be slow, and a build that
        // panics must not poison concurrent lookups. Two racing threads may
        // both compile; the second insert wins, which is harmless because
        // equal keys compile to interchangeable plans.
        let plan = Arc::new(build()?);
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let displaced = inner.slots.insert(
            (source.to_string(), fingerprint, epoch),
            Slot {
                plan: Arc::clone(&plan),
                last_used: clock,
            },
        );
        if displaced.is_some() {
            bump_mirrored!(inner, duplicate_inserts, "duplicate_inserts");
        }
        if inner.slots.len() > self.capacity {
            if let Some(oldest) = inner
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.slots.remove(&oldest);
                bump_mirrored!(inner, evictions, "evictions");
            }
        }
        Ok(plan)
    }

    /// Peek without counting a hit or inserting.
    pub fn contains(&self, source: &str, fingerprint: u64, epoch: u64) -> bool {
        self.inner
            .lock()
            .slots
            .contains_key(&(source.to_string(), fingerprint, epoch))
    }

    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            duplicate_inserts: inner.duplicate_inserts,
            len: inner.slots.len(),
            capacity: self.capacity,
        }
    }

    /// Drop all entries (counters are preserved).
    pub fn clear(&self) {
        self.inner.lock().slots.clear();
    }
}

impl<P> Default for PlanCache<P> {
    /// Capacity 256: comfortably above the distinct-query working set of
    /// the benchmark corpora, small enough to be negligible memory.
    fn default() -> Self {
        PlanCache::with_capacity(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::NliError;

    #[test]
    fn hit_after_miss_reuses_the_plan() {
        let cache: PlanCache<String> = PlanCache::with_capacity(4);
        let mut builds = 0;
        for _ in 0..3 {
            let p = cache
                .get_or_insert("SELECT 1", 42, 0, || {
                    builds += 1;
                    Ok("plan".to_string())
                })
                .unwrap();
            assert_eq!(*p, "plan");
        }
        assert_eq!(builds, 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (2, 1, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_partitions_entries() {
        let cache: PlanCache<u32> = PlanCache::with_capacity(4);
        cache.get_or_insert("q", 1, 0, || Ok(10)).unwrap();
        let p = cache.get_or_insert("q", 2, 0, || Ok(20)).unwrap();
        assert_eq!(*p, 20, "same text, different schema: separate plans");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache: PlanCache<u32> = PlanCache::with_capacity(2);
        cache.get_or_insert("a", 0, 0, || Ok(1)).unwrap();
        cache.get_or_insert("b", 0, 0, || Ok(2)).unwrap();
        // touch "a" so "b" becomes the LRU entry
        cache.get_or_insert("a", 0, 0, || unreachable!()).unwrap();
        cache.get_or_insert("c", 0, 0, || Ok(3)).unwrap();
        assert!(cache.contains("a", 0, 0));
        assert!(!cache.contains("b", 0, 0), "LRU entry must be evicted");
        assert!(cache.contains("c", 0, 0));
    }

    #[test]
    fn errors_are_not_cached() {
        let cache: PlanCache<u32> = PlanCache::with_capacity(2);
        let mut attempts = 0;
        for _ in 0..2 {
            let r = cache.get_or_insert("bad", 0, 0, || {
                attempts += 1;
                Err(NliError::Syntax("nope".into()))
            });
            assert!(r.is_err());
        }
        assert_eq!(attempts, 2, "failed builds must re-run");
        assert_eq!(cache.stats().len, 0);
    }

    #[test]
    fn hit_rate_is_zero_before_any_lookup() {
        // Regression guard: 0/0 must read as 0.0, never NaN — downstream
        // reports format `hit_rate()` unconditionally.
        let untouched = CacheStats::default();
        assert_eq!(untouched.hit_rate(), 0.0);
        assert!(untouched.hit_rate().is_finite());
        let cache: PlanCache<u32> = PlanCache::with_capacity(2);
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }

    #[test]
    fn evictions_are_counted() {
        let cache: PlanCache<u32> = PlanCache::with_capacity(2);
        cache.get_or_insert("a", 0, 0, || Ok(1)).unwrap();
        cache.get_or_insert("b", 0, 0, || Ok(2)).unwrap();
        assert_eq!(cache.stats().evictions, 0);
        cache.get_or_insert("c", 0, 0, || Ok(3)).unwrap();
        cache.get_or_insert("d", 0, 0, || Ok(4)).unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 2);
        assert_eq!(s.len, 2);
        assert_eq!(s.lookups(), 4);
    }

    #[test]
    fn obs_counters_agree_with_stats() {
        let registry = crate::obs::Registry::new();
        let cache: PlanCache<u32> = PlanCache::with_capacity(2);
        cache.attach_obs(&registry, "plan_cache");
        for (src, fp) in [("a", 0), ("a", 0), ("b", 0), ("c", 1), ("a", 0), ("d", 2)] {
            let _ = cache.get_or_insert(src, fp, 0, || Ok(9));
        }
        let stats = cache.stats();
        let snap = registry.snapshot();
        let sched = |name: &str| snap.scheduling.get(name).copied();
        assert_eq!(sched("plan_cache.hits"), Some(stats.hits));
        assert_eq!(sched("plan_cache.misses"), Some(stats.misses));
        assert_eq!(sched("plan_cache.evictions"), Some(stats.evictions));
        assert_eq!(
            sched("plan_cache.hits").unwrap() + sched("plan_cache.misses").unwrap(),
            stats.lookups(),
            "registry hits+misses must equal CacheStats lookups"
        );
        assert!(stats.evictions > 0, "capacity 2 with 4 keys must evict");
    }

    /// The mirror drift guard, end to end: after a randomized workload of
    /// hits, misses, failed builds, fingerprint changes, and eviction
    /// pressure, the registry mirrors must equal the `CacheStats` fields
    /// exactly (one cache on a fresh registry, so no aggregation blurs the
    /// comparison — and every operation also exercised the debug shadow
    /// assertions along the way).
    #[test]
    fn obs_mirrors_track_stats_exactly_under_randomized_workload() {
        let registry = crate::obs::Registry::new();
        let cache: PlanCache<usize> = PlanCache::with_capacity(4);
        cache.attach_obs(&registry, "mirror");
        let mut rng = crate::rng::Prng::new(0xD01F);
        for _ in 0..2000 {
            let src = format!("q{}", rng.below(12));
            let fp = rng.below(3) as u64;
            if rng.chance(0.1) {
                // Errors only surface on a miss: a hit returns the cached
                // plan without invoking the failing build.
                let _ = cache.get_or_insert(&src, fp, 0, || Err(NliError::Syntax("boom".into())));
            } else {
                let v = rng.below(100);
                let _ = cache.get_or_insert(&src, fp, 0, || Ok(v)).unwrap();
            }
        }
        let stats = cache.stats();
        let snap = registry.snapshot();
        let sched = |name: &str| snap.scheduling.get(name).copied().unwrap_or(0);
        assert_eq!(sched("mirror.hits"), stats.hits);
        assert_eq!(sched("mirror.misses"), stats.misses);
        assert_eq!(sched("mirror.evictions"), stats.evictions);
        assert_eq!(sched("mirror.duplicate_inserts"), stats.duplicate_inserts);
        assert_eq!(stats.lookups(), 2000);
        assert!(stats.hits > 0 && stats.misses > 0 && stats.evictions > 0);
    }

    /// Same invariant under 8-thread contention: the mirrors are bumped
    /// under the cache mutex, so per-counter totals stay exact even though
    /// the hit/miss split itself is scheduling-dependent.
    #[test]
    fn obs_mirrors_stay_exact_under_contention() {
        let registry = crate::obs::Registry::new();
        let cache: PlanCache<usize> = PlanCache::with_capacity(4);
        cache.attach_obs(&registry, "mirror");
        std::thread::scope(|s| {
            for t in 0..8 {
                let cache = &cache;
                s.spawn(move || {
                    let mut rng = crate::rng::Prng::new(0xC0FFEE + t);
                    for _ in 0..500 {
                        let src = format!("q{}", rng.below(10));
                        let _ = cache.get_or_insert(&src, 0, 0, || Ok(1usize));
                    }
                });
            }
        });
        let stats = cache.stats();
        let snap = registry.snapshot();
        let sched = |name: &str| snap.scheduling.get(name).copied().unwrap_or(0);
        assert_eq!(sched("mirror.hits"), stats.hits);
        assert_eq!(sched("mirror.misses"), stats.misses);
        assert_eq!(sched("mirror.evictions"), stats.evictions);
        assert_eq!(sched("mirror.duplicate_inserts"), stats.duplicate_inserts);
        assert_eq!(stats.lookups(), 8 * 500);
    }

    /// The satellite invariant: a stats-epoch bump (data mutation) is a
    /// plan-cache invalidation for stats-dependent plans, by key miss —
    /// while epoch-0 (rule-based) entries survive, since their plans never
    /// read the mutated statistics.
    #[test]
    fn stats_epoch_change_invalidates_cost_based_plans() {
        use crate::schema::{Column, Schema, Table};
        use crate::value::DataType;
        let schema = Schema::new(
            "s",
            vec![Table::new("t", vec![Column::new("id", DataType::Int)])],
        );
        let fp = schema.fingerprint();
        let mut db = crate::Database::empty(schema);
        let cache: PlanCache<&str> = PlanCache::with_capacity(8);

        let e1 = db.stats_epoch();
        assert_ne!(e1, 0, "a live database never reports the reserved epoch 0");
        assert_eq!(db.stats_epoch(), e1, "epoch is stable while data is");
        cache.get_or_insert("q", fp, 0, || Ok("rule")).unwrap();
        cache.get_or_insert("q", fp, e1, || Ok("cost@e1")).unwrap();

        db.insert("t", vec![1.into()]).unwrap();
        let e2 = db.stats_epoch();
        assert_ne!(e2, e1, "insert must move the database to a fresh epoch");
        assert!(
            !cache.contains("q", fp, e2),
            "stats-keyed entry must miss after mutation"
        );
        assert!(cache.contains("q", fp, 0), "rule-based entry survives");
        let mut rebuilt = false;
        let p = cache
            .get_or_insert("q", fp, e2, || {
                rebuilt = true;
                Ok("cost@e2")
            })
            .unwrap();
        assert!(
            rebuilt,
            "new epoch must recompile, not reuse the stale plan"
        );
        assert_eq!(*p, "cost@e2");
    }

    #[test]
    fn clear_preserves_counters() {
        let cache: PlanCache<u32> = PlanCache::with_capacity(2);
        cache.get_or_insert("a", 0, 0, || Ok(1)).unwrap();
        cache.clear();
        assert_eq!(cache.stats().len, 0);
        assert_eq!(cache.stats().misses, 1);
    }
}
