//! Zero-dependency observability: counters, gauges, histograms, span
//! timing, and stable JSON trace export.
//!
//! PRs 1–2 built a prepared-statement plan cache and a deterministic
//! work-stealing pool; this module makes both visible. Every instrumented
//! component records into a [`Registry`] — thread-safe metric tables over
//! plain `std` atomics (no new dependencies) — and a whole run's registry
//! can be snapshotted and serialized as diff-friendly JSON
//! ([`Snapshot::to_json`]), which the bench binaries write when the
//! `NLI_TRACE` environment variable names a path
//! ([`export_trace_if_requested`]).
//!
//! ## Metric classes and the determinism contract
//!
//! The parallel runtime promises byte-identical *results* at any worker
//! count (see [`crate::par`]); observability must not weaken that, so
//! recording is strictly observational — counters and timers are written
//! with relaxed atomics on the side, never read back by any computation.
//! Metrics fall into three classes, kept in separate sections of the
//! export:
//!
//! 1. **Deterministic counters/gauges** ([`Registry::counter`],
//!    [`Registry::gauge`]): pure functions of the workload — plan-cache
//!    hits, examples evaluated, sessions served. Two runs with the same
//!    seeds and the same `NLI_THREADS` produce identical values, so the
//!    `"counters"`/`"gauges"` sections of two traces diff clean.
//! 2. **Scheduling counters** ([`Registry::scheduling_counter`]): products
//!    of which worker happened to grab which item — steal counts, per-worker
//!    task totals, idle transitions. Real and useful (they show pool
//!    balance), but two runs may legitimately differ; they live in the
//!    `"scheduling"` section.
//! 3. **Span timings** ([`Registry::span`], [`Span`]): wall-clock
//!    histograms. The *count* of spans is deterministic; the recorded
//!    durations are not, exactly like the `avg_micros` fields the
//!    determinism tests already zero before comparing. They live in the
//!    `"spans"` section.
//!
//! [`Snapshot::deterministic_json`] exports only what must be byte-stable
//! (class 1 plus span counts); determinism tests compare that form.
//!
//! ## Per-query trace events
//!
//! Aggregate histograms answer "how long does `sql.execute` take on
//! average"; they cannot answer "where did *this* query spend its time".
//! [`Registry::trace_span`] fills that gap: when trace-event recording is
//! enabled ([`Registry::set_trace_events`], or
//! [`enable_trace_events_from_env`] when `NLI_TRACE` is set), every
//! `trace_span` call records a [`TraceEvent`] — id, parent id, label,
//! µs duration — into a per-thread span stack. When the outermost span on
//! a thread closes, the completed [`TraceTree`] is appended to the
//! registry and exported as the `trace_events` section of the trace JSON.
//! Event ids and nesting are deterministic (pre-order within the tree,
//! one query's spans all run on one worker); durations and the order of
//! trees across threads are scheduling-dependent, which is why
//! `trace_events` is excluded from [`Snapshot::deterministic_json`].
//! When recording is disabled (the default), `trace_span` is one relaxed
//! atomic load — hot paths stay branch-cheap.
//!
//! ## Example
//!
//! ```
//! use nli_core::obs::Registry;
//!
//! let reg = Registry::new();
//! let hits = reg.counter("cache.hits");
//! hits.inc();
//! hits.add(2);
//! {
//!     let _timing = reg.span("parse"); // records wall time on drop
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("cache.hits"), Some(3));
//! assert_eq!(snap.span_count("parse"), Some(1));
//! assert!(snap.to_json().contains("\"cache.hits\": 3"));
//! ```

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Histogram bucket upper bounds in microseconds (a value lands in the
/// first bucket whose bound is `>=` it; larger values land in the overflow
/// bucket). Log-ish spacing from 1 µs to 10 s covers everything from a
/// cached `prepare` to a whole-benchmark evaluation.
pub const BUCKET_BOUNDS_MICROS: [u64; 22] = [
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// A monotonically increasing atomic counter. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins atomic gauge. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Keep the maximum of the current value and `v`.
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// One cell per [`BUCKET_BOUNDS_MICROS`] entry plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket histogram of microsecond durations. Cloning shares the
/// cells; recording is a few relaxed atomic adds, safe from any thread.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    pub fn new() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            buckets: (0..=BUCKET_BOUNDS_MICROS.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// Record one observation (in microseconds).
    pub fn record(&self, micros: u64) {
        let idx = BUCKET_BOUNDS_MICROS
            .iter()
            .position(|&le| micros <= le)
            .unwrap_or(BUCKET_BOUNDS_MICROS.len());
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(micros, Ordering::Relaxed);
        self.0.max.fetch_max(micros, Ordering::Relaxed);
    }

    /// Start a timing guard that records into this histogram when dropped.
    pub fn time(&self) -> Span {
        Span {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum_micros: self.0.sum.load(Ordering::Relaxed),
            max_micros: self.0.max.load(Ordering::Relaxed),
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// RAII wall-clock timer: created by [`Histogram::time`] / [`Registry::span`],
/// records the elapsed microseconds into its histogram on drop. Timing is
/// observational only — nothing in the pipeline reads it back, so entering
/// spans cannot perturb any computed result.
#[derive(Debug)]
pub struct Span {
    hist: Histogram,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_micros() as u64);
    }
}

#[derive(Debug, Default)]
struct Tables {
    counters: BTreeMap<String, Counter>,
    scheduling: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    spans: BTreeMap<String, Histogram>,
}

/// One completed span inside a [`TraceTree`]: ids are assigned in
/// pre-order as spans open (so `events[e.id] == e` and every parent id is
/// smaller than its children's), which makes the structure a deterministic
/// function of the instrumented code path. Only `micros` is wall-clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub id: u32,
    /// `None` for the tree's root event.
    pub parent: Option<u32>,
    pub label: String,
    pub micros: u64,
}

/// A completed per-query span tree: every [`Registry::trace_span`] that
/// opened (transitively) under one outermost span on one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTree {
    /// Events in id (= open) order; `events[0]` is the root.
    pub events: Vec<TraceEvent>,
}

impl TraceTree {
    /// The outermost event.
    pub fn root(&self) -> &TraceEvent {
        &self.events[0]
    }

    /// Events whose parent is `id`, in open order.
    pub fn children(&self, id: u32) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.parent == Some(id))
    }

    /// Indented text rendering (two spaces per depth level). With
    /// `with_micros` false the output is a pure function of the executed
    /// code path — safe for byte-compared output like the fuzz driver's
    /// stdout; with it true each line carries its wall-clock duration.
    pub fn render(&self, with_micros: bool) -> String {
        let mut depth = vec![0usize; self.events.len()];
        let mut out = String::new();
        for e in &self.events {
            let d = e.parent.map_or(0, |p| depth[p as usize] + 1);
            depth[e.id as usize] = d;
            for _ in 0..d {
                out.push_str("  ");
            }
            out.push_str(&e.label);
            if with_micros {
                out.push_str(&format!(" [{}us]", e.micros));
            }
            out.push('\n');
        }
        out
    }
}

/// Completed trees awaiting snapshot/drain, bounded by
/// [`MAX_TRACE_TREES`].
#[derive(Debug, Default)]
struct TraceState {
    trees: Vec<TraceTree>,
}

/// Cap on retained completed trees per registry; once reached, further
/// trees are counted in the `obs.trace_trees_dropped` scheduling counter
/// instead of retained, so a long traced run cannot grow without bound.
pub const MAX_TRACE_TREES: usize = 4096;

/// A tree under construction on one thread, for one registry.
struct ActiveTrace {
    /// Identity of the owning registry (pointer of its shared trace state).
    key: usize,
    events: Vec<TraceEvent>,
    /// Open span ids, innermost last.
    stack: Vec<u32>,
}

thread_local! {
    /// In-progress trees of the current thread, one per registry that has
    /// an open span here. Keyed by registry identity so tests with fresh
    /// registries never interleave with the global one.
    static ACTIVE_TRACES: RefCell<Vec<ActiveTrace>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one trace event: created by [`Registry::trace_span`],
/// finalizes its [`TraceEvent`] (and, for the outermost span, the whole
/// [`TraceTree`]) on drop. A no-op when recording was disabled at open.
#[derive(Debug)]
#[must_use = "dropping immediately records a zero-length span"]
pub struct TraceSpan(Option<TraceSpanInner>);

#[derive(Debug)]
struct TraceSpanInner {
    registry: Registry,
    key: usize,
    id: u32,
    start: Instant,
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else {
            return;
        };
        let micros = inner.start.elapsed().as_micros() as u64;
        let finished = ACTIVE_TRACES.with(|a| {
            let mut a = a.borrow_mut();
            let pos = a.iter().position(|t| t.key == inner.key)?;
            let t = &mut a[pos];
            t.events[inner.id as usize].micros = micros;
            // Guards drop LIFO, but be defensive about leaked inner spans:
            // close everything opened after this one.
            while let Some(top) = t.stack.pop() {
                if top == inner.id {
                    break;
                }
            }
            if t.stack.is_empty() {
                Some(a.swap_remove(pos).events)
            } else {
                None
            }
        });
        if let Some(events) = finished {
            let mut state = inner.registry.traces.lock();
            if state.trees.len() < MAX_TRACE_TREES {
                state.trees.push(TraceTree { events });
            } else {
                drop(state);
                inner
                    .registry
                    .scheduling_counter("obs.trace_trees_dropped")
                    .inc();
            }
        }
    }
}

/// A thread-safe metric registry. Cloning shares the tables; metric
/// handles ([`Counter`], [`Gauge`], [`Histogram`]) are registered by name
/// on first use and shared by every later registration of the same name,
/// so call sites can cache handles and skip the registry lock on hot
/// paths. The process-wide default registry is [`global`].
#[derive(Debug, Clone, Default)]
pub struct Registry {
    tables: Arc<Mutex<Tables>>,
    trace_enabled: Arc<AtomicBool>,
    traces: Arc<Mutex<TraceState>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A deterministic counter: its value must be a pure function of the
    /// workload (and the configured `NLI_THREADS`), never of scheduling.
    pub fn counter(&self, name: &str) -> Counter {
        self.tables
            .lock()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// A scheduling counter: steal counts, per-worker totals — values that
    /// two otherwise identical runs may legitimately disagree on. Exported
    /// in a separate section so deterministic diffs stay clean.
    pub fn scheduling_counter(&self, name: &str) -> Counter {
        self.tables
            .lock()
            .scheduling
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// A deterministic last-write-wins gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.tables
            .lock()
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The timing histogram of stage `stage` (registered on first use).
    pub fn span_histogram(&self, stage: &str) -> Histogram {
        self.tables
            .lock()
            .spans
            .entry(stage.to_string())
            .or_default()
            .clone()
    }

    /// Enter stage `stage`: returns a guard that records the stage's
    /// wall-clock duration when dropped. Hot paths should cache the
    /// [`Registry::span_histogram`] handle and call [`Histogram::time`].
    pub fn span(&self, stage: &str) -> Span {
        self.span_histogram(stage).time()
    }

    /// Turn per-query trace-event recording on or off (off by default).
    /// Disabling does not discard trees already completed.
    pub fn set_trace_events(&self, enabled: bool) {
        self.trace_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether [`Registry::trace_span`] is currently recording.
    pub fn trace_events_enabled(&self) -> bool {
        self.trace_enabled.load(Ordering::Relaxed)
    }

    /// Open a trace event labelled `label`, nested under the innermost
    /// event currently open on this thread (for this registry). The
    /// returned guard closes the event on drop; when the outermost event
    /// of a thread closes, the completed [`TraceTree`] is appended to the
    /// registry. When recording is disabled this is a single relaxed
    /// atomic load and the guard is inert.
    pub fn trace_span(&self, label: &str) -> TraceSpan {
        if !self.trace_enabled.load(Ordering::Relaxed) {
            return TraceSpan(None);
        }
        let key = Arc::as_ptr(&self.traces) as usize;
        let id = ACTIVE_TRACES.with(|a| {
            let mut a = a.borrow_mut();
            let t = match a.iter().position(|t| t.key == key) {
                Some(pos) => &mut a[pos],
                None => {
                    a.push(ActiveTrace {
                        key,
                        events: Vec::new(),
                        stack: Vec::new(),
                    });
                    a.last_mut().expect("just pushed")
                }
            };
            let id = t.events.len() as u32;
            t.events.push(TraceEvent {
                id,
                parent: t.stack.last().copied(),
                label: label.to_string(),
                micros: 0,
            });
            t.stack.push(id);
            id
        });
        TraceSpan(Some(TraceSpanInner {
            registry: self.clone(),
            key,
            id,
            start: Instant::now(),
        }))
    }

    /// Take (and clear) every completed trace tree, in completion order.
    pub fn drain_trace_trees(&self) -> Vec<TraceTree> {
        std::mem::take(&mut self.traces.lock().trees)
    }

    /// A point-in-time copy of every metric, with sorted keys.
    pub fn snapshot(&self) -> Snapshot {
        let trace_events = self.traces.lock().trees.clone();
        let tables = self.tables.lock();
        Snapshot {
            trace_events,
            counters: tables
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            scheduling: tables
                .scheduling
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: tables
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            spans: tables
                .spans
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// The process-wide registry every built-in instrumentation point records
/// into ([`crate::PlanCache`] via `SqlEngine`, [`crate::par`], the metric
/// evaluators, the session pool). [`export_trace_if_requested`] snapshots
/// it at the end of a bench run.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum_micros: u64,
    pub max_micros: u64,
    /// Parallel to [`BUCKET_BOUNDS_MICROS`], plus the overflow bucket last.
    pub buckets: Vec<u64>,
}

/// A point-in-time copy of a [`Registry`], ready for export. All maps are
/// `BTreeMap`s, so iteration — and therefore the JSON — is ordered by
/// metric name regardless of the order worker threads registered metrics
/// in (two identical runs export byte-identical deterministic sections).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub scheduling: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub spans: BTreeMap<String, HistogramSnapshot>,
    /// Completed per-query trace trees, in completion order (see the
    /// module docs: structure deterministic, durations and cross-thread
    /// ordering not).
    pub trace_events: Vec<TraceTree>,
}

impl Snapshot {
    /// The value of a deterministic counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The number of times a span stage was entered, if registered.
    pub fn span_count(&self, stage: &str) -> Option<u64> {
        self.spans.get(stage).map(|h| h.count)
    }

    /// Full trace JSON: deterministic counters/gauges, scheduling
    /// counters, and span timing histograms. Keys are sorted and the
    /// layout is fixed, so two traces diff line-by-line; see
    /// `docs/trace-format.md` for the field-by-field reference.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        write_u64_section(&mut out, "counters", &self.counters, false);
        write_u64_section(&mut out, "gauges", &self.gauges, false);
        write_u64_section(&mut out, "scheduling", &self.scheduling, false);
        out.push_str("  \"spans\": {");
        for (i, (name, h)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(": {\n");
            out.push_str(&format!("      \"count\": {},\n", h.count));
            out.push_str(&format!("      \"sum_micros\": {},\n", h.sum_micros));
            out.push_str(&format!("      \"max_micros\": {},\n", h.max_micros));
            out.push_str("      \"buckets_le_micros\": {");
            let mut first = true;
            for (bound, n) in BUCKET_BOUNDS_MICROS
                .iter()
                .map(|b| b.to_string())
                .chain(std::iter::once("inf".to_string()))
                .zip(&h.buckets)
            {
                if *n == 0 {
                    continue; // elide empty buckets: shorter, still stable
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                push_json_string(&mut out, &bound);
                out.push_str(&format!(": {n}"));
            }
            out.push_str("}\n    }");
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        out.push_str("  \"trace_events\": [");
        for (i, tree) in self.trace_events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"events\": [");
            for (j, e) in tree.events.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n      {\"id\": ");
                out.push_str(&e.id.to_string());
                out.push_str(", \"parent\": ");
                match e.parent {
                    Some(p) => out.push_str(&p.to_string()),
                    None => out.push_str("null"),
                }
                out.push_str(", \"label\": ");
                push_json_string(&mut out, &e.label);
                out.push_str(&format!(", \"micros\": {}}}", e.micros));
            }
            if !tree.events.is_empty() {
                out.push_str("\n    ");
            }
            out.push_str("]}");
        }
        if !self.trace_events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Only the byte-stable part of the trace: deterministic counters,
    /// gauges, and span *counts* (durations stripped). Two runs with the
    /// same seeds and thread count must produce identical output —
    /// `tests/obs_determinism.rs` asserts exactly that.
    pub fn deterministic_json(&self) -> String {
        let span_counts: BTreeMap<String, u64> = self
            .spans
            .iter()
            .map(|(k, h)| (k.clone(), h.count))
            .collect();
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        write_u64_section(&mut out, "counters", &self.counters, false);
        write_u64_section(&mut out, "gauges", &self.gauges, false);
        write_u64_section(&mut out, "span_counts", &span_counts, true);
        out.push_str("}\n");
        out
    }
}

fn write_u64_section(out: &mut String, name: &str, map: &BTreeMap<String, u64>, last: bool) {
    out.push_str("  ");
    push_json_string(out, name);
    out.push_str(": {");
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_string(out, k);
        out.push_str(&format!(": {v}"));
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
    out.push('}');
    if !last {
        out.push(',');
    }
    out.push('\n');
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// If the `NLI_TRACE` environment variable names a path, snapshot the
/// [`global`] registry and write the full trace JSON there. Returns the
/// path written to, `None` when tracing is not requested. The bench
/// binaries call this as their last statement; it never affects results —
/// recording happens either way, `NLI_TRACE` only controls the file write.
pub fn export_trace_if_requested() -> std::io::Result<Option<std::path::PathBuf>> {
    let Ok(path) = std::env::var("NLI_TRACE") else {
        return Ok(None);
    };
    if path.trim().is_empty() {
        return Ok(None);
    }
    let path = std::path::PathBuf::from(path);
    std::fs::write(&path, global().snapshot().to_json())?;
    Ok(Some(path))
}

/// Turn on per-query trace-event recording on the [`global`] registry when
/// `NLI_TRACE` names a path. Binaries that end with
/// [`export_trace_if_requested`] call this first, so a traced run's export
/// carries a populated `trace_events` section; untraced runs keep
/// [`Registry::trace_span`] at its one-atomic-load cost.
pub fn enable_trace_events_from_env() {
    let enabled = std::env::var("NLI_TRACE").is_ok_and(|p| !p.trim().is_empty());
    if enabled {
        global().set_trace_events(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_exact_under_8_thread_contention() {
        let reg = Registry::new();
        let c = reg.counter("contended");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000, "atomic totals must be exact");
        assert_eq!(reg.snapshot().counter("contended"), Some(80_000));
    }

    #[test]
    fn same_name_shares_one_cell() {
        let reg = Registry::new();
        reg.counter("x").inc();
        reg.counter("x").add(4);
        assert_eq!(reg.counter("x").get(), 5);
        // Scheduling counters are a separate namespace.
        reg.scheduling_counter("x").inc();
        assert_eq!(reg.counter("x").get(), 5);
        assert_eq!(reg.snapshot().scheduling.get("x"), Some(&1));
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        let h = Histogram::new();
        // On-boundary values land in the bucket whose bound equals them;
        // one-past-boundary values land in the next bucket up.
        h.record(0); // <= 1        -> bucket 0
        h.record(1); // <= 1        -> bucket 0
        h.record(2); // <= 2        -> bucket 1
        h.record(3); // <= 5        -> bucket 2
        h.record(10_000_000); // last finite bound -> bucket 21
        h.record(10_000_001); // past every bound  -> overflow
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[BUCKET_BOUNDS_MICROS.len() - 1], 1);
        assert_eq!(s.buckets[BUCKET_BOUNDS_MICROS.len()], 1, "overflow");
        assert_eq!(s.count, 6);
        assert_eq!(s.sum_micros, 20_000_007);
        assert_eq!(s.max_micros, 10_000_001);
    }

    #[test]
    fn histogram_buckets_cover_every_value_once() {
        let h = Histogram::new();
        for v in [0, 1, 7, 99, 100, 101, 999_999, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        assert_eq!(s.buckets.len(), BUCKET_BOUNDS_MICROS.len() + 1);
    }

    #[test]
    fn span_records_on_drop() {
        let reg = Registry::new();
        assert_eq!(reg.span_histogram("stage").count(), 0);
        {
            let _guard = reg.span("stage");
        }
        {
            let _guard = reg.span_histogram("stage").time();
        }
        assert_eq!(reg.snapshot().span_count("stage"), Some(2));
    }

    #[test]
    fn export_is_independent_of_registration_order() {
        // The satellite bugfix: worker threads race to register metrics,
        // so export order must come from sorted keys, not insertion order.
        let a = Registry::new();
        a.counter("alpha").add(1);
        a.counter("beta").add(2);
        a.scheduling_counter("z.steals").add(3);
        a.span_histogram("parse"); // registered, never recorded

        let b = Registry::new();
        b.span_histogram("parse");
        b.scheduling_counter("z.steals").add(3);
        b.counter("beta").add(2);
        b.counter("alpha").add(1);

        assert_eq!(a.snapshot().to_json(), b.snapshot().to_json());
        assert_eq!(
            a.snapshot().deterministic_json(),
            b.snapshot().deterministic_json()
        );
    }

    #[test]
    fn json_shape_is_stable() {
        let reg = Registry::new();
        reg.counter("c.one").add(7);
        reg.gauge("g.workers").set(4);
        reg.span_histogram("s").record(3);
        let json = reg.snapshot().to_json();
        assert!(
            json.contains("\"counters\": {\n    \"c.one\": 7\n  }"),
            "{json}"
        );
        assert!(json.contains("\"g.workers\": 4"), "{json}");
        assert!(json.contains("\"sum_micros\": 3"), "{json}");
        assert!(json.contains("\"buckets_le_micros\": {\"5\": 1}"), "{json}");
        // deterministic view strips durations but keeps the count
        let det = reg.snapshot().deterministic_json();
        assert!(
            det.contains("\"span_counts\": {\n    \"s\": 1\n  }"),
            "{det}"
        );
        assert!(!det.contains("sum_micros"), "{det}");
    }

    #[test]
    fn gauge_set_max_keeps_the_high_water_mark() {
        let g = Gauge::new();
        g.set_max(3);
        g.set_max(1);
        assert_eq!(g.get(), 3);
        g.set(2);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd");
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn trace_spans_build_a_nested_tree_with_preorder_ids() {
        let reg = Registry::new();
        reg.set_trace_events(true);
        {
            let _root = reg.trace_span("query");
            {
                let _parse = reg.trace_span("parse");
            }
            {
                let _exec = reg.trace_span("execute");
                let _scan = reg.trace_span("scan");
            }
        }
        let trees = reg.drain_trace_trees();
        assert_eq!(trees.len(), 1);
        let t = &trees[0];
        let shape: Vec<(u32, Option<u32>, &str)> = t
            .events
            .iter()
            .map(|e| (e.id, e.parent, e.label.as_str()))
            .collect();
        assert_eq!(
            shape,
            vec![
                (0, None, "query"),
                (1, Some(0), "parse"),
                (2, Some(0), "execute"),
                (3, Some(2), "scan"),
            ]
        );
        assert_eq!(t.root().label, "query");
        assert_eq!(t.children(0).count(), 2);
        assert_eq!(
            t.render(false),
            "query\n  parse\n  execute\n    scan\n",
            "render without micros must be a pure function of structure"
        );
        assert!(t.render(true).contains("us]"));
        assert!(reg.drain_trace_trees().is_empty(), "drain clears");
    }

    #[test]
    fn trace_span_is_inert_when_disabled() {
        let reg = Registry::new();
        {
            let _g = reg.trace_span("never.recorded");
        }
        assert!(reg.drain_trace_trees().is_empty());
        assert!(!reg.trace_events_enabled());
        reg.set_trace_events(true);
        assert!(reg.trace_events_enabled());
    }

    #[test]
    fn sibling_top_level_spans_become_separate_trees() {
        let reg = Registry::new();
        reg.set_trace_events(true);
        {
            let _a = reg.trace_span("a");
        }
        {
            let _b = reg.trace_span("b");
        }
        let trees = reg.drain_trace_trees();
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].root().label, "a");
        assert_eq!(trees[1].root().label, "b");
    }

    #[test]
    fn registries_do_not_share_thread_local_nesting() {
        let a = Registry::new();
        let b = Registry::new();
        a.set_trace_events(true);
        b.set_trace_events(true);
        {
            let _outer = a.trace_span("a.outer");
            let _other = b.trace_span("b.root");
            let _inner = a.trace_span("a.inner");
        }
        let ta = a.drain_trace_trees();
        let tb = b.drain_trace_trees();
        assert_eq!(ta.len(), 1);
        assert_eq!(
            ta[0]
                .events
                .iter()
                .map(|e| e.label.as_str())
                .collect::<Vec<_>>(),
            vec!["a.outer", "a.inner"],
            "registry b's span must not nest into registry a's tree"
        );
        assert_eq!(tb.len(), 1);
        assert_eq!(tb[0].events.len(), 1);
    }

    #[test]
    fn trace_trees_from_worker_threads_are_all_collected() {
        let reg = Registry::new();
        reg.set_trace_events(true);
        std::thread::scope(|s| {
            for i in 0..4 {
                let reg = reg.clone();
                s.spawn(move || {
                    let _root = reg.trace_span(&format!("thread.{i}"));
                    let _child = reg.trace_span("work");
                });
            }
        });
        let trees = reg.drain_trace_trees();
        assert_eq!(trees.len(), 4, "one tree per thread");
        for t in &trees {
            assert_eq!(t.events.len(), 2);
            assert_eq!(t.events[1].parent, Some(0));
        }
    }

    #[test]
    fn trace_events_appear_in_json_and_not_in_deterministic_json() {
        let reg = Registry::new();
        reg.set_trace_events(true);
        {
            let _root = reg.trace_span("q");
            let _inner = reg.trace_span("s");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.trace_events.len(), 1);
        let json = snap.to_json();
        assert!(
            json.contains("\"trace_events\": [\n    {\"events\": [\n      {\"id\": 0, \"parent\": null, \"label\": \"q\", \"micros\": "),
            "{json}"
        );
        assert!(
            json.contains("{\"id\": 1, \"parent\": 0, \"label\": \"s\", \"micros\": "),
            "{json}"
        );
        assert!(!snap.deterministic_json().contains("trace_events"));
        // Empty section still renders, as `[]`.
        let empty = Registry::new().snapshot().to_json();
        assert!(empty.contains("\"trace_events\": []"), "{empty}");
    }

    #[test]
    fn trace_tree_retention_is_capped() {
        let reg = Registry::new();
        reg.set_trace_events(true);
        for _ in 0..MAX_TRACE_TREES + 3 {
            let _g = reg.trace_span("t");
        }
        let trees = reg.drain_trace_trees();
        assert_eq!(trees.len(), MAX_TRACE_TREES);
        assert_eq!(
            reg.snapshot().scheduling.get("obs.trace_trees_dropped"),
            Some(&3)
        );
    }
}
