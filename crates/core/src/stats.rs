//! Table statistics for cost-based planning.
//!
//! [`DatabaseStats`] carries one [`TableStats`] per table — row count plus
//! per-column [`ColumnStats`] (null count, estimated NDV, min/max,
//! sortedness). Statistics are derived data, computed from the columnar
//! form ([`crate::ColumnBatch`]) and cached on the [`crate::Database`]
//! (see [`crate::Database::stats`]); every mutation through `insert`
//! advances the database's *stats epoch*, which both drops the cached
//! statistics and invalidates stats-keyed plan-cache entries
//! ([`crate::PlanCache`]).
//!
//! The numbers feed a planner cost model, not query results: a stale or
//! crude estimate can only produce a slower plan, never a wrong answer
//! (the executor re-verifies the one semantics-relevant property,
//! sortedness, at run time before a merge join).

use crate::batch::{ColumnBatch, ColumnData, ColumnVector};
use crate::value::Value;
use std::collections::HashMap;

/// Rows sampled (evenly strided) for NDV estimation; columns in tables at
/// or below this row count get an exact distinct count.
pub const NDV_SAMPLE_CAP: usize = 4096;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// NULL rows in the column.
    pub null_count: u64,
    /// Estimated number of distinct non-NULL values (canonical equality).
    /// Exact for tables with at most [`NDV_SAMPLE_CAP`] rows; otherwise a
    /// linear scale-up of a strided sample, clamped to the row count.
    pub ndv: u64,
    /// Smallest non-NULL value (by [`Value::total_cmp`]); `None` when the
    /// column has no non-NULL values.
    pub min: Option<Value>,
    /// Largest non-NULL value.
    pub max: Option<Value>,
    /// Whether the column is NULL-free and non-decreasing in storage order
    /// (serial primary keys are). A planner may pick a merge join on the
    /// strength of this; the executor still verifies at run time.
    pub sorted_asc: bool,
}

impl ColumnStats {
    /// Fraction of rows that are NULL, given the table's `row_count`.
    pub fn null_fraction(&self, row_count: u64) -> f64 {
        if row_count == 0 {
            0.0
        } else {
            self.null_count as f64 / row_count as f64
        }
    }
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    pub row_count: u64,
    /// One entry per schema column, index-aligned.
    pub columns: Vec<ColumnStats>,
}

/// Statistics for a whole database, tables index-aligned with
/// `schema.tables`.
#[derive(Debug, Clone, PartialEq)]
pub struct DatabaseStats {
    pub tables: Vec<TableStats>,
}

impl TableStats {
    /// Compute statistics from a table's columnar form.
    pub fn compute(batch: &ColumnBatch) -> TableStats {
        TableStats {
            row_count: batch.rows as u64,
            columns: batch.columns.iter().map(column_stats).collect(),
        }
    }
}

fn column_stats(col: &ColumnVector) -> ColumnStats {
    ColumnStats {
        null_count: col.nulls.null_count() as u64,
        ndv: estimate_ndv(col),
        min: min_max(col, false),
        max: min_max(col, true),
        sorted_asc: sorted_asc(col),
    }
}

/// Distinct non-NULL values under canonical equality, exact up to
/// [`NDV_SAMPLE_CAP`] rows, then estimated from an evenly strided sample.
///
/// The estimator scales by sample *singletons* (values seen exactly once):
/// `d + f1 * (n - s) / s`. An all-distinct sample (key column)
/// extrapolates to the full row count; a sample dominated by repeats
/// (small enum) stays at the observed distinct count.
fn estimate_ndv(col: &ColumnVector) -> u64 {
    let n = col.len();
    if n == 0 {
        return 0;
    }
    let mut counts: HashMap<String, u64> = HashMap::new();
    let mut sample = |i: usize| {
        if !col.is_null(i) {
            *counts.entry(col.value_at(i).canonical()).or_insert(0) += 1;
        }
    };
    if n <= NDV_SAMPLE_CAP {
        (0..n).for_each(&mut sample);
        return counts.len() as u64;
    }
    for k in 0..NDV_SAMPLE_CAP {
        // deterministic even stride over the column
        sample(k * n / NDV_SAMPLE_CAP);
    }
    let d = counts.len() as u64;
    let f1 = counts.values().filter(|&&c| c == 1).count() as u64;
    let (n, s) = (n as u64, NDV_SAMPLE_CAP as u64);
    (d + f1 * (n - s) / s).clamp(d, n)
}

/// Typed min-or-max fold over the non-NULL values.
fn min_max(col: &ColumnVector, want_max: bool) -> Option<Value> {
    fn fold<T: Copy, F: Fn(T, T) -> bool>(
        col: &ColumnVector,
        data: &[T],
        better: F,
        wrap: fn(T) -> Value,
    ) -> Option<Value> {
        let mut best: Option<T> = None;
        for (i, &x) in data.iter().enumerate() {
            if col.is_null(i) {
                continue;
            }
            best = Some(match best {
                None => x,
                Some(b) => {
                    if better(x, b) {
                        x
                    } else {
                        b
                    }
                }
            });
        }
        best.map(wrap)
    }
    match &col.data {
        ColumnData::Int(v) => fold(col, v, |a, b| (a > b) == want_max && a != b, Value::Int),
        ColumnData::Float(v) => fold(
            col,
            v,
            |a, b| {
                let gt = a.total_cmp(&b) == std::cmp::Ordering::Greater;
                gt == want_max && a.total_cmp(&b) != std::cmp::Ordering::Equal
            },
            Value::Float,
        ),
        ColumnData::Date(v) => fold(col, v, |a, b| (a > b) == want_max && a != b, Value::Date),
        ColumnData::Bool(v) => fold(col, v, |a, b| (a & !b) == want_max && a != b, Value::Bool),
        ColumnData::Text(v) => {
            let mut best: Option<&str> = None;
            for (i, s) in v.iter().enumerate() {
                if col.is_null(i) {
                    continue;
                }
                best = Some(match best {
                    None => s,
                    Some(b) => {
                        if (s.as_str() > b) == want_max && s.as_str() != b {
                            s
                        } else {
                            b
                        }
                    }
                });
            }
            best.map(|s| Value::Text(s.to_string()))
        }
        ColumnData::Mixed(v) => {
            let mut best: Option<&Value> = None;
            for (i, x) in v.iter().enumerate() {
                if col.is_null(i) {
                    continue;
                }
                best = Some(match best {
                    None => x,
                    Some(b) => {
                        let gt = x.total_cmp(b) == std::cmp::Ordering::Greater;
                        if gt == want_max && x.total_cmp(b) != std::cmp::Ordering::Equal {
                            x
                        } else {
                            b
                        }
                    }
                });
            }
            best.cloned()
        }
    }
}

/// NULL-free and non-decreasing in storage order. Floats with NaN and
/// mixed-type columns report unsorted (a merge join could not order them).
fn sorted_asc(col: &ColumnVector) -> bool {
    if col.nulls.any_null() {
        return false;
    }
    match &col.data {
        ColumnData::Int(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::Date(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::Bool(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::Text(v) => v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::Float(v) => !v.iter().any(|f| f.is_nan()) && v.windows(2).all(|w| w[0] <= w[1]),
        ColumnData::Mixed(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn batch(vals: Vec<Vec<Value>>, dtypes: &[DataType]) -> ColumnBatch {
        ColumnBatch::from_rows(dtypes, &vals)
    }

    #[test]
    fn exact_stats_on_a_small_table() {
        let b = batch(
            vec![
                vec![Value::Int(1), Value::Text("b".into())],
                vec![Value::Int(2), Value::Text("a".into())],
                vec![Value::Int(2), Value::Null],
                vec![Value::Int(7), Value::Text("a".into())],
            ],
            &[DataType::Int, DataType::Text],
        );
        let t = TableStats::compute(&b);
        assert_eq!(t.row_count, 4);
        let id = &t.columns[0];
        assert_eq!((id.null_count, id.ndv), (0, 3));
        assert_eq!(id.min, Some(Value::Int(1)));
        assert_eq!(id.max, Some(Value::Int(7)));
        assert!(id.sorted_asc, "1,2,2,7 is non-decreasing");
        let name = &t.columns[1];
        assert_eq!((name.null_count, name.ndv), (1, 2));
        assert_eq!(name.min, Some(Value::Text("a".into())));
        assert_eq!(name.max, Some(Value::Text("b".into())));
        assert!(!name.sorted_asc, "a NULL makes a column unsorted");
    }

    #[test]
    fn sampled_ndv_extrapolates_unique_keys_to_row_count() {
        let rows: Vec<Vec<Value>> = (0..20_000).map(|i| vec![Value::Int(i)]).collect();
        let t = TableStats::compute(&batch(rows, &[DataType::Int]));
        // strided sample is all-distinct → scaled estimate hits the clamp
        assert_eq!(t.columns[0].ndv, 20_000);
        assert!(t.columns[0].sorted_asc);
    }

    #[test]
    fn sampled_ndv_stays_low_for_low_cardinality_columns() {
        let rows: Vec<Vec<Value>> = (0..20_000).map(|i| vec![Value::Int(i % 5)]).collect();
        let t = TableStats::compute(&batch(rows, &[DataType::Int]));
        assert_eq!(t.columns[0].ndv, 5, "no sample singletons → no scale-up");
    }

    #[test]
    fn empty_table_stats_are_all_zero() {
        let t = TableStats::compute(&batch(Vec::new(), &[DataType::Float]));
        assert_eq!(t.row_count, 0);
        assert_eq!(t.columns[0].ndv, 0);
        assert_eq!(t.columns[0].min, None);
        assert!(t.columns[0].sorted_asc, "vacuously sorted");
    }
}
