//! # nli-bench
//!
//! Shared harness machinery for the table/figure binaries (see
//! DESIGN.md §4 for the per-experiment index):
//!
//! * `table1` — dataset statistics (generated corpora vs. paper-reported),
//! * `table2` — approach comparison on WikiSQL-/Spider-/nvBench-like dev,
//! * `table3` — evaluation-metric meta-analysis,
//! * `table4` — system-architecture comparison,
//! * `table5` — Text-to-SQL vs Text-to-Vis landscape,
//! * `fig1_workflow` — the interactive workflow demo,
//! * `fig4_timeline` — the approach-evolution timeline.
//!
//! [`suite`] builds the standard benchmark set and the trained parser
//! registry so every binary measures the same artifacts.

pub mod baseline;
pub mod scaled;
pub mod suite;
pub mod timeline;
