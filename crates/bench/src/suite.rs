//! The standard benchmark suite and parser registry.
//!
//! Every harness binary builds its corpora and parsers through this module
//! so numbers are comparable across tables.

use nli_core::{par, Language, SemanticParser};
use nli_data::multiturn::{self, DialogueKind, MultiTurnConfig, VisDialogueConfig};
use nli_data::nvbench_like::{self, NvBenchConfig};
use nli_data::spider_like::{self, SpiderConfig};
use nli_data::wikisql_like::{self, WikiSqlConfig};
use nli_data::{bird_like, multilingual, robustness, single_domain, SqlBenchmark, VisBenchmark};
use nli_lm::{DemoSelection, Demonstration, LlmKind, PromptStrategy, TrainingExample};
use nli_sql::Query;
use nli_text2sql::{
    ExecutionGuided, GrammarConfig, GrammarParser, LlmParser, PlmParser, RuleBasedParser,
    SkeletonParser,
};
use nli_text2vis::{LlmVisParser, NcNetParser, RgVisNetParser, RuleVisParser, Seq2VisParser};
use nli_vql::VisQuery;

/// The standard corpora used across the harnesses.
pub struct Corpora {
    pub wikisql: SqlBenchmark,
    pub spider: SqlBenchmark,
    pub spider_syn: SqlBenchmark,
    pub spider_realistic: SqlBenchmark,
    pub spider_dk: SqlBenchmark,
    pub bird: SqlBenchmark,
    pub sparc: SqlBenchmark,
    pub cosql: SqlBenchmark,
    pub cspider: SqlBenchmark,
    pub vitext: SqlBenchmark,
    pub pauq: SqlBenchmark,
    pub atis_like: SqlBenchmark,
    pub geo_like: SqlBenchmark,
    pub nvbench: VisBenchmark,
    pub dial_nvbench: VisBenchmark,
    pub cnvbench: VisBenchmark,
}

/// Build the full suite with standard sizes (a couple of seconds).
///
/// The two anchor corpora (spider-like, nvbench-like) build first — the
/// robustness/multilingual derivatives transform them — then every
/// remaining family builds in parallel over [`nli_core::par`]. All
/// builders are independently seeded, so the suite is bit-identical to a
/// serial build at any `NLI_THREADS` setting.
pub fn corpora() -> Corpora {
    let spider_cfg = SpiderConfig::default();
    let spider = spider_like::build(&spider_cfg);
    let nvbench = nvbench_like::build(&NvBenchConfig::default());

    type SqlBuilder<'a> = Box<dyn Fn() -> SqlBenchmark + Send + Sync + 'a>;
    let builders: Vec<SqlBuilder> = vec![
        Box::new(|| wikisql_like::build(&WikiSqlConfig::default())),
        Box::new(|| robustness::synonymize(&spider, 0.9, 0xB0B)),
        Box::new(|| robustness::realistic(&spider_cfg)),
        Box::new(|| robustness::domain_knowledge(&spider_cfg)),
        Box::new(|| bird_like::build(&bird_like::BirdConfig::default())),
        Box::new(|| {
            multiturn::build(&MultiTurnConfig {
                kind: DialogueKind::Sparc,
                ..Default::default()
            })
        }),
        Box::new(|| {
            multiturn::build(&MultiTurnConfig {
                kind: DialogueKind::Cosql,
                ..Default::default()
            })
        }),
        Box::new(|| multilingual::translate(&spider, Language::Chinese)),
        Box::new(|| multilingual::translate(&spider, Language::Vietnamese)),
        Box::new(|| multilingual::translate(&spider, Language::Russian)),
        Box::new(|| single_domain::build(&single_domain::SingleDomainConfig::default())),
        Box::new(|| {
            single_domain::build(&single_domain::SingleDomainConfig {
                domain: "geography",
                n_train: 100,
                n_dev: 50,
                seed: 0x5EED_0008,
            })
        }),
    ];
    let mut sql = par::par_map(&builders, |_, build| build()).into_iter();
    drop(builders); // release the borrows of `spider` before moving it below
    let mut next = || sql.next().expect("one benchmark per builder");

    Corpora {
        wikisql: next(),
        spider_syn: next(),
        spider_realistic: next(),
        spider_dk: next(),
        bird: next(),
        sparc: next(),
        cosql: next(),
        cspider: next(),
        vitext: next(),
        pauq: next(),
        atis_like: next(),
        geo_like: next(),
        dial_nvbench: multiturn::build_vis(&VisDialogueConfig::default()),
        cnvbench: multilingual::translate_vis(&nvbench, Language::Chinese),
        spider,
        nvbench,
    }
}

/// Convert a benchmark's train split into supervised examples.
pub fn training_of(bench: &SqlBenchmark) -> Vec<TrainingExample> {
    bench
        .train
        .iter()
        .map(|e| TrainingExample {
            question: e.question.text.clone(),
            sql: e.gold.clone(),
        })
        .collect()
}

/// Demonstration pool for few-shot prompting, drawn from a train split.
pub fn demos_of(bench: &SqlBenchmark) -> Vec<Demonstration> {
    bench
        .train
        .iter()
        .take(64)
        .map(|e| Demonstration {
            question: e.question.text.clone(),
            program: e.gold.to_string(),
        })
        .collect()
}

/// One registry entry: a boxed SQL parser plus the paper anchors it
/// corresponds to (exemplar system + reported numbers, for the
/// paper-vs-measured shape check).
pub struct SqlEntry {
    pub parser: Box<dyn SemanticParser<Expr = Query> + Send + Sync>,
    pub stage: &'static str,
    pub exemplar: &'static str,
    /// Paper-reported WikiSQL EX %, if any.
    pub paper_wikisql_ex: Option<f64>,
    /// Paper-reported Spider EM %, if any.
    pub paper_spider_em: Option<f64>,
}

/// Build the Text-to-SQL parser registry, trained on `train_bench`.
pub fn sql_parsers(train_bench: &SqlBenchmark) -> Vec<SqlEntry> {
    let training = training_of(train_bench);
    let demos = demos_of(train_bench);

    let mut skeleton = SkeletonParser::new(false);
    skeleton.train(&training);
    let mut skeleton_plm = SkeletonParser::new(true);
    skeleton_plm.train(&training);
    let mut plm = PlmParser::new();
    plm.train(&training);
    let mut plm_eg = PlmParser::new();
    plm_eg.train(&training);
    // GraPPa/GAP-style: additional pretraining pairs synthesized over ALL
    // databases (schemas + content only — no gold dev annotations)
    let mut plm_pretrained = PlmParser::new().named("plm+pretraining");
    let mut pre = training.clone();
    pre.extend(nli_data::pretrain::synthesize(
        &train_bench.databases,
        300,
        0x6AA9,
    ));
    plm_pretrained.train(&pre);

    vec![
        SqlEntry {
            parser: Box::new(RuleBasedParser::new()),
            stage: "traditional",
            exemplar: "NaLIR/PRECISE",
            paper_wikisql_ex: None,
            paper_spider_em: None,
        },
        SqlEntry {
            parser: Box::new(skeleton),
            stage: "neural (skeleton)",
            exemplar: "SQLNet",
            paper_wikisql_ex: Some(69.8),
            paper_spider_em: None,
        },
        SqlEntry {
            parser: Box::new(skeleton_plm),
            stage: "neural (skeleton+PLM)",
            exemplar: "SQLova/HydraNet",
            paper_wikisql_ex: Some(92.4),
            paper_spider_em: None,
        },
        SqlEntry {
            parser: Box::new(GrammarParser::new(GrammarConfig::neural())),
            stage: "neural (grammar)",
            exemplar: "IRNet/RAT-SQL",
            paper_wikisql_ex: None,
            paper_spider_em: Some(69.7),
        },
        SqlEntry {
            parser: Box::new(ExecutionGuided::new(
                GrammarParser::new(GrammarConfig::neural()),
                4,
                false,
            )),
            stage: "neural (execution-guided)",
            exemplar: "Wang et al. 2018",
            paper_wikisql_ex: Some(78.5),
            paper_spider_em: None,
        },
        SqlEntry {
            parser: Box::new(plm),
            stage: "PLM (fine-tuned)",
            exemplar: "BRIDGE/RESDSQL",
            paper_wikisql_ex: None,
            paper_spider_em: Some(80.5),
        },
        SqlEntry {
            parser: Box::new(ExecutionGuided::new(plm_eg, 4, false)),
            stage: "PLM + PICARD-style",
            exemplar: "UnifiedSKG+PICARD",
            paper_wikisql_ex: None,
            paper_spider_em: Some(75.5),
        },
        SqlEntry {
            parser: Box::new(plm_pretrained),
            stage: "PLM + pretraining",
            exemplar: "GraPPa/GAP/TaBERT",
            paper_wikisql_ex: None,
            paper_spider_em: Some(73.4),
        },
        SqlEntry {
            parser: Box::new(LlmParser::new(LlmKind::Codex, PromptStrategy::ZeroShot, 11)),
            stage: "LLM zero-shot (code-era)",
            exemplar: "Rajkumar et al.",
            paper_wikisql_ex: None,
            paper_spider_em: None,
        },
        SqlEntry {
            parser: Box::new(LlmParser::new(
                LlmKind::ChatGpt,
                PromptStrategy::ZeroShot,
                12,
            )),
            stage: "LLM zero-shot",
            exemplar: "C3/ChatGPT",
            paper_wikisql_ex: None,
            paper_spider_em: Some(76.9),
        },
        SqlEntry {
            parser: Box::new(
                LlmParser::new(
                    LlmKind::ChatGpt,
                    PromptStrategy::FewShot {
                        k: 4,
                        selection: DemoSelection::Similarity,
                    },
                    13,
                )
                .with_demo_pool(demos.clone()),
            ),
            stage: "LLM few-shot",
            exemplar: "Nan et al./DAIL-SQL",
            paper_wikisql_ex: None,
            paper_spider_em: None,
        },
        SqlEntry {
            parser: Box::new(
                LlmParser::new(
                    LlmKind::Frontier,
                    PromptStrategy::Decomposed {
                        k: 4,
                        selection: DemoSelection::Similarity,
                    },
                    14,
                )
                .with_demo_pool(demos),
            ),
            stage: "LLM decomposed",
            exemplar: "DIN-SQL/SQL-PaLM",
            paper_wikisql_ex: None,
            paper_spider_em: Some(60.1),
        },
        SqlEntry {
            parser: Box::new(LlmParser::new(
                LlmKind::Frontier,
                PromptStrategy::SelfConsistency { n: 5 },
                15,
            )),
            stage: "LLM self-consistency",
            exemplar: "SQL-PaLM",
            paper_wikisql_ex: None,
            paper_spider_em: None,
        },
    ]
}

/// One Text-to-Vis registry entry.
pub struct VisEntry {
    pub parser: Box<dyn SemanticParser<Expr = VisQuery> + Send + Sync>,
    pub stage: &'static str,
    pub exemplar: &'static str,
    /// Paper-reported nvBench overall accuracy %, if any.
    pub paper_nvbench_acc: Option<f64>,
}

/// Build the Text-to-Vis parser registry, trained on `train_bench`.
pub fn vis_parsers(train_bench: &VisBenchmark) -> Vec<VisEntry> {
    let pairs: Vec<(String, VisQuery)> = train_bench
        .train
        .iter()
        .map(|e| (e.question.text.clone(), e.gold.clone()))
        .collect();
    let sql_training: Vec<TrainingExample> = train_bench
        .train
        .iter()
        .map(|e| TrainingExample {
            question: e.question.text.clone(),
            sql: e.gold.query.clone(),
        })
        .collect();

    let mut seq2vis = Seq2VisParser::new();
    seq2vis.train(pairs.clone());
    let mut ncnet = NcNetParser::new();
    ncnet.train(&sql_training);
    let mut rgvisnet = RgVisNetParser::new();
    rgvisnet.index(pairs);

    vec![
        VisEntry {
            parser: Box::new(RuleVisParser::new()),
            stage: "traditional",
            exemplar: "DataTone/NL4DV",
            paper_nvbench_acc: None,
        },
        VisEntry {
            parser: Box::new(seq2vis),
            stage: "neural (seq2seq)",
            exemplar: "Seq2Vis",
            paper_nvbench_acc: Some(1.95),
        },
        VisEntry {
            parser: Box::new(ncnet),
            stage: "neural (transformer)",
            exemplar: "ncNet",
            paper_nvbench_acc: Some(25.78),
        },
        VisEntry {
            parser: Box::new(rgvisnet),
            stage: "neural (retrieval-gen)",
            exemplar: "RGVisNet",
            paper_nvbench_acc: Some(44.9),
        },
        VisEntry {
            parser: Box::new(LlmVisParser::new(
                LlmKind::ChatGpt,
                PromptStrategy::ZeroShot,
                21,
            )),
            stage: "LLM zero-shot",
            exemplar: "Chat2VIS",
            paper_nvbench_acc: None,
        },
        VisEntry {
            parser: Box::new(LlmVisParser::new(
                LlmKind::Frontier,
                PromptStrategy::ZeroShot,
                22,
            )),
            stage: "LLM (frontier)",
            exemplar: "NL2INTERFACE-era",
            paper_nvbench_acc: None,
        },
    ]
}
