//! Scaled vectorization ladder (`cargo run -p nli-bench --bin scaled`).
//!
//! Where [`crate::baseline`] tracks the absolute cost of the seven-query
//! ladder on a small fixed database, this harness measures what the ISSUE 6
//! refactor actually bought: the same join/aggregate workload run through
//! the reference tree-walk interpreter versus the vectorized, cost-planned
//! pipeline, on synthetic retail databases scaled from 10 k to 1 M fact
//! rows. It writes `BENCH_scaled.json`: one entry per (rung, query) with
//! median/min wall-times for both executors and the derived speedup.
//!
//! Both executors are run to completion once before timing and their
//! [`nli_sql::CanonicalResult`]s compared — a rung aborts if the engines
//! disagree, so the speedup numbers can never come from a wrong answer.
//!
//! The 10 k and 100 k rungs are the committed defaults; the 1 M rung is
//! opt-in (`--full`) because the interpreter leg alone takes seconds.

use nli_core::{Column, DataType, Database, Prng, Schema, Table, Value};
use nli_sql::interp::run_tree_walk;
use nli_sql::parser::parse_query;
use nli_sql::SqlEngine;
use serde_json::Value as Json;
use std::hint::black_box;
use std::time::Instant;

/// Bumped whenever the emitted document shape changes.
pub const SCHEMA_VERSION: i64 = 1;

/// Fact-table row counts of the committed ladder rungs.
pub const DEFAULT_RUNGS: [usize; 2] = [10_000, 100_000];

/// The opt-in top rung (`--full`).
pub const FULL_RUNG: usize = 1_000_000;

/// The scaled workload: joins and aggregates, where batching pays.
/// `vectorized` marks the queries the ≥10× acceptance bar applies to.
pub const QUERIES: [(&str, &str); 5] = [
    (
        "filter",
        "SELECT amount FROM sales WHERE amount > 450 AND amount < 460",
    ),
    (
        "group",
        "SELECT store_id, COUNT(*), SUM(amount) FROM sales GROUP BY store_id",
    ),
    (
        "join",
        "SELECT products.category, sales.amount FROM sales JOIN products \
         ON sales.product_id = products.id WHERE products.price > 450",
    ),
    (
        "join_group",
        "SELECT products.category, SUM(sales.amount) FROM sales JOIN products \
         ON sales.product_id = products.id GROUP BY products.category \
         ORDER BY SUM(sales.amount) DESC",
    ),
    (
        "three_way",
        "SELECT stores.city, SUM(sales.amount) FROM sales \
         JOIN stores ON sales.store_id = stores.id \
         JOIN products ON sales.product_id = products.id \
         WHERE products.price > 100 GROUP BY stores.city",
    ),
];

/// Build one rung's database: `rows` sales facts over `rows / 50` products
/// and `max(rows / 1000, 8)` stores, fully deterministic in `rows`.
pub fn scaled_db(rows: usize) -> Database {
    let n_products = (rows / 50).max(8);
    let n_stores = (rows / 1000).max(8);
    let mut schema = Schema::new(
        "retail_scaled",
        vec![
            Table::new(
                "stores",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("city", DataType::Text),
                ],
            ),
            Table::new(
                "products",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("category", DataType::Text),
                    Column::new("price", DataType::Float),
                ],
            ),
            Table::new(
                "sales",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("store_id", DataType::Int),
                    Column::new("product_id", DataType::Int),
                    Column::new("amount", DataType::Float),
                ],
            ),
        ],
    );
    schema
        .add_foreign_key("sales", "store_id", "stores", "id")
        .unwrap();
    schema
        .add_foreign_key("sales", "product_id", "products", "id")
        .unwrap();
    let mut db = Database::empty(schema);
    let mut rng = Prng::new(rows as u64 ^ 0x005C_A1ED);
    const CITIES: [&str; 6] = ["Oslo", "Bergen", "Trondheim", "Tromso", "Stavanger", "Bodo"];
    const CATEGORIES: [&str; 5] = ["Tools", "Toys", "Food", "Office", "Garden"];
    db.insert_all(
        "stores",
        (1..=n_stores).map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Text(format!("{}-{}", CITIES[i % CITIES.len()], i % 97)),
            ]
        }),
    )
    .unwrap();
    db.insert_all(
        "products",
        (1..=n_products).map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Text(CATEGORIES[i % CATEGORIES.len()].to_string()),
                // multiplicative hash spreads prices over (0, 500] at every
                // table size, so selectivity of a fixed threshold is
                // rung-independent
                Value::Float((i.wrapping_mul(7919) % 500) as f64 + 0.5),
            ]
        }),
    )
    .unwrap();
    db.insert_all(
        "sales",
        (1..=rows).map(|i| {
            let store = if rng.chance(0.01) {
                Value::Null
            } else {
                Value::Int(rng.below(n_stores) as i64 + 1)
            };
            vec![
                Value::Int(i as i64),
                store,
                Value::Int(rng.below(n_products) as i64 + 1),
                Value::Float((rng.below(100_000) as f64) / 100.0),
            ]
        }),
    )
    .unwrap();
    db
}

/// Median of an ascending-sorted sample.
fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[sorted.len() / 2]
}

fn time_micros(iters: usize, mut f: impl FnMut()) -> (f64, f64) {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_micros() as f64);
    }
    samples.sort_by(f64::total_cmp);
    (median(&samples), samples[0])
}

/// Run one rung: every ladder query through both executors.
fn run_rung(rows: usize, iters: usize) -> Json {
    let db = scaled_db(rows);
    let engine = SqlEngine::new();
    let mut benchmarks = Vec::new();
    for (name, sql) in QUERIES {
        let q = parse_query(sql).expect("scaled query must parse");
        let stmt = engine
            .prepare_ast_on(&q, &db)
            .expect("scaled query must plan");

        // Conformance gate: the two executors must agree before either
        // timing loop is allowed to count.
        let reference = run_tree_walk(&q, &db).expect("interp leg must execute");
        let vectorized = stmt.execute(&db).expect("vectorized leg must execute");
        assert!(
            vectorized.matches_canonical(&reference.to_canonical()),
            "executors disagree on {name} at {rows} rows"
        );
        let rows_out = vectorized.rows.len();

        let (interp_median, interp_min) = time_micros(iters, || {
            black_box(run_tree_walk(&q, &db).unwrap());
        });
        let (vec_median, vec_min) = time_micros(iters, || {
            black_box(stmt.execute(&db).unwrap());
        });
        let speedup = if vec_median > 0.0 {
            interp_median / vec_median
        } else {
            interp_median.max(1.0)
        };
        benchmarks.push(Json::obj([
            ("name", Json::from(name)),
            ("sql", Json::from(sql)),
            ("iters", Json::from(iters)),
            ("rows_out", Json::from(rows_out)),
            ("interp_median_micros", Json::from(interp_median)),
            ("interp_min_micros", Json::from(interp_min)),
            ("vectorized_median_micros", Json::from(vec_median)),
            ("vectorized_min_micros", Json::from(vec_min)),
            ("speedup", Json::from(speedup)),
        ]));
    }
    Json::obj([
        ("rows", Json::from(rows)),
        ("benchmarks", Json::Array(benchmarks)),
    ])
}

/// Run the ladder and build the `BENCH_scaled.json` document.
pub fn run(rungs: &[usize], iters: usize) -> Json {
    let iters = iters.max(1);
    let rung_docs: Vec<Json> = rungs.iter().map(|&rows| run_rung(rows, iters)).collect();
    Json::obj([
        ("schema_version", Json::from(SCHEMA_VERSION)),
        ("suite", Json::from("sql_scaled")),
        ("rungs", Json::Array(rung_docs)),
    ])
}

fn require_number(entry: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    entry
        .get(key)
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite() && *v >= 0.0)
        .ok_or_else(|| format!("{ctx}: missing or invalid {key}"))
}

/// Schema check for an emitted scaled document: well-formed rungs, every
/// benchmark carrying both timing legs and a consistent speedup.
pub fn validate(doc: &Json) -> Result<(), String> {
    match doc.get("schema_version").and_then(Json::as_i64) {
        Some(v) if v == SCHEMA_VERSION => {}
        Some(v) => return Err(format!("schema_version {v} != {SCHEMA_VERSION}")),
        None => return Err("missing schema_version".into()),
    }
    if doc.get("suite").and_then(Json::as_str) != Some("sql_scaled") {
        return Err("missing or wrong suite".into());
    }
    let rungs = doc
        .get("rungs")
        .and_then(Json::as_array)
        .ok_or("missing rungs array")?;
    if rungs.is_empty() {
        return Err("empty rungs array".into());
    }
    for rung in rungs {
        let rows = rung
            .get("rows")
            .and_then(Json::as_i64)
            .filter(|r| *r > 0)
            .ok_or("rung with missing rows")?;
        let ctx0 = format!("rung {rows}");
        let benchmarks = rung
            .get("benchmarks")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{ctx0}: missing benchmarks"))?;
        if benchmarks.len() != QUERIES.len() {
            return Err(format!(
                "{ctx0}: {} benchmarks (expected {})",
                benchmarks.len(),
                QUERIES.len()
            ));
        }
        for entry in benchmarks {
            let name = entry
                .get("name")
                .and_then(Json::as_str)
                .filter(|n| QUERIES.iter().any(|(q, _)| q == n))
                .ok_or_else(|| format!("{ctx0}: benchmark with unknown name"))?;
            let ctx = format!("{ctx0}/{name}");
            let im = require_number(entry, "interp_median_micros", &ctx)?;
            require_number(entry, "interp_min_micros", &ctx)?;
            let vm = require_number(entry, "vectorized_median_micros", &ctx)?;
            require_number(entry, "vectorized_min_micros", &ctx)?;
            require_number(entry, "rows_out", &ctx)?;
            let speedup = require_number(entry, "speedup", &ctx)?;
            if vm > 0.0 {
                let derived = im / vm;
                if (derived - speedup).abs() > derived.abs() * 0.01 + 1e-9 {
                    return Err(format!(
                        "{ctx}: speedup {speedup} inconsistent with medians ({derived})"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitted_scaled_doc_passes_its_own_schema_check() {
        // tiny rung: exercises the full emit path (including the built-in
        // conformance gate) without benchmark-scale cost
        let doc = run(&[500], 1);
        validate(&doc).unwrap();
        let text = serde_json::to_string_pretty(&doc).unwrap();
        let reparsed = serde_json::from_str(&text).unwrap();
        validate(&reparsed).unwrap();
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        let mut doc = run(&[200], 1);
        doc.set("schema_version", 99i64);
        assert!(validate(&doc).unwrap_err().contains("schema_version"));

        let doc = Json::obj([
            ("schema_version", Json::from(SCHEMA_VERSION)),
            ("suite", Json::from("sql_scaled")),
        ]);
        assert!(validate(&doc).unwrap_err().contains("rungs"));
    }

    #[test]
    fn scaled_db_is_deterministic_and_fk_clean() {
        let a = scaled_db(1_000);
        let b = scaled_db(1_000);
        assert_eq!(a, b);
        a.check_foreign_keys().unwrap();
    }
}
