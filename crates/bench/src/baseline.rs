//! Headless benchmark baseline emitter (`cargo run -p nli-bench --bin
//! baseline`).
//!
//! Runs the criterion `sql_engine` query ladder without the criterion
//! harness and writes `BENCH_baseline.json`: per-benchmark wall-time
//! summary statistics (median/p95/min/mean µs over `--iters` timed
//! executions of a prepared statement) plus the per-operator row-flow
//! aggregates from one instrumented [`nli_sql::PreparedSql::explain_analyze`]
//! run. The file is the first point of the perf trajectory the ROADMAP's
//! north star needs; timings are machine-dependent, row counts are not.
//!
//! [`validate`] is the checked-in schema check: `scripts/ci.sh` (under
//! `NLI_BENCH=1`) emits a smoke baseline and re-reads it through this
//! validator, so the emitter and the schema cannot drift apart silently.

use nli_core::{Database, Prng};
use nli_data::domains;
use nli_data::schema_gen::{generate_database, DbGenConfig};
use nli_sql::SqlEngine;
use serde_json::Value;
use std::hint::black_box;
use std::time::Instant;

/// Bumped whenever the emitted document shape changes.
pub const SCHEMA_VERSION: i64 = 1;

/// The benchmark queries: the same seven-step cost ladder
/// `benches/bench_engine.rs` measures under criterion, so the two harnesses
/// stay comparable.
pub const QUERIES: [(&str, &str); 7] = [
    ("scan", "SELECT * FROM products"),
    ("filter", "SELECT name FROM products WHERE price > 100"),
    (
        "join",
        "SELECT products.name, sales.amount FROM sales JOIN products \
         ON sales.product_id = products.id",
    ),
    (
        "group",
        "SELECT category, AVG(price) FROM products GROUP BY category",
    ),
    (
        "join_group_order",
        "SELECT products.category, SUM(sales.amount) FROM sales JOIN products \
         ON sales.product_id = products.id GROUP BY products.category \
         ORDER BY SUM(sales.amount) DESC",
    ),
    (
        "nested",
        "SELECT name FROM products WHERE id IN \
         (SELECT product_id FROM sales WHERE amount > 500)",
    ),
    (
        "set_op",
        "SELECT category FROM products UNION SELECT city FROM stores",
    ),
];

/// The generated retail database every baseline run measures against
/// (identical generator arguments to the criterion suite).
pub fn baseline_db() -> Database {
    let domain = domains::domain("retail").unwrap();
    let cfg = DbGenConfig {
        min_tables: 3,
        optional_col_p: 1.0,
        rows: (200, 200),
    };
    generate_database(domain, 0, &cfg, &mut Prng::new(42))
}

/// `p`-th percentile of an ascending-sorted sample (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Run every benchmark for `iters` timed iterations and build the
/// `BENCH_baseline.json` document.
pub fn run(iters: usize) -> Value {
    let iters = iters.max(1);
    let db = baseline_db();
    let engine = SqlEngine::new();
    let mut benchmarks = Vec::new();
    for (name, sql) in QUERIES {
        let stmt = engine
            .prepare(sql, &db.schema)
            .expect("baseline query must prepare");
        // Warm up once (and fail loudly on a broken query) before timing.
        let warm = stmt.execute(&db).expect("baseline query must execute");
        let mut samples = Vec::with_capacity(iters);
        for _ in 0..iters {
            let start = Instant::now();
            black_box(stmt.execute(&db).unwrap());
            samples.push(start.elapsed().as_micros() as f64);
        }
        samples.sort_by(f64::total_cmp);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;

        // Row-flow aggregates from one instrumented run, summed per
        // operator kind. Deterministic across machines and worker counts.
        let analyzed = stmt.explain_analyze(&db).unwrap();
        let mut ops: Vec<(&'static str, u64, u64, u64)> = Vec::new();
        analyzed.profile.each_op(
            &mut |kind, st| match ops.iter_mut().find(|(k, ..)| *k == kind) {
                Some((_, n, rows_in, rows_out)) => {
                    *n += 1;
                    *rows_in += st.rows_in;
                    *rows_out += st.rows_out;
                }
                None => ops.push((kind, 1, st.rows_in, st.rows_out)),
            },
        );
        let op_stats: Vec<Value> = ops
            .into_iter()
            .map(|(kind, count, rows_in, rows_out)| {
                Value::obj([
                    ("op", Value::from(kind)),
                    ("count", Value::from(count)),
                    ("rows_in", Value::from(rows_in)),
                    ("rows_out", Value::from(rows_out)),
                ])
            })
            .collect();

        benchmarks.push(Value::obj([
            ("name", Value::from(name)),
            ("sql", Value::from(sql)),
            ("iters", Value::from(iters)),
            ("median_micros", Value::from(percentile(&samples, 50.0))),
            ("p95_micros", Value::from(percentile(&samples, 95.0))),
            ("min_micros", Value::from(samples[0])),
            ("mean_micros", Value::from(mean)),
            ("rows_out", Value::from(warm.rows.len())),
            ("op_stats", Value::Array(op_stats)),
        ]));
    }
    Value::obj([
        ("schema_version", Value::from(SCHEMA_VERSION)),
        ("suite", Value::from("sql_engine")),
        (
            "database",
            Value::obj([
                ("domain", Value::from("retail")),
                ("rows_per_table", Value::from(200i64)),
                ("seed", Value::from(42i64)),
            ]),
        ),
        ("benchmarks", Value::Array(benchmarks)),
    ])
}

fn require_number(entry: &Value, key: &str, name: &str) -> Result<f64, String> {
    entry
        .get(key)
        .and_then(Value::as_f64)
        .filter(|v| v.is_finite() && *v >= 0.0)
        .ok_or_else(|| format!("benchmark {name:?}: missing or invalid {key}"))
}

/// The schema check for an emitted baseline document. Returns the first
/// problem found, or `Ok` for a well-formed baseline with at least six
/// benchmarks.
pub fn validate(doc: &Value) -> Result<(), String> {
    match doc.get("schema_version").and_then(Value::as_i64) {
        Some(v) if v == SCHEMA_VERSION => {}
        Some(v) => return Err(format!("schema_version {v} != {SCHEMA_VERSION}")),
        None => return Err("missing schema_version".into()),
    }
    if doc.get("suite").and_then(Value::as_str).is_none() {
        return Err("missing suite".into());
    }
    let benchmarks = doc
        .get("benchmarks")
        .and_then(Value::as_array)
        .ok_or("missing benchmarks array")?;
    if benchmarks.len() < 6 {
        return Err(format!("only {} benchmarks (need >= 6)", benchmarks.len()));
    }
    let mut names: Vec<&str> = Vec::new();
    for entry in benchmarks {
        let name = entry
            .get("name")
            .and_then(Value::as_str)
            .filter(|n| !n.is_empty())
            .ok_or("benchmark with missing name")?;
        if names.contains(&name) {
            return Err(format!("duplicate benchmark name {name:?}"));
        }
        names.push(name);
        let iters = entry
            .get("iters")
            .and_then(Value::as_i64)
            .ok_or_else(|| format!("benchmark {name:?}: missing iters"))?;
        if iters < 1 {
            return Err(format!("benchmark {name:?}: iters < 1"));
        }
        let median = require_number(entry, "median_micros", name)?;
        let p95 = require_number(entry, "p95_micros", name)?;
        let min = require_number(entry, "min_micros", name)?;
        require_number(entry, "mean_micros", name)?;
        require_number(entry, "rows_out", name)?;
        if min > median || median > p95 {
            return Err(format!(
                "benchmark {name:?}: percentiles out of order (min={min} median={median} p95={p95})"
            ));
        }
        let ops = entry
            .get("op_stats")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("benchmark {name:?}: missing op_stats"))?;
        if ops.is_empty() {
            return Err(format!("benchmark {name:?}: empty op_stats"));
        }
        for op in ops {
            let kind = op
                .get("op")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("benchmark {name:?}: op_stats entry missing op"))?;
            for key in ["count", "rows_in", "rows_out"] {
                require_number(op, key, name).map_err(|e| format!("{e} (op {kind:?})"))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitted_baseline_passes_its_own_schema_check() {
        let doc = run(2);
        validate(&doc).unwrap();
        let benchmarks = doc.get("benchmarks").and_then(Value::as_array).unwrap();
        assert_eq!(benchmarks.len(), QUERIES.len());
        // every benchmark carries a scan aggregate — the ladder always
        // touches at least one base table
        for b in benchmarks {
            let ops = b.get("op_stats").and_then(Value::as_array).unwrap();
            assert!(ops
                .iter()
                .any(|o| o.get("op").and_then(Value::as_str) == Some("scan")));
        }
        // the document round-trips through the vendored JSON printer/parser
        let text = serde_json::to_string_pretty(&doc).unwrap();
        let reparsed = serde_json::from_str(&text).unwrap();
        validate(&reparsed).unwrap();
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        let mut doc = run(1);
        doc.set("schema_version", 99i64);
        assert!(validate(&doc).unwrap_err().contains("schema_version"));

        let doc = Value::obj([("schema_version", Value::from(SCHEMA_VERSION))]);
        assert!(validate(&doc).is_err());

        let mut doc = run(1);
        if let Some(Value::Array(benchmarks)) = doc.get("benchmarks").cloned() {
            let mut short = benchmarks;
            short.truncate(3);
            doc.set("benchmarks", Value::Array(short));
        }
        assert!(validate(&doc).unwrap_err().contains("need >= 6"));
    }
}
