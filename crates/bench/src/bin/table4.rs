//! Table 4 reproduction: system-architecture comparison, measured.
//!
//! Each architecture's SQL side is evaluated on the clean Spider-like dev
//! set (accuracy), the Spider-SYN-like perturbed dev set (robustness), and
//! timed (latency); the number of exposed pipeline stages serves as the
//! interpretability proxy. The qualitative claims of the paper's Table 4
//! become measurable columns.

use nli_bench::suite;
use nli_metrics::evaluate_sql;
use nli_systems::{EndToEndSystem, MultiStageSystem, NliSystem, ParsingSystem, RuleSystem};
use nli_text2sql::PlmParser;
use nli_text2vis::RgVisNetParser;

fn main() {
    let c = suite::corpora();

    // assemble one system per architecture (multi-stage needs training)
    let mut plm = PlmParser::new();
    plm.train(&suite::training_of(&c.spider));
    let mut rgvis = RgVisNetParser::new();
    rgvis.index(
        c.nvbench
            .train
            .iter()
            .map(|e| (e.question.text.clone(), e.gold.clone())),
    );
    let systems: Vec<Box<dyn NliSystem>> = vec![
        Box::new(RuleSystem::new()),
        Box::new(ParsingSystem::new()),
        Box::new(MultiStageSystem::with_trained(plm, rgvis)),
        Box::new(EndToEndSystem::new(0xE2E)),
    ];

    println!(
        "Table 4 — system architectures (clean spider-like n={}, perturbed spider-syn n={})\n",
        c.spider.dev.len(),
        c.spider_syn.dev.len()
    );
    println!(
        "{:<16} {:>9} {:>11} {:>10} {:>9} {:>8}   paper-stated trade-off",
        "architecture", "clean EX%", "perturb EX%", "gap(pts)", "us/query", "stages"
    );
    println!("{}", "-".repeat(110));

    let notes = [
        (
            "rule-based",
            "robust for familiar queries; limited adaptability",
        ),
        (
            "parsing-based",
            "grasps deeper structure; struggles with ambiguity",
        ),
        (
            "multi-stage",
            "enhanced accuracy and flexibility; synchronization cost",
        ),
        (
            "end-to-end",
            "high adaptability; difficult to interpret and debug",
        ),
    ];

    for s in &systems {
        let clean = evaluate_sql(s.sql_parser(), &c.spider);
        let perturbed = evaluate_sql(s.sql_parser(), &c.spider_syn);
        // probe dev questions until one yields a full response, to read off
        // the architecture's stage count
        let stages = c
            .spider
            .dev
            .iter()
            .take(20)
            .find_map(|ex| {
                s.ask(&ex.question, &c.spider.databases[ex.db])
                    .ok()
                    .map(|r| r.stages.len())
            })
            .unwrap_or(0);
        let note = notes
            .iter()
            .find(|(n, _)| s.architecture().name() == *n)
            .map(|(_, d)| *d)
            .unwrap_or("");
        println!(
            "{:<16} {:>8.1} {:>10.1} {:>10.1} {:>9.0} {:>8}   {}",
            s.architecture().name(),
            100.0 * clean.execution,
            100.0 * perturbed.execution,
            100.0 * (clean.execution - perturbed.execution),
            clean.avg_micros,
            stages,
            note
        );
    }

    println!(
        "\nexpected shape: the rule- and parsing-based systems collapse under synonym\n\
         perturbation (limited adaptability / ambiguity struggles); multi-stage posts\n\
         the best clean accuracy at the highest latency; end-to-end adapts best\n\
         (smallest gap) while exposing the fewest inspectable stages."
    );
}
