//! Benchmark baseline emitter.
//!
//! ```text
//! cargo run --release -p nli-bench --bin baseline -- --iters 200 --out BENCH_baseline.json
//! cargo run --release -p nli-bench --bin baseline -- --check BENCH_baseline.json
//! ```
//!
//! Emit mode runs the headless `sql_engine` suite ([`nli_bench::baseline`])
//! and writes the JSON document; `--check` instead validates an existing
//! file against the checked-in schema check and exits non-zero on any
//! mismatch. `scripts/ci.sh` chains both under `NLI_BENCH=1` with a tiny
//! `--iters` as a smoke test.

use nli_bench::baseline;
use std::process::ExitCode;

struct Args {
    iters: usize,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        iters: 200,
        out: "BENCH_baseline.json".to_string(),
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| it.next().ok_or_else(|| format!("{what} needs a value"));
        match flag.as_str() {
            "--iters" => {
                args.iters = value("--iters")?
                    .parse::<usize>()
                    .map_err(|e| format!("--iters: {e}"))?
            }
            "--out" => args.out = value("--out")?,
            "--check" => args.check = Some(value("--check")?),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.iters == 0 {
        return Err("--iters must be >= 1".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("baseline: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &args.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("baseline: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match serde_json::from_str(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("baseline: {path} is not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match baseline::validate(&doc) {
            Ok(()) => {
                println!("{path}: valid baseline");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("baseline: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let doc = baseline::run(args.iters);
    if let Err(e) = baseline::validate(&doc) {
        eprintln!("baseline: emitted document failed its own schema check: {e}");
        return ExitCode::FAILURE;
    }
    let text = serde_json::to_string_pretty(&doc).expect("baseline document always prints");
    if let Err(e) = std::fs::write(&args.out, text + "\n") {
        eprintln!("baseline: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    let n = doc
        .get("benchmarks")
        .and_then(serde_json::Value::as_array)
        .map_or(0, <[serde_json::Value]>::len);
    println!(
        "wrote {} ({n} benchmarks, {} iters each)",
        args.out, args.iters
    );
    ExitCode::SUCCESS
}
