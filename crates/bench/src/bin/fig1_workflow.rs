//! Fig. 1 reproduction: the interactive workflow — natural-language input,
//! translation to a functional representation, execution, result, and the
//! feedback/refinement loop — on the paper's running sales scenario.

use nli_core::{Column, DataType, Database, Date, NlQuestion, Schema, Table};
use nli_systems::{Session, SystemOutput};

fn sales_db() -> Database {
    let mut schema = Schema::new(
        "sales_db",
        vec![
            Table::new(
                "products",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("name", DataType::Text),
                    Column::new("category", DataType::Text),
                    Column::new("price", DataType::Float),
                ],
            )
            .with_display("product"),
            Table::new(
                "sales",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("product_id", DataType::Int),
                    Column::new("amount", DataType::Float),
                    Column::new("sold_on", DataType::Date).with_display("sale date"),
                ],
            )
            .with_display("sale"),
        ],
    );
    schema.domain = "retail".into();
    schema
        .add_foreign_key("sales", "product_id", "products", "id")
        .unwrap();
    let mut db = Database::empty(schema);
    db.insert_all(
        "products",
        vec![
            vec![1.into(), "Widget".into(), "Tools".into(), 9.5.into()],
            vec![2.into(), "Gadget".into(), "Tools".into(), 19.0.into()],
            vec![3.into(), "Doohickey".into(), "Toys".into(), 4.25.into()],
        ],
    )
    .unwrap();
    db.insert_all(
        "sales",
        vec![
            vec![
                1.into(),
                1.into(),
                120.0.into(),
                Date::new(2025, 1, 15).into(),
            ],
            vec![
                2.into(),
                2.into(),
                340.0.into(),
                Date::new(2025, 2, 20).into(),
            ],
            vec![
                3.into(),
                2.into(),
                200.0.into(),
                Date::new(2025, 4, 2).into(),
            ],
            vec![
                4.into(),
                3.into(),
                80.0.into(),
                Date::new(2025, 5, 9).into(),
            ],
        ],
    )
    .unwrap();
    db
}

fn show(step: usize, question: &str, session: &mut Session, db: &Database) {
    println!("({step}) user: {question}");
    match session.ask(&NlQuestion::new(question), db) {
        Ok(r) => {
            if let Some(p) = &r.program {
                println!("    -> functional representation: {p}");
            }
            match r.output {
                SystemOutput::Table(rs) => {
                    println!("    -> result ({} row(s)):", rs.rows.len());
                    println!("       {}", rs.columns.join(" | "));
                    for row in rs.rows.iter().take(6) {
                        let cells: Vec<String> = row.iter().map(|v| v.canonical()).collect();
                        println!("       {}", cells.join(" | "));
                    }
                }
                SystemOutput::Chart(chart) => {
                    println!("    -> rendered chart:");
                    for line in chart.render_ascii().lines() {
                        println!("       {line}");
                    }
                }
                SystemOutput::Clarification(cands) => {
                    println!("    -> clarification needed; candidates:");
                    for c in cands {
                        println!("       {c}");
                    }
                }
            }
        }
        Err(e) => println!("    -> error: {e}"),
    }
    println!();
}

fn main() {
    println!("Fig. 1 — workflow: question -> parse -> execute -> result -> feedback\n");
    let db = sales_db();
    let mut session = Session::new();

    // the business-analyst scenario from the paper's introduction
    show(
        1,
        "What is the total amount of sales for each product category?",
        &mut session,
        &db,
    );
    show(
        2,
        "Show a bar chart of the total amount for each product category.",
        &mut session,
        &db,
    );
    show(3, "Make it a pie chart instead.", &mut session, &db);
    // the feedback loop: refine a data query conversationally
    show(4, "How many sales are there?", &mut session, &db);
    show(
        5,
        "Only those with amount greater than 100.",
        &mut session,
        &db,
    );

    println!("session transcript ({} turns):", session.history().len());
    for (i, e) in session.history().iter().enumerate() {
        println!("  {}. {} => {}", i + 1, e.question, e.program);
    }
}
