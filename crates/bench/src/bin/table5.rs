//! Table 5 reproduction: the Text-to-SQL vs Text-to-Vis research landscape,
//! with each of the paper's six qualitative aspects backed by a measurement
//! from this workspace.

use nli_bench::suite;
use nli_core::{par, ExecutionEngine};
use nli_metrics::{evaluate_sql, evaluate_vis};
use nli_sql::SqlEngine;
use nli_text2sql::{DialogueParser, GrammarConfig};
use nli_text2vis::VisDialogueParser;
use nli_vql::VisEngine;

fn main() {
    // NLI_TRACE also captures per-query trace_events when set.
    nli_core::obs::enable_trace_events_from_env();
    let c = suite::corpora();
    let sql_entries = suite::sql_parsers(&c.spider);
    let vis_entries = suite::vis_parsers(&c.nvbench);

    println!("Table 5 — Text-to-SQL vs Text-to-Vis, measured\n");

    // 1. model landscape
    println!("[models & approaches]");
    println!(
        "  Text-to-SQL parser families implemented: {}",
        sql_entries.len()
    );
    println!(
        "  Text-to-Vis parser families implemented: {}",
        vis_entries.len()
    );

    // 2. supervised vs prompted accuracy (the LLM-integration aspect)
    let plm_sql = sql_entries
        .iter()
        .find(|e| e.stage.starts_with("PLM (fine"))
        .map(|e| evaluate_sql(e.parser.as_ref(), &c.spider).execution)
        .unwrap_or(0.0);
    let llm_sql = sql_entries
        .iter()
        .find(|e| e.stage == "LLM decomposed")
        .map(|e| evaluate_sql(e.parser.as_ref(), &c.spider).execution)
        .unwrap_or(0.0);
    let neural_vis = vis_entries
        .iter()
        .find(|e| e.stage.contains("transformer"))
        .map(|e| evaluate_vis(e.parser.as_ref(), &c.nvbench).overall)
        .unwrap_or(0.0);
    let llm_vis = vis_entries
        .iter()
        .find(|e| e.stage.contains("frontier"))
        .map(|e| evaluate_vis(e.parser.as_ref(), &c.nvbench).overall)
        .unwrap_or(0.0);
    println!("\n[integration of LLMs]");
    println!(
        "  SQL: fine-tuned PLM EX {:.1}% vs LLM-decomposed EX {:.1}%",
        100.0 * plm_sql,
        100.0 * llm_sql
    );
    println!(
        "  Vis: transformer Acc {:.1}% vs frontier-LLM Acc {:.1}%",
        100.0 * neural_vis,
        100.0 * llm_vis
    );

    // 3. dataset landscape
    println!("\n[datasets]");
    println!(
        "  SQL corpora generated: 13 families ({} total questions)",
        [
            &c.wikisql,
            &c.spider,
            &c.spider_syn,
            &c.spider_realistic,
            &c.spider_dk,
            &c.bird,
            &c.sparc,
            &c.cosql,
            &c.cspider,
            &c.vitext,
            &c.pauq,
            &c.atis_like,
            &c.geo_like,
        ]
        .iter()
        .map(|b| b.example_count())
        .sum::<usize>()
    );
    println!(
        "  Vis corpora generated: 3 families ({} total questions)",
        [&c.nvbench, &c.dial_nvbench, &c.cnvbench]
            .iter()
            .map(|b| b.example_count())
            .sum::<usize>()
    );

    // 4. robustness (perturbed-vs-clean gap, best non-LLM parser per task)
    let clean = sql_entries
        .iter()
        .find(|e| e.stage.starts_with("PLM (fine"))
        .map(|e| {
            (
                evaluate_sql(e.parser.as_ref(), &c.spider).execution,
                evaluate_sql(e.parser.as_ref(), &c.spider_syn).execution,
            )
        })
        .unwrap_or((0.0, 0.0));
    println!("\n[robustness & generalizability]");
    println!(
        "  SQL PLM: clean EX {:.1}% -> Spider-SYN-like EX {:.1}% (gap {:.1} pts)",
        100.0 * clean.0,
        100.0 * clean.1,
        100.0 * (clean.0 - clean.1)
    );
    println!("  (the survey marks robustness as an *emerging* focus for vis — no");
    println!("   perturbed vis benchmark exists to compare against, here or there)");

    // 5. multi-turn capability (advanced applications)
    let sparc_acc = eval_sql_dialogues(&c.sparc);
    let vis_dlg_acc = eval_vis_dialogues(&c.dial_nvbench);
    println!("\n[advanced applications: conversation]");
    println!(
        "  SParC-like turn-level execution accuracy (EditSQL-style editor): {:.1}%",
        100.0 * sparc_acc
    );
    println!(
        "  Dial-NVBench-like turn-level execution accuracy (vis dialogue): {:.1}%",
        100.0 * vis_dlg_acc
    );

    // 6. learning methods
    println!("\n[learning methods]");
    println!("  SQL: supervised (alignment/sketch training) + prompted (4 strategies)");
    println!("  Vis: supervised (seq2vis/ncnet/rgvisnet training) + prompted (zero-shot)");

    println!(
        "\nexpected shape: the SQL side has more families, more corpora, higher\n\
         absolute accuracy, and more mature multi-turn/robustness tooling than the\n\
         vis side — the asymmetry Table 5 tabulates."
    );

    // NLI_TRACE=path.json writes the run's observability snapshot; see
    // docs/trace-format.md.
    match nli_core::obs::export_trace_if_requested() {
        Ok(Some(path)) => eprintln!("trace written to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("failed to write NLI_TRACE: {e}"),
    }
}

/// Turn-level execution accuracy of the conversational SQL parser.
/// Dialogues are independent conversations (each gets a fresh parser, all
/// share one engine), so they fan out over the parallel runtime.
fn eval_sql_dialogues(bench: &nli_data::SqlBenchmark) -> f64 {
    let engine = SqlEngine::new();
    let per_dialogue = par::par_map(&bench.dialogues, |_, d| {
        let db = &bench.databases[d.db];
        let mut parser = DialogueParser::new(GrammarConfig::llm_reasoner());
        let mut correct = 0usize;
        for (q, gold) in &d.turns {
            if let Ok(pred) = parser.parse_turn(q, db) {
                if let (Ok(a), Ok(b)) = (engine.execute(&pred, db), engine.execute(gold, db)) {
                    correct += usize::from(a.same_result(&b));
                }
            }
        }
        (correct, d.turns.len())
    });
    let correct: usize = per_dialogue.iter().map(|r| r.0).sum();
    let total: usize = per_dialogue.iter().map(|r| r.1).sum();
    correct as f64 / total.max(1) as f64
}

/// Turn-level execution accuracy of the conversational vis parser.
fn eval_vis_dialogues(bench: &nli_data::VisBenchmark) -> f64 {
    let engine = VisEngine::new();
    let per_dialogue = par::par_map(&bench.dialogues, |_, d| {
        let db = &bench.databases[d.db];
        let mut parser = VisDialogueParser::new();
        let mut correct = 0usize;
        for (q, gold) in &d.turns {
            if let Ok(pred) = parser.parse_turn(q, db) {
                if let (Ok(a), Ok(b)) = (engine.execute(&pred, db), engine.execute(gold, db)) {
                    let same = a.chart_type == b.chart_type
                        && a.points.len() == b.points.len()
                        && a.points
                            .iter()
                            .zip(&b.points)
                            .all(|(x, y)| x.label == y.label && (x.value - y.value).abs() < 1e-9);
                    correct += usize::from(same);
                }
            }
        }
        (correct, d.turns.len())
    });
    let correct: usize = per_dialogue.iter().map(|r| r.0).sum();
    let total: usize = per_dialogue.iter().map(|r| r.1).sum();
    correct as f64 / total.max(1) as f64
}
