//! Scaled vectorization-ladder emitter.
//!
//! ```text
//! cargo run --release -p nli-bench --bin scaled -- --iters 30 --out BENCH_scaled.json
//! cargo run --release -p nli-bench --bin scaled -- --full --iters 10
//! cargo run --release -p nli-bench --bin scaled -- --check BENCH_scaled.json
//! cargo run --release -p nli-bench --bin scaled -- --rungs 10000 --iters 3
//! ```
//!
//! Emit mode runs the tree-walk-vs-vectorized ladder ([`nli_bench::scaled`])
//! over the committed rungs (10 k and 100 k sales rows; `--full` adds the
//! 1 M rung) and writes the JSON document. `--check` validates an existing
//! file against the checked-in schema check and exits non-zero on any
//! mismatch; `scripts/ci.sh` chains a single-rung emit and a `--check`
//! under `NLI_BENCH_SCALED=1` as a smoke test.

use nli_bench::scaled;
use std::process::ExitCode;

struct Args {
    iters: usize,
    out: String,
    check: Option<String>,
    rungs: Vec<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        iters: 30,
        out: "BENCH_scaled.json".to_string(),
        check: None,
        rungs: scaled::DEFAULT_RUNGS.to_vec(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| it.next().ok_or_else(|| format!("{what} needs a value"));
        match flag.as_str() {
            "--iters" => {
                args.iters = value("--iters")?
                    .parse::<usize>()
                    .map_err(|e| format!("--iters: {e}"))?
            }
            "--out" => args.out = value("--out")?,
            "--check" => args.check = Some(value("--check")?),
            "--full" => {
                if !args.rungs.contains(&scaled::FULL_RUNG) {
                    args.rungs.push(scaled::FULL_RUNG);
                }
            }
            "--rungs" => {
                args.rungs = value("--rungs")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("--rungs: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
                if args.rungs.is_empty() {
                    return Err("--rungs needs at least one row count".into());
                }
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.iters == 0 {
        return Err("--iters must be >= 1".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("scaled: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = &args.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("scaled: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match serde_json::from_str(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("scaled: {path} is not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match scaled::validate(&doc) {
            Ok(()) => {
                println!("{path}: valid scaled ladder");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("scaled: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let doc = scaled::run(&args.rungs, args.iters);
    if let Err(e) = scaled::validate(&doc) {
        eprintln!("scaled: emitted document failed its own schema check: {e}");
        return ExitCode::FAILURE;
    }
    let text = serde_json::to_string_pretty(&doc).expect("scaled document always prints");
    if let Err(e) = std::fs::write(&args.out, text + "\n") {
        eprintln!("scaled: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    // per-rung speedup summary on stdout, so a terminal run is readable
    // without opening the JSON
    if let Some(rungs) = doc.get("rungs").and_then(serde_json::Value::as_array) {
        for rung in rungs {
            let rows = rung
                .get("rows")
                .and_then(serde_json::Value::as_i64)
                .unwrap_or(0);
            let mut parts = Vec::new();
            if let Some(benchmarks) = rung.get("benchmarks").and_then(serde_json::Value::as_array) {
                for b in benchmarks {
                    let name = b
                        .get("name")
                        .and_then(serde_json::Value::as_str)
                        .unwrap_or("?");
                    let speedup = b
                        .get("speedup")
                        .and_then(serde_json::Value::as_f64)
                        .unwrap_or(0.0);
                    parts.push(format!("{name}={speedup:.1}x"));
                }
            }
            println!("{rows} rows: {}", parts.join(" "));
        }
    }
    println!("wrote {} ({} iters per query)", args.out, args.iters);
    ExitCode::SUCCESS
}
