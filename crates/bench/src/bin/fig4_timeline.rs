//! Fig. 4 reproduction: the two aligned approach-evolution timelines
//! (Text-to-SQL above, Text-to-Vis below), restricted to the families this
//! workspace implements, each annotated with its implementing module.

fn main() {
    println!("Fig. 4 — evolution of implemented approach families\n");
    print!("{}", nli_bench::timeline::render());
    println!(
        "\nnote: the vis lane enters each stage later than the SQL lane — the\n\
         misalignment the survey's figure draws."
    );
}
