//! Table 2 reproduction: approach comparison.
//!
//! Every implemented parser family is evaluated on the WikiSQL-like dev set
//! (execution accuracy, EX), the Spider-like dev set (exact set match, EM),
//! and — for the vis families — the nvBench-like dev set (overall
//! accuracy). Paper-reported anchor numbers of each family's exemplar
//! system are printed alongside; absolute values differ (synthetic corpora,
//! simulated models) but the *ordering across stages* is the reproduced
//! result.

use nli_bench::suite;
use nli_core::par;
use nli_metrics::{evaluate_sql, evaluate_vis};

fn main() {
    // NLI_TRACE also captures per-query trace_events when set.
    nli_core::obs::enable_trace_events_from_env();
    let c = suite::corpora();

    println!(
        "Table 2 — Text-to-SQL approaches (dev sets: wikisql-like n={}, spider-like n={})\n",
        c.wikisql.dev.len(),
        c.spider.dev.len()
    );
    println!(
        "{:<28} {:<26} {:>12} {:>12}   paper anchor (EX / EM)",
        "stage", "parser", "WikiSQL EX%", "Spider EM%"
    );
    println!("{}", "-".repeat(110));

    // Train on the respective train splits: WikiSQL parsers on WikiSQL
    // train, Spider parsers on Spider train (the standard protocol).
    let wiki_parsers = suite::sql_parsers(&c.wikisql);
    let spider_parsers = suite::sql_parsers(&c.spider);

    // every (parser, benchmark) evaluation is independent: fan the whole
    // registry out over the parallel runtime, print rows in registry order
    let entries: Vec<_> = wiki_parsers.iter().zip(spider_parsers.iter()).collect();
    for row in par::par_map(&entries, |_, (w, s)| {
        let wiki = evaluate_sql(w.parser.as_ref(), &c.wikisql);
        let spider = evaluate_sql(s.parser.as_ref(), &c.spider);
        let anchor = match (w.paper_wikisql_ex, w.paper_spider_em) {
            (Some(ex), _) => format!("{} ({ex:.1} / -)", w.exemplar),
            (_, Some(em)) => format!("{} (- / {em:.1})", w.exemplar),
            _ => format!("{} (- / -)", w.exemplar),
        };
        format!(
            "{:<28} {:<26} {:>11.1} {:>12.1}   {}",
            w.stage,
            wiki.parser,
            100.0 * wiki.execution,
            100.0 * spider.exact_set,
            anchor
        )
    }) {
        println!("{row}");
    }

    println!(
        "\nTable 2 — Text-to-Vis approaches (nvbench-like dev n={})\n",
        c.nvbench.dev.len()
    );
    println!(
        "{:<26} {:<16} {:>10} {:>10} {:>10}   paper anchor (Acc%)",
        "stage", "parser", "Acc%", "comp%", "exec%"
    );
    println!("{}", "-".repeat(100));
    let vis_entries = suite::vis_parsers(&c.nvbench);
    for row in par::par_map(&vis_entries, |_, entry| {
        let s = evaluate_vis(entry.parser.as_ref(), &c.nvbench);
        let anchor = match entry.paper_nvbench_acc {
            Some(a) => format!("{} ({a:.2})", entry.exemplar),
            None => format!("{} (-)", entry.exemplar),
        };
        format!(
            "{:<26} {:<16} {:>9.1} {:>9.1} {:>9.1}   {}",
            entry.stage,
            s.parser,
            100.0 * s.overall,
            100.0 * s.component,
            100.0 * s.execution,
            anchor
        )
    }) {
        println!("{row}");
    }

    println!(
        "\nexpected shape (survey): skeleton families top WikiSQL EX but cannot emit\n\
         Spider's grammar; grammar/PLM families lead Spider EM; LLM decomposition\n\
         beats zero-shot; Seq2Vis << ncNet << RGVisNet on the vis task."
    );

    // NLI_TRACE=path.json writes the run's observability snapshot (plan-cache
    // counters, per-stage span timings, pool telemetry); docs/trace-format.md
    // documents the schema.
    match nli_core::obs::export_trace_if_requested() {
        Ok(Some(path)) => eprintln!("trace written to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("failed to write NLI_TRACE: {e}"),
    }
}
