//! Table 3 reproduction: comparative analysis of evaluation metrics,
//! measured. See `nli_metrics::meta` for the labeled-pair construction.

use nli_bench::suite;
use nli_metrics::meta::{golds_of, metric_meta_analysis};

fn main() {
    let c = suite::corpora();
    let golds = golds_of(&c.spider);
    println!(
        "Table 3 — evaluation-metric meta-analysis over {} gold queries\n",
        golds.len()
    );
    let (reports, n_pairs) = metric_meta_analysis(&c.spider.databases, &golds, 0x7AB1E3);
    println!(
        "labeled pairs: {n_pairs} (equivalence-preserving rewrites + adjudicated corruptions)\n"
    );
    println!(
        "{:<24} {:>8} {:>8} {:>8} {:>12}   paper-stated property",
        "metric", "acc%", "FPR%", "FNR%", "cost(us/pair)"
    );
    println!("{}", "-".repeat(105));
    let notes = [
        ("raw exact match", "(ablation: value of normalization)"),
        (
            "exact match (norm.)",
            "high efficiency; cannot handle alias expressions",
        ),
        (
            "fuzzy match (BLEU@.9)",
            "suitable for complex queries; insufficient precision",
        ),
        (
            "exact set match",
            "handles simple alias expressions; needs customization",
        ),
        (
            "execution match",
            "robust to aliases; prone to false positives",
        ),
        ("test suite match", "handles semantically close expressions"),
        (
            "manual (3 judges)",
            "precise, flexible; high cost, low efficiency",
        ),
    ];
    for r in &reports {
        let note = notes
            .iter()
            .find(|(n, _)| r.name.starts_with(n))
            .map(|(_, d)| *d)
            .unwrap_or("");
        println!(
            "{:<24} {:>7.1} {:>7.1} {:>7.1} {:>12.0}   {}",
            r.name,
            100.0 * r.accuracy,
            100.0 * r.false_positive_rate,
            100.0 * r.false_negative_rate,
            r.avg_micros,
            note
        );
    }
    println!(
        "\nexpected shape: exact match FPR=0 with the highest FNR; fuzzy match trades\n\
         FNR for FPR; set match recovers alias rewrites; execution match admits\n\
         coincidence FPs which the test suite removes; the judge panel combines low\n\
         FPR and FNR, at a cost of {} individual human judgments for {} pairs —\n\
         the high-cost/low-efficiency trade-off the paper tabulates.",
        3 * n_pairs,
        n_pairs
    );
}
