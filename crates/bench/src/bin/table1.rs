//! Table 1 reproduction: dataset statistics per family, generated corpora
//! measured next to the statistics the paper reports for the datasets each
//! generator imitates.

use nli_bench::suite;
use nli_data::DatasetStats;

/// Paper-reported statistics of the imitated dataset, for the side-by-side.
struct PaperRow {
    imitates: &'static str,
    n_query: &'static str,
    n_db: &'static str,
    n_domain: &'static str,
    t_per_db: &'static str,
}

fn main() {
    println!("Table 1 — dataset statistics (generated corpus vs. the dataset it imitates)\n");
    let c = suite::corpora();

    let rows: Vec<(DatasetStats, PaperRow)> = vec![
        (
            DatasetStats::of_sql(&c.atis_like),
            PaperRow {
                imitates: "ATIS",
                n_query: "5,280",
                n_db: "1",
                n_domain: "1",
                t_per_db: "32",
            },
        ),
        (
            DatasetStats::of_sql(&c.geo_like),
            PaperRow {
                imitates: "GeoQuery",
                n_query: "877",
                n_db: "1",
                n_domain: "1",
                t_per_db: "6",
            },
        ),
        (
            DatasetStats::of_sql(&c.wikisql),
            PaperRow {
                imitates: "WikiSQL",
                n_query: "80,654",
                n_db: "26,521",
                n_domain: "-",
                t_per_db: "1",
            },
        ),
        (
            DatasetStats::of_sql(&c.spider),
            PaperRow {
                imitates: "Spider",
                n_query: "10,181",
                n_db: "200",
                n_domain: "138",
                t_per_db: "5",
            },
        ),
        (
            DatasetStats::of_sql(&c.sparc),
            PaperRow {
                imitates: "SParC",
                n_query: "12,726",
                n_db: "200",
                n_domain: "138",
                t_per_db: "5.1",
            },
        ),
        (
            DatasetStats::of_sql(&c.cosql),
            PaperRow {
                imitates: "CoSQL",
                n_query: "15,598",
                n_db: "200",
                n_domain: "138",
                t_per_db: "5.1",
            },
        ),
        (
            DatasetStats::of_sql(&c.spider_syn),
            PaperRow {
                imitates: "Spider-SYN",
                n_query: "7,990",
                n_db: "166",
                n_domain: "-",
                t_per_db: "5",
            },
        ),
        (
            DatasetStats::of_sql(&c.spider_realistic),
            PaperRow {
                imitates: "Spider-realistic",
                n_query: "508",
                n_db: "-",
                n_domain: "-",
                t_per_db: "5",
            },
        ),
        (
            DatasetStats::of_sql(&c.spider_dk),
            PaperRow {
                imitates: "Spider-DK",
                n_query: "535",
                n_db: "10",
                n_domain: "-",
                t_per_db: "5",
            },
        ),
        (
            DatasetStats::of_sql(&c.cspider),
            PaperRow {
                imitates: "CSpider",
                n_query: "10,181",
                n_db: "200",
                n_domain: "138",
                t_per_db: "5",
            },
        ),
        (
            DatasetStats::of_sql(&c.vitext),
            PaperRow {
                imitates: "ViText2SQL",
                n_query: "9,691",
                n_db: "166",
                n_domain: "-",
                t_per_db: "5",
            },
        ),
        (
            DatasetStats::of_sql(&c.pauq),
            PaperRow {
                imitates: "PAUQ",
                n_query: "9,691",
                n_db: "166",
                n_domain: "-",
                t_per_db: "5",
            },
        ),
        (
            DatasetStats::of_sql(&c.bird),
            PaperRow {
                imitates: "BIRD",
                n_query: "12,751",
                n_db: "95",
                n_domain: "-",
                t_per_db: "7",
            },
        ),
        (
            DatasetStats::of_vis(&c.nvbench),
            PaperRow {
                imitates: "nvBench",
                n_query: "25,750",
                n_db: "153",
                n_domain: "105",
                t_per_db: "5",
            },
        ),
        (
            DatasetStats::of_vis(&c.dial_nvbench),
            PaperRow {
                imitates: "Dial-NVBench",
                n_query: "4,495",
                n_db: "-",
                n_domain: "-",
                t_per_db: "-",
            },
        ),
        (
            DatasetStats::of_vis(&c.cnvbench),
            PaperRow {
                imitates: "CNvBench",
                n_query: "25,750",
                n_db: "153",
                n_domain: "105",
                t_per_db: "5",
            },
        ),
    ];

    println!("{}", DatasetStats::header());
    println!("{}", "-".repeat(100));
    for (stats, paper) in &rows {
        println!("{}", stats.row());
        println!(
            "{:<28} {:>7} {:>6} {:>7} {:>6}  (paper-reported, full scale)",
            format!("  = {}", paper.imitates),
            paper.n_query,
            paper.n_db,
            paper.n_domain,
            paper.t_per_db
        );
    }
    println!();
    println!(
        "note: generated corpora are scaled to development-loop size; the family\n\
         structure (single/cross-domain, multi-turn, multilingual, robustness,\n\
         knowledge-grounded) and the #T/DB shape match the imitated datasets."
    );
}
