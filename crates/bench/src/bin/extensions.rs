//! §6 future-research directions, implemented and measured:
//!
//! * §6.3 weak supervision — train a PLM from (question, answer) pairs only
//!   and compare against full gold-SQL supervision;
//! * §6.5 compositional generalization — the Spider-CG-like split (train on
//!   atomic queries, test on compositions);
//! * §6.6 multimodal / voice — accuracy as a function of the simulated
//!   ASR word-error rate, per system architecture.

use nli_bench::suite;
use nli_core::{ExecutionEngine, NlQuestion};
use nli_data::robustness::compositional_split;
use nli_data::spider_like::{self, SpiderConfig};
use nli_metrics::evaluate_sql;
use nli_sql::SqlEngine;
use nli_systems::{EndToEndSystem, NliSystem, ParsingSystem, RuleSystem, VoiceSystem};
use nli_text2sql::{weak, GrammarConfig, GrammarParser, PlmParser, SkeletonParser, WeakExample};

fn main() {
    // NLI_TRACE also captures per-query trace_events when set.
    nli_core::obs::enable_trace_events_from_env();
    let bench = spider_like::build(&SpiderConfig::default());

    // ---- §6.3 weak supervision -------------------------------------------
    println!("[§6.3] weak supervision: answers-only training vs gold SQL\n");
    let engine = SqlEngine::new();
    let weak_data: Vec<(usize, WeakExample)> = bench
        .train
        .iter()
        .map(|e| {
            let rs = engine.execute(&e.gold, &bench.databases[e.db]).unwrap();
            (e.db, WeakExample::from_result(e.question.clone(), &rs))
        })
        .collect();
    let harvest = weak::harvest(&weak_data, &bench.databases, 4);
    println!(
        "  searched {} weak examples -> {} pseudo-gold programs recovered, {} misses,\n\
         \x20 {} executor calls spent",
        weak_data.len(),
        harvest.examples.len(),
        harvest.misses,
        harvest.executor_calls
    );
    let mut supervised = PlmParser::new();
    supervised.train(&suite::training_of(&bench));
    let mut weakly = PlmParser::new();
    weakly.train(&harvest.examples);
    let sup = evaluate_sql(&supervised, &bench);
    let wk = evaluate_sql(&weakly, &bench);
    println!(
        "  fully supervised PLM:  EX {:.1}%   weakly supervised PLM: EX {:.1}%\n",
        100.0 * sup.execution,
        100.0 * wk.execution
    );

    // ---- §6.5 compositional generalization ----------------------------------
    println!("[§6.5] compositional generalization (Spider-CG-like split)\n");
    let cg = compositional_split(&bench);
    println!(
        "  atomic train questions: {}   compositional dev questions: {}",
        cg.train.len(),
        cg.dev.len()
    );
    let mut plm_cg = PlmParser::new();
    plm_cg.train(&suite::training_of(&cg));
    let mut skel_cg = SkeletonParser::new(true);
    skel_cg.train(&suite::training_of(&cg));
    let grammar = GrammarParser::new(GrammarConfig::neural());
    let plm_scores = evaluate_sql(&plm_cg, &cg);
    let skel_scores = evaluate_sql(&skel_cg, &cg);
    let grammar_scores = evaluate_sql(&grammar, &cg);
    println!(
        "  grammar (compositional by construction): EX {:.1}%",
        100.0 * grammar_scores.execution
    );
    println!(
        "  PLM trained on atoms only:               EX {:.1}%",
        100.0 * plm_scores.execution
    );
    println!(
        "  skeleton trained on atoms only:          EX {:.1}%",
        100.0 * skel_scores.execution
    );
    println!(
        "  (grammar-constrained decoders compose known concepts; the skeleton's\n\
         \x20 fixed sketch grammar cannot express the compositions at all)\n"
    );

    // ---- §6.6 voice / multimodal ----------------------------------------------
    println!("[§6.6] voice interface: execution accuracy vs ASR word-error rate\n");
    let probe: Vec<(usize, NlQuestion, nli_sql::Query)> = bench
        .dev
        .iter()
        .take(60)
        .map(|e| (e.db, e.question.clone(), e.gold.clone()))
        .collect();
    println!(
        "  {:<16} {:>8} {:>8} {:>8} {:>8}",
        "system", "WER 0%", "WER 5%", "WER 15%", "WER 30%"
    );
    let systems: Vec<Box<dyn NliSystem>> = vec![
        Box::new(RuleSystem::new()),
        Box::new(ParsingSystem::new()),
        Box::new(EndToEndSystem::new(0x701CE)),
    ];
    for sys in systems {
        let mut row = format!("  {:<16}", sys.architecture().name());
        for wer in [0.0, 0.05, 0.15, 0.30] {
            let voiced = VoiceSystem::new(ProbeAdapter(sys.as_ref()), wer, 0xA5A5);
            let mut ok = 0usize;
            for (db_idx, q, gold) in &probe {
                let db = &bench.databases[*db_idx];
                if let Ok(resp) = voiced.speak(q, db) {
                    if let nli_systems::SystemOutput::Table(rs) = resp.output {
                        if let Ok(gold_rs) = engine.execute(gold, db) {
                            ok += usize::from(rs.same_result(&gold_rs));
                        }
                    }
                }
            }
            row.push_str(&format!(
                " {:>7.1}%",
                100.0 * ok as f64 / probe.len() as f64
            ));
        }
        println!("{row}");
    }
    println!(
        "\n  (spoken input loses quoting and picks up homophones; accuracy falls\n\
         \x20 monotonically with WER, and systems with stronger linking degrade\n\
         \x20 more gracefully — the §6.6 multimodal challenge, quantified)"
    );

    // NLI_TRACE=path.json writes the run's observability snapshot; see
    // docs/trace-format.md.
    match nli_core::obs::export_trace_if_requested() {
        Ok(Some(path)) => eprintln!("trace written to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("failed to write NLI_TRACE: {e}"),
    }
}

/// Borrowing adapter so `VoiceSystem` can wrap a `&dyn NliSystem`.
struct ProbeAdapter<'a>(&'a dyn NliSystem);

impl nli_systems::NliSystem for ProbeAdapter<'_> {
    fn ask(
        &self,
        q: &NlQuestion,
        db: &nli_core::Database,
    ) -> nli_core::Result<nli_systems::SystemResponse> {
        self.0.ask(q, db)
    }
    fn architecture(&self) -> nli_systems::Architecture {
        self.0.architecture()
    }
    fn name(&self) -> &str {
        self.0.name()
    }
    fn sql_parser(&self) -> &(dyn nli_core::SemanticParser<Expr = nli_sql::Query> + Sync) {
        self.0.sql_parser()
    }
    fn vis_parser(&self) -> &(dyn nli_core::SemanticParser<Expr = nli_vql::VisQuery> + Sync) {
        self.0.vis_parser()
    }
}
