//! The Fig. 4 timeline data: every approach family the workspace
//! implements, with its publication year, task, stage, and the module that
//! realizes it.

/// Development stage (the colour bands of Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    Traditional,
    NeuralNetwork,
    FoundationModel,
}

impl Stage {
    pub fn name(self) -> &'static str {
        match self {
            Stage::Traditional => "traditional",
            Stage::NeuralNetwork => "neural network",
            Stage::FoundationModel => "foundation model",
        }
    }
}

/// Task lane (upper/lower timeline of Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    Sql,
    Vis,
}

/// One timeline entry.
#[derive(Debug, Clone, Copy)]
pub struct Entry {
    pub year: u16,
    pub system: &'static str,
    pub task: Task,
    pub stage: Stage,
    /// Where this workspace implements the family.
    pub module: &'static str,
}

/// The full implemented timeline, sorted by year.
pub fn timeline() -> Vec<Entry> {
    let mut entries = vec![
        Entry {
            year: 1982,
            system: "CHAT-80",
            task: Task::Sql,
            stage: Stage::Traditional,
            module: "nli-text2sql::rule",
        },
        Entry {
            year: 1983,
            system: "TEAM",
            task: Task::Sql,
            stage: Stage::Traditional,
            module: "nli-text2sql::rule",
        },
        Entry {
            year: 2004,
            system: "PRECISE",
            task: Task::Sql,
            stage: Stage::Traditional,
            module: "nli-text2sql::rule",
        },
        Entry {
            year: 2014,
            system: "NaLIR",
            task: Task::Sql,
            stage: Stage::Traditional,
            module: "nli-text2sql::rule",
        },
        Entry {
            year: 2015,
            system: "DataTone",
            task: Task::Vis,
            stage: Stage::Traditional,
            module: "nli-text2vis::rule",
        },
        Entry {
            year: 2016,
            system: "Eviza",
            task: Task::Vis,
            stage: Stage::Traditional,
            module: "nli-text2vis::rule",
        },
        Entry {
            year: 2017,
            system: "Seq2SQL/SQLNet",
            task: Task::Sql,
            stage: Stage::NeuralNetwork,
            module: "nli-text2sql::skeleton",
        },
        Entry {
            year: 2018,
            system: "SyntaxSQLNet",
            task: Task::Sql,
            stage: Stage::NeuralNetwork,
            module: "nli-text2sql::grammar",
        },
        Entry {
            year: 2018,
            system: "EG decoding",
            task: Task::Sql,
            stage: Stage::NeuralNetwork,
            module: "nli-text2sql::execution_guided",
        },
        Entry {
            year: 2019,
            system: "Data2Vis",
            task: Task::Vis,
            stage: Stage::NeuralNetwork,
            module: "nli-text2vis::seq2vis_like",
        },
        Entry {
            year: 2019,
            system: "IRNet/EditSQL",
            task: Task::Sql,
            stage: Stage::NeuralNetwork,
            module: "nli-text2sql::{grammar,multiturn}",
        },
        Entry {
            year: 2019,
            system: "SQLova",
            task: Task::Sql,
            stage: Stage::FoundationModel,
            module: "nli-text2sql::skeleton (backoff)",
        },
        Entry {
            year: 2020,
            system: "RAT-SQL/BRIDGE",
            task: Task::Sql,
            stage: Stage::FoundationModel,
            module: "nli-text2sql::plm",
        },
        Entry {
            year: 2021,
            system: "Seq2Vis",
            task: Task::Vis,
            stage: Stage::NeuralNetwork,
            module: "nli-text2vis::seq2vis_like",
        },
        Entry {
            year: 2021,
            system: "NL4DV/ADVISor",
            task: Task::Vis,
            stage: Stage::Traditional,
            module: "nli-text2vis::rule",
        },
        Entry {
            year: 2021,
            system: "PICARD",
            task: Task::Sql,
            stage: Stage::FoundationModel,
            module: "nli-text2sql::{plm,execution_guided}",
        },
        Entry {
            year: 2022,
            system: "ncNet",
            task: Task::Vis,
            stage: Stage::NeuralNetwork,
            module: "nli-text2vis::ncnet_like",
        },
        Entry {
            year: 2022,
            system: "RGVisNet",
            task: Task::Vis,
            stage: Stage::NeuralNetwork,
            module: "nli-text2vis::rgvisnet_like",
        },
        Entry {
            year: 2022,
            system: "Rajkumar et al. (Codex)",
            task: Task::Sql,
            stage: Stage::FoundationModel,
            module: "nli-text2sql::llm (zero-shot)",
        },
        Entry {
            year: 2022,
            system: "NL2INTERFACE",
            task: Task::Vis,
            stage: Stage::FoundationModel,
            module: "nli-text2vis::llm",
        },
        Entry {
            year: 2023,
            system: "C3/ChatGPT",
            task: Task::Sql,
            stage: Stage::FoundationModel,
            module: "nli-text2sql::llm (zero-shot)",
        },
        Entry {
            year: 2023,
            system: "DIN-SQL",
            task: Task::Sql,
            stage: Stage::FoundationModel,
            module: "nli-text2sql::llm (decomposed)",
        },
        Entry {
            year: 2023,
            system: "SQL-PaLM",
            task: Task::Sql,
            stage: Stage::FoundationModel,
            module: "nli-text2sql::llm (self-consistency)",
        },
        Entry {
            year: 2023,
            system: "Chat2VIS",
            task: Task::Vis,
            stage: Stage::FoundationModel,
            module: "nli-text2vis::llm",
        },
        Entry {
            year: 2023,
            system: "MMCoVisNet",
            task: Task::Vis,
            stage: Stage::NeuralNetwork,
            module: "nli-text2vis::dialogue",
        },
    ];
    entries.sort_by_key(|e| e.year);
    entries
}

/// Render the two aligned lanes of Fig. 4 as text.
pub fn render() -> String {
    let mut out = String::new();
    for (task, title) in [(Task::Sql, "Text-to-SQL"), (Task::Vis, "Text-to-Vis")] {
        out.push_str(&format!("== {title} ==\n"));
        for e in timeline().iter().filter(|e| e.task == task) {
            out.push_str(&format!(
                "  {} [{:<16}] {:<26} -> {}\n",
                e.year,
                e.stage.name(),
                e.system,
                e.module
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_is_sorted_and_covers_both_tasks_and_all_stages() {
        let t = timeline();
        assert!(t.windows(2).all(|w| w[0].year <= w[1].year));
        for task in [Task::Sql, Task::Vis] {
            for stage in [
                Stage::Traditional,
                Stage::NeuralNetwork,
                Stage::FoundationModel,
            ] {
                assert!(
                    t.iter().any(|e| e.task == task && e.stage == stage),
                    "missing {task:?}/{}",
                    stage.name()
                );
            }
        }
    }

    #[test]
    fn vis_stages_lag_sql_stages() {
        // the survey notes the vis timeline trails the SQL one
        let t = timeline();
        let first = |task: Task, stage: Stage| {
            t.iter()
                .filter(|e| e.task == task && e.stage == stage)
                .map(|e| e.year)
                .min()
                .unwrap()
        };
        assert!(first(Task::Vis, Stage::NeuralNetwork) >= first(Task::Sql, Stage::NeuralNetwork));
        assert!(
            first(Task::Vis, Stage::FoundationModel) >= first(Task::Sql, Stage::FoundationModel)
        );
    }

    #[test]
    fn render_includes_both_lanes() {
        let r = render();
        assert!(r.contains("== Text-to-SQL =="));
        assert!(r.contains("== Text-to-Vis =="));
        assert!(r.contains("DIN-SQL"));
        assert!(r.contains("RGVisNet"));
    }
}
