//! Criterion benchmarks for evaluation-metric cost — the "efficiency"
//! column of Table 3, isolated: string metrics are cheap, execution costs
//! an engine call, the test suite multiplies that by its size, and manual
//! evaluation dwarfs everything.

use criterion::{criterion_group, criterion_main, Criterion};
use nli_data::spider_like::{self, SpiderConfig};
use nli_metrics::{
    component::exact_set_match,
    execution::execution_match,
    fuzzy::fuzzy_match,
    manual::JudgePanel,
    string_match::exact_match,
    test_suite::{test_suite_match, TestSuite},
};
use std::hint::black_box;

fn metric_benches(c: &mut Criterion) {
    let bench = spider_like::build(&SpiderConfig {
        n_databases: 13,
        n_dev_databases: 3,
        n_train: 5,
        n_dev: 20,
        ..Default::default()
    });
    let pairs: Vec<(usize, String, String)> = bench
        .dev
        .iter()
        .map(|e| (e.db, e.gold.to_string(), e.gold.to_string()))
        .collect();

    let mut group = c.benchmark_group("metric_cost");
    group.bench_function("exact_match", |b| {
        b.iter(|| {
            for (_, p, g) in &pairs {
                black_box(exact_match(p, g));
            }
        })
    });
    group.bench_function("fuzzy_match", |b| {
        b.iter(|| {
            for (_, p, g) in &pairs {
                black_box(fuzzy_match(p, g, 0.9));
            }
        })
    });
    group.bench_function("exact_set_match", |b| {
        b.iter(|| {
            for (_, p, g) in &pairs {
                black_box(exact_set_match(p, g));
            }
        })
    });
    group.bench_function("execution_match", |b| {
        b.iter(|| {
            for (db, p, g) in &pairs {
                black_box(execution_match(p, g, &bench.databases[*db]));
            }
        })
    });
    // test-suite size sweep: the DESIGN.md §5 ablation
    for k in [2usize, 4, 8] {
        let suites: Vec<TestSuite> = bench
            .databases
            .iter()
            .map(|db| TestSuite::build(db, k, 7))
            .collect();
        group.bench_function(format!("test_suite_k{k}"), |b| {
            b.iter(|| {
                for (db, p, g) in &pairs {
                    black_box(test_suite_match(p, g, &suites[*db]));
                }
            })
        });
    }
    group.bench_function("manual_3_judges", |b| {
        let panel = JudgePanel::new(3, 0.92, 5);
        b.iter(|| {
            for (db, p, g) in &pairs {
                black_box(panel.judge(p, g, &bench.databases[*db]));
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = metric_benches
}
criterion_main!(benches);
