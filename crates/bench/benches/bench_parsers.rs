//! Criterion benchmarks and ablations for the parser taxonomy:
//!
//! * per-family parse latency (the Table 4 latency column, isolated);
//! * schema-linking ablation (lexical vs +embeddings vs +synonyms) — the
//!   DESIGN.md §5 linking-strategy ablation;
//! * demonstration-selection ablation (random vs similarity vs diversity);
//! * execution-guided decoding's executor-call overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use nli_core::{NlQuestion, Prng, SemanticParser};
use nli_data::spider_like::{self, SpiderConfig};
use nli_lm::{DemoSelection, LlmKind, PromptStrategy};
use nli_text2sql::{
    ExecutionGuided, GrammarConfig, GrammarParser, LinkConfig, Linker, LlmParser, RuleBasedParser,
};
use std::hint::black_box;

fn bench_suite() -> (nli_data::SqlBenchmark, Vec<(usize, NlQuestion)>) {
    let bench = spider_like::build(&SpiderConfig {
        n_databases: 13,
        n_dev_databases: 3,
        n_train: 20,
        n_dev: 20,
        ..Default::default()
    });
    let questions: Vec<(usize, NlQuestion)> = bench
        .dev
        .iter()
        .map(|e| (e.db, e.question.clone()))
        .collect();
    (bench, questions)
}

fn parser_benches(c: &mut Criterion) {
    let (bench, questions) = bench_suite();

    let mut group = c.benchmark_group("parser_latency");
    let rule = RuleBasedParser::new();
    let grammar = GrammarParser::new(GrammarConfig::neural());
    let reasoner = GrammarParser::new(GrammarConfig::llm_reasoner());
    let llm = LlmParser::new(LlmKind::Frontier, PromptStrategy::ZeroShot, 1);
    group.bench_function("rule_based", |b| {
        b.iter(|| {
            for (db, q) in &questions {
                black_box(rule.parse(q, &bench.databases[*db]).ok());
            }
        })
    });
    group.bench_function("grammar_neural", |b| {
        b.iter(|| {
            for (db, q) in &questions {
                black_box(grammar.parse(q, &bench.databases[*db]).ok());
            }
        })
    });
    group.bench_function("llm_reasoner_config", |b| {
        b.iter(|| {
            for (db, q) in &questions {
                black_box(reasoner.parse(q, &bench.databases[*db]).ok());
            }
        })
    });
    group.bench_function("llm_zero_shot", |b| {
        b.iter(|| {
            for (db, q) in &questions {
                black_box(llm.parse(q, &bench.databases[*db]).ok());
            }
        })
    });
    group.finish();

    // --- linking ablation ---------------------------------------------------
    let mut group = c.benchmark_group("linking_ablation");
    let configs = [
        ("lexical_only", LinkConfig::lexical_only()),
        (
            "plus_embeddings",
            LinkConfig {
                lexical: true,
                synonyms: false,
                embeddings: true,
                values: true,
                alignment: None,
                threshold: 0.58,
            },
        ),
        ("world_knowledge", LinkConfig::world_knowledge()),
    ];
    for (name, cfg) in configs {
        let linker = Linker::new(cfg);
        group.bench_function(name, |b| {
            b.iter(|| {
                for (db, q) in &questions {
                    black_box(linker.link(&q.text, &bench.databases[*db]));
                }
            })
        });
    }
    group.finish();

    // --- demo-selection ablation -----------------------------------------------
    let demos: Vec<nli_lm::Demonstration> = bench
        .train
        .iter()
        .map(|e| nli_lm::Demonstration {
            question: e.question.text.clone(),
            program: e.gold.to_string(),
        })
        .collect();
    let mut group = c.benchmark_group("demo_selection");
    for (name, selection) in [
        ("random", DemoSelection::Random),
        ("similarity", DemoSelection::Similarity),
        ("diversity", DemoSelection::Diversity),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = Prng::new(7);
                for (_, q) in &questions {
                    black_box(nli_lm::prompt::select_demos(
                        &q.text, &demos, 4, selection, &mut rng,
                    ));
                }
            })
        });
    }
    group.finish();

    // --- execution-guided overhead --------------------------------------------
    let mut group = c.benchmark_group("execution_guided");
    group.bench_function("grammar_plain", |b| {
        let p = GrammarParser::new(GrammarConfig::neural());
        b.iter(|| {
            for (db, q) in &questions {
                black_box(p.parse(q, &bench.databases[*db]).ok());
            }
        })
    });
    group.bench_function("grammar_plus_eg", |b| {
        let p = ExecutionGuided::new(GrammarParser::new(GrammarConfig::neural()), 4, false);
        b.iter(|| {
            for (db, q) in &questions {
                black_box(p.parse(q, &bench.databases[*db]).ok());
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = parser_benches
}
criterion_main!(benches);
