//! Criterion micro-benchmarks for the SQL execution engine: scan, filter,
//! join, aggregate, nested, and set-operation queries over a generated
//! retail database — the cost ladder behind every execution-based
//! experiment in the harness.

use criterion::{criterion_group, criterion_main, Criterion};
use nli_core::{with_threads, Prng};
use nli_data::domains;
use nli_data::schema_gen::{generate_database, DbGenConfig};
use nli_metrics::{test_suite_match_with, TestSuite};
use nli_sql::SqlEngine;
use std::hint::black_box;

fn engine_benches(c: &mut Criterion) {
    let domain = domains::domain("retail").unwrap();
    let cfg = DbGenConfig {
        min_tables: 3,
        optional_col_p: 1.0,
        rows: (200, 200),
    };
    let db = generate_database(domain, 0, &cfg, &mut Prng::new(42));
    let engine = SqlEngine::new();

    let queries = [
        ("scan", "SELECT * FROM products"),
        ("filter", "SELECT name FROM products WHERE price > 100"),
        (
            "join",
            "SELECT products.name, sales.amount FROM sales JOIN products \
             ON sales.product_id = products.id",
        ),
        (
            "group",
            "SELECT category, AVG(price) FROM products GROUP BY category",
        ),
        (
            "join_group_order",
            "SELECT products.category, SUM(sales.amount) FROM sales JOIN products \
             ON sales.product_id = products.id GROUP BY products.category \
             ORDER BY SUM(sales.amount) DESC",
        ),
        (
            "nested",
            "SELECT name FROM products WHERE id IN \
             (SELECT product_id FROM sales WHERE amount > 500)",
        ),
        (
            "set_op",
            "SELECT category FROM products UNION SELECT city FROM stores",
        ),
    ];

    let mut group = c.benchmark_group("sql_engine");
    for (name, sql) in queries {
        // validate once so a broken query fails loudly, not silently
        engine.run_sql(sql, &db).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| black_box(engine.run_sql(black_box(sql), &db).unwrap()))
        });
    }
    group.finish();

    // parse-only vs parse+execute split
    let mut group = c.benchmark_group("sql_frontend");
    group.bench_function("parse_complex", |b| {
        b.iter(|| {
            black_box(
                nli_sql::parse_query(
                    "SELECT products.category, SUM(sales.amount) FROM sales JOIN products \
                     ON sales.product_id = products.id WHERE sales.amount > 10 \
                     GROUP BY products.category HAVING COUNT(*) > 1 \
                     ORDER BY SUM(sales.amount) DESC LIMIT 5",
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("normalize", |b| {
        b.iter(|| {
            black_box(nli_sql::normalize(
                "select  NAME from products where PRICE>5",
            ))
        })
    });
    group.finish();
}

/// Prepared-plan execution vs the string round-trip, over one query and a
/// test suite of 32 fuzzed database variants sharing a schema — the exact
/// access pattern of test-suite matching, where the prepared API pays one
/// parse+plan for the whole suite instead of one per variant.
fn prepared_vs_string(c: &mut Criterion) {
    let domain = domains::domain("retail").unwrap();
    let cfg = DbGenConfig {
        min_tables: 3,
        optional_col_p: 1.0,
        rows: (64, 64),
    };
    let base = generate_database(domain, 0, &cfg, &mut Prng::new(7));
    let suite = TestSuite::build(&base, 32, 0xBEEF);
    let sql = "SELECT products.category, SUM(sales.amount) FROM sales JOIN products \
               ON sales.product_id = products.id GROUP BY products.category \
               ORDER BY SUM(sales.amount) DESC";
    // validate once against every variant
    SqlEngine::new().run_sql(sql, &base).unwrap();

    let mut group = c.benchmark_group("prepared_pipeline");
    // string round-trip with a cold engine per call — the pre-refactor
    // consumer pattern: every execution pays parse + plan
    group.bench_function("string_roundtrip_x32", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            for db in &suite.variants {
                let engine = SqlEngine::new();
                rows += black_box(engine.run_sql(sql, db).unwrap()).rows.len();
            }
            rows
        })
    });
    // prepared once, executed per variant: 1 parse + 1 plan
    group.bench_function("prepare_once_execute_x32", |b| {
        b.iter(|| {
            let engine = SqlEngine::new();
            let prepared = engine.prepare(sql, &base.schema).unwrap();
            let mut rows = 0usize;
            for db in &suite.variants {
                rows += black_box(prepared.execute(db).unwrap()).rows.len();
            }
            rows
        })
    });
    // warm plan cache (the steady state inside evaluation loops)
    let warm = SqlEngine::new();
    warm.run_sql(sql, &base).unwrap();
    group.bench_function("warm_cache_run_sql_x32", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            for db in &suite.variants {
                rows += black_box(warm.run_sql(sql, db).unwrap()).rows.len();
            }
            rows
        })
    });
    group.finish();
}

/// The table3 test-suite path — [`test_suite_match_with`] over a large
/// fuzzed suite — at 1 vs 4 worker threads. The parallel runtime's
/// determinism contract makes both runs return the same verdict; the
/// speedup is the acceptance check for the `nli_core::par` fan-out.
fn par_speedup(c: &mut Criterion) {
    let domain = domains::domain("retail").unwrap();
    let cfg = DbGenConfig {
        min_tables: 3,
        optional_col_p: 1.0,
        rows: (96, 96),
    };
    let base = generate_database(domain, 0, &cfg, &mut Prng::new(7));
    let suite = TestSuite::build(&base, 64, 0xBEEF);
    let sql = "SELECT products.category, SUM(sales.amount) FROM sales JOIN products \
               ON sales.product_id = products.id GROUP BY products.category \
               ORDER BY SUM(sales.amount) DESC";
    let engine = SqlEngine::new();
    assert!(test_suite_match_with(&engine, sql, sql, &suite));

    let mut group = c.benchmark_group("par_test_suite_match");
    group.bench_function("threads_1", |b| {
        b.iter(|| {
            with_threads(1, || {
                black_box(test_suite_match_with(&engine, sql, sql, &suite))
            })
        })
    });
    group.bench_function("threads_4", |b| {
        b.iter(|| {
            with_threads(4, || {
                black_box(test_suite_match_with(&engine, sql, sql, &suite))
            })
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = engine_benches, prepared_vs_string, par_speedup
}
criterion_main!(benches);
