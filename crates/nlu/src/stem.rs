//! A light English suffix stemmer.
//!
//! Schema linking needs "singers" to match the `singer` table and "sold" to
//! stay away from it; full Porter stemming is unnecessary (and its
//! aggressiveness hurts precision on short schema names), so we strip the
//! handful of inflectional suffixes that actually occur in NL questions.

/// Stem a lower-case word. Idempotent: `stem(stem(w)) == stem(w)`.
pub fn stem(word: &str) -> String {
    let w = word.to_lowercase();
    let n = w.len();
    // Short words are left intact: stripping from <=3-letter words creates
    // more collisions than it resolves ("its" -> "it" is fine, "was" -> "wa"
    // is not).
    if n <= 3 {
        return w;
    }

    // Order matters: longest applicable suffix first.
    if let Some(base) = w.strip_suffix("ies") {
        if base.len() >= 2 {
            return format!("{base}y"); // categories -> category
        }
    }
    if let Some(base) = w.strip_suffix("sses") {
        return format!("{base}ss"); // classes -> class
    }
    if let Some(base) = w.strip_suffix("es") {
        // matches -> match, but "types" is handled by the plain-s rule; only
        // strip "es" after sibilants where bare-"s" stripping would leave a
        // non-word ("matche").
        if base.ends_with("ch")
            || base.ends_with("sh")
            || base.ends_with('x')
            || base.ends_with('z')
        {
            return base.to_string();
        }
    }
    if w.ends_with('s') && !w.ends_with("ss") && !w.ends_with("us") && !w.ends_with("is") {
        return w[..n - 1].to_string(); // singers -> singer
    }
    if let Some(base) = w.strip_suffix("ing") {
        if base.len() >= 3 {
            // doubling: running -> run
            let b = base.as_bytes();
            if b.len() >= 2
                && b[b.len() - 1] == b[b.len() - 2]
                && !matches!(b[b.len() - 1], b'l' | b's' | b'z')
            {
                return base[..base.len() - 1].to_string();
            }
            return base.to_string(); // showing -> show
        }
    }
    if let Some(base) = w.strip_suffix("ed") {
        if base.len() >= 3 {
            let b = base.as_bytes();
            if b.len() >= 2
                && b[b.len() - 1] == b[b.len() - 2]
                && !matches!(b[b.len() - 1], b'l' | b's' | b'z')
            {
                return base[..base.len() - 1].to_string();
            }
            return base.to_string(); // sorted -> sort
        }
    }
    w
}

/// Stem every word of an iterator, preserving order.
pub fn stem_all<'a>(words: impl IntoIterator<Item = &'a str>) -> Vec<String> {
    words.into_iter().map(stem).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn plural_nouns() {
        assert_eq!(stem("singers"), "singer");
        assert_eq!(stem("categories"), "category");
        assert_eq!(stem("matches"), "match");
        assert_eq!(stem("classes"), "class");
        assert_eq!(stem("boxes"), "box");
    }

    #[test]
    fn keeps_non_plurals() {
        assert_eq!(stem("status"), "status");
        assert_eq!(stem("analysis"), "analysis");
        assert_eq!(stem("address"), "address");
    }

    #[test]
    fn verb_inflections() {
        assert_eq!(stem("showing"), "show");
        assert_eq!(stem("sorted"), "sort");
        assert_eq!(
            stem("running"),
            "runn".strip_suffix('n').map(String::from).unwrap()
        );
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("was"), "was");
        assert_eq!(stem("ids"), "ids");
    }

    proptest! {
        #[test]
        fn stemming_is_idempotent(w in "[a-z]{1,12}") {
            let once = stem(&w);
            prop_assert_eq!(stem(&once), once.clone());
        }

        #[test]
        fn stem_never_longer_than_input_plus_one(w in "[a-z]{1,12}") {
            // the "ies"->"y" rule can shorten by 2; nothing grows by more
            // than the final 'y' substitution.
            prop_assert!(stem(&w).len() <= w.len() + 1);
        }
    }
}
