//! N-gram overlap scores, including BLEU.
//!
//! The survey's "fuzzy match" metric family scores generated SQL against the
//! gold query with n-gram statistics (Doddington 2002 / BLEU); we implement
//! BLEU-4 with the standard brevity penalty and +1 smoothing for short
//! programs.

use std::collections::HashMap;

/// Modified n-gram precision of `cand` against `refr` for a given `n`.
/// Returns `(clipped matches, total candidate n-grams)`.
fn clipped_counts(cand: &[String], refr: &[String], n: usize) -> (usize, usize) {
    if cand.len() < n {
        return (0, 0);
    }
    let mut ref_counts: HashMap<&[String], usize> = HashMap::new();
    for g in refr.windows(n) {
        *ref_counts.entry(g).or_insert(0) += 1;
    }
    let mut cand_counts: HashMap<&[String], usize> = HashMap::new();
    for g in cand.windows(n) {
        *cand_counts.entry(g).or_insert(0) += 1;
    }
    let total = cand.len() - n + 1;
    let mut matched = 0;
    for (g, c) in cand_counts {
        matched += c.min(ref_counts.get(g).copied().unwrap_or(0));
    }
    (matched, total)
}

/// Smoothed BLEU-N (default callers use N=4) on pre-tokenized sequences.
/// Uses add-one smoothing on every order so short sequences don't zero out.
pub fn bleu(cand: &[String], refr: &[String], max_n: usize) -> f64 {
    if cand.is_empty() || refr.is_empty() {
        return if cand.is_empty() && refr.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let max_n = max_n.max(1);
    let mut log_sum = 0.0;
    for n in 1..=max_n {
        let (m, t) = clipped_counts(cand, refr, n);
        // add-one smoothing
        let p = (m as f64 + 1.0) / (t as f64 + 1.0);
        log_sum += p.ln();
    }
    let geo = (log_sum / max_n as f64).exp();
    // brevity penalty
    let bp = if cand.len() >= refr.len() {
        1.0
    } else {
        (1.0 - refr.len() as f64 / cand.len() as f64).exp()
    };
    bp * geo
}

/// Convenience: BLEU-4 over whitespace-ish SQL tokens (lower-cased).
pub fn bleu_text(cand: &str, refr: &str) -> f64 {
    let tok = |s: &str| -> Vec<String> {
        s.to_lowercase()
            .replace(['(', ')', ',', ';'], " ")
            .split_whitespace()
            .map(|w| w.to_string())
            .collect()
    };
    bleu(&tok(cand), &tok(refr), 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    #[test]
    fn identical_sequences_score_high() {
        let a = toks("select name from singer where age > 30");
        assert!(bleu(&a, &a, 4) > 0.9);
    }

    #[test]
    fn disjoint_sequences_score_low() {
        let a = toks("select name from singer");
        let b = toks("insert into nothing values");
        assert!(bleu(&a, &b, 4) < 0.35);
    }

    #[test]
    fn near_miss_scores_between() {
        let gold = toks("select name from singer where age > 30");
        let near = toks("select name from singer where age > 40");
        let far = toks("select count ( * ) from concert");
        let s_near = bleu(&near, &gold, 4);
        let s_far = bleu(&far, &gold, 4);
        assert!(s_near > s_far);
        assert!(s_near > 0.5);
    }

    #[test]
    fn brevity_penalty_hurts_truncations() {
        let gold = toks("select name from singer where age > 30");
        let short = toks("select name");
        assert!(bleu(&short, &gold, 4) < 0.3);
    }

    #[test]
    fn empty_edge_cases() {
        assert_eq!(bleu(&[], &[], 4), 1.0);
        assert_eq!(bleu(&[], &toks("a"), 4), 0.0);
        assert_eq!(bleu(&toks("a"), &[], 4), 0.0);
    }

    #[test]
    fn text_wrapper_normalizes_case_and_parens() {
        let s = bleu_text("SELECT COUNT(*) FROM t", "select count ( * ) from t");
        assert!(s > 0.9, "got {s}");
    }
}
