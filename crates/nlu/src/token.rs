//! Word-level tokenization with number and quoted-literal handling.
//!
//! Tokenization is the first step of every parsing stage. Quoted spans are
//! kept whole because they are almost always value literals ("show sales for
//! 'Acme Corp'"), and numbers are tagged so parsers can ground comparisons.

/// Token category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Alphabetic word, lower-cased.
    Word,
    /// Numeric literal (integer or decimal).
    Number,
    /// Single- or double-quoted span, quotes stripped, case preserved.
    Quoted,
}

/// A token with its surface text.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    pub text: String,
    pub kind: TokenKind,
}

impl Token {
    pub fn word(text: &str) -> Self {
        Token {
            text: text.to_lowercase(),
            kind: TokenKind::Word,
        }
    }
    pub fn number(text: &str) -> Self {
        Token {
            text: text.to_string(),
            kind: TokenKind::Number,
        }
    }
    pub fn quoted(text: &str) -> Self {
        Token {
            text: text.to_string(),
            kind: TokenKind::Quoted,
        }
    }
}

/// Tokenize a natural-language question.
///
/// - words are lower-cased; hyphens and underscores split words;
/// - integers and decimals become [`TokenKind::Number`] (a leading `-` is
///   kept when directly attached);
/// - `'...'` and `"..."` spans become a single [`TokenKind::Quoted`] token
///   with original casing;
/// - all other punctuation is discarded.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\'' || c == '"' {
            let quote = c;
            let start = i + 1;
            let mut j = start;
            while j < chars.len() && chars[j] != quote {
                j += 1;
            }
            if j < chars.len() {
                let span: String = chars[start..j].iter().collect();
                if !span.is_empty() {
                    out.push(Token::quoted(&span));
                }
                i = j + 1;
                continue;
            }
            // Unterminated quote: treat as punctuation (e.g. apostrophe).
            i += 1;
        } else if c.is_ascii_digit()
            || (c == '-'
                && i + 1 < chars.len()
                && chars[i + 1].is_ascii_digit()
                && out.last().is_none_or(|t| t.kind == TokenKind::Word))
        {
            let start = i;
            let mut j = if c == '-' { i + 1 } else { i };
            let mut seen_dot = false;
            while j < chars.len() && (chars[j].is_ascii_digit() || (chars[j] == '.' && !seen_dot)) {
                if chars[j] == '.' {
                    // Only consume the dot when a digit follows (not "3.").
                    if j + 1 >= chars.len() || !chars[j + 1].is_ascii_digit() {
                        break;
                    }
                    seen_dot = true;
                }
                j += 1;
            }
            let span: String = chars[start..j].iter().collect();
            out.push(Token::number(&span));
            i = j;
        } else if c.is_alphabetic() {
            let start = i;
            let mut j = i;
            while j < chars.len() && (chars[j].is_alphanumeric() && !chars[j].is_ascii_digit()) {
                j += 1;
            }
            let span: String = chars[start..j].iter().collect();
            out.push(Token::word(&span));
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// Convenience: the lower-cased word/number/quoted texts only.
pub fn tokenize_words(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .map(|t| match t.kind {
            TokenKind::Quoted => t.text,
            _ => t.text.to_lowercase(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_lowercased_and_punct_dropped() {
        let toks = tokenize_words("Show me ALL the singers!");
        assert_eq!(toks, vec!["show", "me", "all", "the", "singers"]);
    }

    #[test]
    fn numbers_are_tagged() {
        let toks = tokenize("more than 3 items costing 2.5 dollars");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["3", "2.5"]);
    }

    #[test]
    fn negative_numbers_after_word() {
        let toks = tokenize("temperature below -5 degrees");
        assert!(toks
            .iter()
            .any(|t| t.text == "-5" && t.kind == TokenKind::Number));
    }

    #[test]
    fn quoted_spans_are_single_tokens_with_case() {
        let toks = tokenize("sales for 'Acme Corp' last year");
        let q: Vec<&Token> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Quoted)
            .collect();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].text, "Acme Corp");
    }

    #[test]
    fn double_quotes_work_too() {
        let toks = tokenize("where name is \"Jane Doe\"");
        assert!(toks
            .iter()
            .any(|t| t.text == "Jane Doe" && t.kind == TokenKind::Quoted));
    }

    #[test]
    fn unterminated_quote_does_not_eat_rest() {
        let toks = tokenize_words("singer's name");
        assert_eq!(toks, vec!["singer", "s", "name"]);
    }

    #[test]
    fn hyphen_splits_words() {
        let toks = tokenize_words("multi-turn queries");
        assert_eq!(toks, vec!["multi", "turn", "queries"]);
    }

    #[test]
    fn trailing_dot_not_part_of_number() {
        let toks = tokenize("costs 3.");
        assert!(toks
            .iter()
            .any(|t| t.text == "3" && t.kind == TokenKind::Number));
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   !?.,").is_empty());
    }
}
