//! Classic string and set similarities used by schema linking, retrieval,
//! and fuzzy evaluation.

use std::collections::HashSet;

/// Levenshtein edit distance (unit costs), O(|a|·|b|) with a rolling row.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// `1 - dist/max_len`, in `[0, 1]`; 1.0 for two empty strings.
pub fn normalized_edit_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaccard similarity of two token multisets (treated as sets).
pub fn jaccard<'a>(
    a: impl IntoIterator<Item = &'a str>,
    b: impl IntoIterator<Item = &'a str>,
) -> f64 {
    let sa: HashSet<&str> = a.into_iter().collect();
    let sb: HashSet<&str> = b.into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

/// Blended lexical similarity used for schema linking: exact match scores
/// 1.0, then the max of edit similarity and word-level containment.
///
/// Containment handles multi-word display names: "unit price" vs question
/// token "price" should score well even though edit distance is poor.
pub fn lexical_similarity(a: &str, b: &str) -> f64 {
    let (a, b) = (a.to_lowercase(), b.to_lowercase());
    if a == b {
        return 1.0;
    }
    let edit = normalized_edit_similarity(&a, &b);
    let wa: Vec<&str> = a.split_whitespace().collect();
    let wb: Vec<&str> = b.split_whitespace().collect();
    let containment = if !wa.is_empty() && !wb.is_empty() {
        let (small, large): (&Vec<&str>, &Vec<&str>) = if wa.len() <= wb.len() {
            (&wa, &wb)
        } else {
            (&wb, &wa)
        };
        let hits = small.iter().filter(|w| large.contains(w)).count();
        0.9 * hits as f64 / small.len() as f64
    } else {
        0.0
    };
    edit.max(containment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn edit_similarity_range() {
        assert_eq!(normalized_edit_similarity("", ""), 1.0);
        assert_eq!(normalized_edit_similarity("abc", "abc"), 1.0);
        assert_eq!(normalized_edit_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(vec!["a", "b"], vec!["a", "b"]), 1.0);
        assert_eq!(jaccard(vec!["a"], vec!["b"]), 0.0);
        assert!((jaccard(vec!["a", "b"], vec!["b", "c"]) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard(Vec::<&str>::new(), Vec::<&str>::new()), 1.0);
    }

    #[test]
    fn containment_beats_edit_for_multiword_names() {
        let s = lexical_similarity("unit price", "price");
        assert!(s >= 0.85, "got {s}");
    }

    #[test]
    fn lexical_similarity_is_case_insensitive() {
        assert_eq!(lexical_similarity("Revenue", "revenue"), 1.0);
    }

    proptest! {
        #[test]
        fn levenshtein_symmetry(a in "[a-c]{0,8}", b in "[a-c]{0,8}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn levenshtein_triangle(a in "[a-c]{0,6}", b in "[a-c]{0,6}", c in "[a-c]{0,6}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        #[test]
        fn similarities_in_unit_interval(a in ".{0,10}", b in ".{0,10}") {
            let s = lexical_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}
