//! Shallow chunking helpers: n-gram span enumeration and literal extraction.
//!
//! Rule-based parsers scan question n-grams against schema lexicons; these
//! helpers produce the candidate spans and pull out the number/quoted
//! literals that become SQL comparison operands.

use crate::token::{Token, TokenKind};

/// All contiguous word n-grams of length `1..=max_n`, longest first (so
//  greedy matching prefers maximal spans). Each item is `(start, len, text)`.
pub fn ngrams_upto(words: &[String], max_n: usize) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    for n in (1..=max_n.min(words.len().max(1))).rev() {
        if n > words.len() {
            continue;
        }
        for start in 0..=(words.len() - n) {
            out.push((start, n, words[start..start + n].join(" ")));
        }
    }
    out
}

/// Numeric literals in token order, parsed as `f64`.
pub fn extract_numbers(tokens: &[Token]) -> Vec<f64> {
    tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Number)
        .filter_map(|t| t.text.parse().ok())
        .collect()
}

/// Quoted literals in token order (case preserved).
pub fn extract_quoted(tokens: &[Token]) -> Vec<String> {
    tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Quoted)
        .map(|t| t.text.clone())
        .collect()
}

/// Spelled-out small numbers ("two", "ten") → value; parsers use this for
/// LIMIT phrases like "top five".
pub fn spelled_number(word: &str) -> Option<i64> {
    Some(match word {
        "one" => 1,
        "two" => 2,
        "three" => 3,
        "four" => 4,
        "five" => 5,
        "six" => 6,
        "seven" => 7,
        "eight" => 8,
        "nine" => 9,
        "ten" => 10,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    #[test]
    fn ngrams_longest_first() {
        let words: Vec<String> = ["unit", "price", "total"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let grams = ngrams_upto(&words, 2);
        assert_eq!(grams[0].2, "unit price");
        assert_eq!(grams[1].2, "price total");
        assert!(grams.iter().any(|g| g.2 == "total"));
        assert_eq!(grams.len(), 2 + 3);
    }

    #[test]
    fn ngrams_handle_short_inputs() {
        let words = vec!["one".to_string()];
        let grams = ngrams_upto(&words, 3);
        assert_eq!(grams.len(), 1);
        assert!(ngrams_upto(&[], 3).is_empty());
    }

    #[test]
    fn extracts_numbers_and_quotes() {
        let toks = tokenize("top 5 products from 'North Region' above 12.5");
        assert_eq!(extract_numbers(&toks), vec![5.0, 12.5]);
        assert_eq!(extract_quoted(&toks), vec!["North Region".to_string()]);
    }

    #[test]
    fn spelled_numbers() {
        assert_eq!(spelled_number("five"), Some(5));
        assert_eq!(spelled_number("eleven"), None);
    }
}
