//! Synonym lexicon.
//!
//! Two consumers: (1) rule-based schema linking widens token↔schema matches
//! through synonym groups; (2) the Spider-SYN-style robustness generator
//! *adversarially* rewrites questions by swapping schema mentions for their
//! synonyms — precisely the perturbation the survey reports learned parsers
//! struggle with.

use std::collections::HashMap;

/// Groups of mutually substitutable words. Lookup is by lower-case word.
#[derive(Debug, Clone, Default)]
pub struct SynonymLexicon {
    groups: Vec<Vec<String>>,
    index: HashMap<String, usize>,
}

impl SynonymLexicon {
    /// An empty lexicon.
    pub fn new() -> Self {
        SynonymLexicon::default()
    }

    /// The built-in English lexicon covering the vocabulary the dataset
    /// generators draw on (domain nouns, aggregates, chart words).
    pub fn default_english() -> Self {
        let mut lex = SynonymLexicon::new();
        let groups: &[&[&str]] = &[
            &["average", "mean", "avg"],
            &["total", "sum", "overall", "aggregate"],
            &["count", "number", "amount"],
            &[
                "maximum", "max", "highest", "largest", "greatest", "biggest", "most",
            ],
            &["minimum", "min", "lowest", "smallest", "least", "fewest"],
            &["revenue", "earnings", "income", "proceeds", "sales"],
            &["price", "cost", "fee", "charge"],
            &["name", "title", "label"],
            &["employee", "worker", "staff"],
            &["customer", "client", "buyer", "shopper"],
            &["product", "item", "good", "merchandise"],
            &["student", "pupil", "learner"],
            &["teacher", "instructor", "professor", "lecturer"],
            &["doctor", "physician", "clinician"],
            &["patient", "case"],
            &["car", "vehicle", "automobile", "auto"],
            &["city", "town", "municipality"],
            &["country", "nation", "state"],
            &["salary", "wage", "pay", "compensation"],
            &["age", "years"],
            &["year", "yr"],
            &["quantity", "volume", "units"],
            &["department", "division", "unit"],
            &["category", "type", "kind", "class", "genre"],
            &["rating", "score", "grade", "mark"],
            &["date", "day", "time"],
            &["singer", "vocalist", "artist"],
            &["song", "track", "tune"],
            &["movie", "film", "picture"],
            &["book", "publication", "volume"],
            &["order", "purchase", "transaction"],
            &["store", "shop", "outlet", "branch"],
            &["flight", "trip", "journey"],
            &["airport", "airfield", "terminal"],
            &["team", "club", "squad"],
            &["player", "athlete", "competitor"],
            &["game", "match", "contest"],
            &["hospital", "clinic", "infirmary"],
            &["account", "ledger"],
            &["region", "area", "zone", "district"],
            &["population", "inhabitants", "residents"],
            &["capacity", "size"],
            &["budget", "funding", "allocation"],
            &["chart", "graph", "plot", "diagram"],
            &["bar", "column"],
        ];
        for g in groups {
            lex.add_group(g.iter().map(|s| s.to_string()).collect());
        }
        lex
    }

    /// Add a group; words joining an existing group merge into it.
    pub fn add_group(&mut self, words: Vec<String>) {
        let words: Vec<String> = words.into_iter().map(|w| w.to_lowercase()).collect();
        // If any word already belongs to a group, extend that group.
        if let Some(&gi) = words.iter().find_map(|w| self.index.get(w)) {
            for w in words {
                if self.index.insert(w.clone(), gi).is_none() {
                    self.groups[gi].push(w);
                }
            }
            return;
        }
        let gi = self.groups.len();
        for w in &words {
            self.index.insert(w.clone(), gi);
        }
        self.groups.push(words);
    }

    /// Whether two words are synonyms (case-insensitive). A word is its own
    /// synonym.
    pub fn are_synonyms(&self, a: &str, b: &str) -> bool {
        let (a, b) = (a.to_lowercase(), b.to_lowercase());
        if a == b {
            return true;
        }
        match (self.index.get(&a), self.index.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// All synonyms of `word` excluding itself, in group order.
    pub fn synonyms_of(&self, word: &str) -> Vec<&str> {
        let w = word.to_lowercase();
        match self.index.get(&w) {
            Some(&gi) => self.groups[gi]
                .iter()
                .filter(|s| **s != w)
                .map(|s| s.as_str())
                .collect(),
            None => Vec::new(),
        }
    }

    /// Canonical representative (first member) of `word`'s group; the word
    /// itself when unknown. Linking keys on canonicals so "mean age" links
    /// like "average age".
    pub fn canonical<'a>(&'a self, word: &'a str) -> &'a str {
        match self.index.get(&word.to_lowercase()) {
            Some(&gi) => self.groups[gi][0].as_str(),
            None => word,
        }
    }

    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_lexicon_links_aggregates() {
        let lex = SynonymLexicon::default_english();
        assert!(lex.are_synonyms("average", "mean"));
        assert!(lex.are_synonyms("Highest", "MAX"));
        assert!(!lex.are_synonyms("average", "total"));
    }

    #[test]
    fn word_is_its_own_synonym_even_if_unknown() {
        let lex = SynonymLexicon::new();
        assert!(lex.are_synonyms("zyzzy", "zyzzy"));
        assert!(!lex.are_synonyms("zyzzy", "qwert"));
    }

    #[test]
    fn synonyms_of_excludes_self() {
        let lex = SynonymLexicon::default_english();
        let syns = lex.synonyms_of("average");
        assert!(syns.contains(&"mean"));
        assert!(!syns.contains(&"average"));
        assert!(lex.synonyms_of("xylophone").is_empty());
    }

    #[test]
    fn canonical_maps_group_members_to_head() {
        let lex = SynonymLexicon::default_english();
        assert_eq!(lex.canonical("mean"), "average");
        assert_eq!(lex.canonical("average"), "average");
        assert_eq!(lex.canonical("unseen"), "unseen");
    }

    #[test]
    fn overlapping_groups_merge() {
        let mut lex = SynonymLexicon::new();
        lex.add_group(vec!["a".into(), "b".into()]);
        lex.add_group(vec!["b".into(), "c".into()]);
        assert!(lex.are_synonyms("a", "c"));
        assert_eq!(lex.group_count(), 1);
    }
}
