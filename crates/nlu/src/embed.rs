//! Hashing character-trigram embeddings.
//!
//! A dependency-free stand-in for learned word embeddings: strings map to a
//! fixed-dimension vector by hashing their character trigrams (with word
//! boundary markers). Morphologically related strings share most trigrams,
//! so cosine similarity behaves like a cheap subword embedding — exactly
//! what the retrieval components (RGVisNet-style codebase lookup, few-shot
//! demonstration selection) need.

/// Embedding dimensionality. 256 keeps collisions rare for schema-sized
/// vocabularies while staying cache-friendly.
pub const DIM: usize = 256;

/// A dense embedding vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding(pub Vec<f32>);

impl Embedding {
    /// Embed a string: hash every padded character trigram of every word
    /// into one of [`DIM`] buckets, then L2-normalize.
    pub fn of(text: &str) -> Self {
        let mut v = vec![0f32; DIM];
        for word in text.to_lowercase().split(|c: char| !c.is_alphanumeric()) {
            if word.is_empty() {
                continue;
            }
            let padded: Vec<char> = std::iter::once('^')
                .chain(word.chars())
                .chain(std::iter::once('$'))
                .collect();
            for tri in padded.windows(3) {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for &c in tri {
                    h ^= c as u64;
                    h = h.wrapping_mul(0x1_0000_01b3);
                }
                v[(h % DIM as u64) as usize] += 1.0;
            }
            // single-char and two-char words still get one trigram thanks to
            // the boundary padding.
        }
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        Embedding(v)
    }

    /// Cosine similarity; both operands are unit vectors so this is a dot
    /// product. Zero vectors (empty strings) give 0.
    pub fn cosine(&self, other: &Embedding) -> f64 {
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a * b) as f64)
            .sum()
    }

    /// Elementwise mean of several embeddings, re-normalized. Used to embed
    /// bags of schema names.
    pub fn centroid(items: &[Embedding]) -> Embedding {
        let mut v = vec![0f32; DIM];
        for e in items {
            for (a, b) in v.iter_mut().zip(&e.0) {
                *a += b;
            }
        }
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        Embedding(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_have_cosine_one() {
        let a = Embedding::of("total revenue by category");
        let b = Embedding::of("total revenue by category");
        assert!((a.cosine(&b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn morphological_variants_are_close() {
        let a = Embedding::of("singer");
        let b = Embedding::of("singers");
        let c = Embedding::of("airport");
        assert!(a.cosine(&b) > a.cosine(&c));
        assert!(a.cosine(&b) > 0.6);
    }

    #[test]
    fn unrelated_strings_are_far() {
        let a = Embedding::of("quarterly revenue");
        let b = Embedding::of("xylophone zoo");
        assert!(a.cosine(&b) < 0.3);
    }

    #[test]
    fn empty_string_embeds_to_zero() {
        let z = Embedding::of("");
        assert_eq!(z.cosine(&Embedding::of("anything")), 0.0);
    }

    #[test]
    fn case_insensitive() {
        let a = Embedding::of("Revenue");
        let b = Embedding::of("revenue");
        assert!((a.cosine(&b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn centroid_is_between_members() {
        let a = Embedding::of("price");
        let b = Embedding::of("amount");
        let c = Embedding::centroid(&[a.clone(), b.clone()]);
        assert!(c.cosine(&a) > 0.3);
        assert!(c.cosine(&b) > 0.3);
    }
}
