//! English stopwords for schema linking.
//!
//! The list is intentionally *small*: aggressive stopword removal deletes
//! exactly the function words ("more", "than", "not") that carry comparison
//! semantics, so only genuinely content-free words are included.

/// Words carrying no linkable content.
static STOPWORDS: &[&str] = &[
    "a", "an", "the", "of", "in", "on", "at", "to", "for", "by", "with", "and", "or", "is", "are",
    "was", "were", "be", "been", "do", "does", "did", "me", "my", "we", "our", "you", "your", "it",
    "its", "this", "that", "these", "those", "there", "please", "can", "could", "would", "i", "s",
    "as", "from", "have", "has", "had", "what", "which", "who", "whose", "when", "much", "give",
    "show", "list", "find", "display", "tell", "return", "get", "all", "each", "us", "their",
];

/// Whether `word` (lower-case) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.contains(&word)
}

/// Filter stopwords out of a token sequence.
pub fn remove_stopwords<'a>(words: impl IntoIterator<Item = &'a str>) -> Vec<&'a str> {
    words.into_iter().filter(|w| !is_stopword(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_words_are_stopwords() {
        for w in ["the", "of", "is", "please", "show"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_kept() {
        for w in ["singer", "revenue", "more", "than", "not", "average"] {
            assert!(!is_stopword(w), "{w} should NOT be a stopword");
        }
    }

    #[test]
    fn removal_preserves_order() {
        let out = remove_stopwords(vec!["show", "the", "average", "age", "of", "singers"]);
        assert_eq!(out, vec!["average", "age", "singers"]);
    }
}
