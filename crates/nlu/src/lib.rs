//! # nli-nlu
//!
//! The natural-language understanding substrate shared by every parser stage
//! in the workspace. The survey's traditional parsers are built *entirely*
//! out of these pieces (tokenize → stem → lexicon lookup → rank), while the
//! neural- and foundation-model-stage analogues use them for feature
//! extraction, schema linking, and demonstration selection.
//!
//! Everything here is deterministic and dependency-free: a word tokenizer
//! with number/quote handling ([`tokenize`]), a light suffix stemmer
//! ([`stem()`](stem())), stopwords, a synonym lexicon ([`SynonymLexicon`]), hashing
//! character-trigram embeddings ([`embed`]), classic string similarities
//! ([`similarity`]), and n-gram BLEU ([`ngram::bleu`]).

pub mod chunk;
pub mod embed;
pub mod ngram;
pub mod similarity;
pub mod stem;
pub mod stopwords;
pub mod synonyms;
pub mod token;

pub use chunk::{extract_numbers, extract_quoted, ngrams_upto};
pub use embed::Embedding;
pub use similarity::{jaccard, levenshtein, lexical_similarity, normalized_edit_similarity};
pub use stem::stem;
pub use stopwords::is_stopword;
pub use synonyms::SynonymLexicon;
pub use token::{tokenize, tokenize_words, Token, TokenKind};
