//! Property-based testing of the execution engine against a fixed schema:
//! random well-typed queries must never panic, must honour LIMIT/DISTINCT/
//! ORDER BY, and simple filters must agree with a straightforward
//! reimplementation (differential check).

use nli_core::{Column, DataType, Database, Date, Prng, Schema, Table, Value};
use nli_sql::{BinOp, SqlEngine};
use proptest::prelude::*;

/// A fixed two-table schema with an FK, populated deterministically.
fn db() -> Database {
    let mut schema = Schema::new(
        "fuzz",
        vec![
            Table::new(
                "items",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("name", DataType::Text),
                    Column::new("kind", DataType::Text),
                    Column::new("price", DataType::Float),
                    Column::new("stock", DataType::Int),
                    Column::new("added", DataType::Date),
                ],
            ),
            Table::new(
                "orders",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("item_id", DataType::Int),
                    Column::new("qty", DataType::Int),
                ],
            ),
        ],
    );
    schema
        .add_foreign_key("orders", "item_id", "items", "id")
        .unwrap();
    let mut d = Database::empty(schema);
    let mut rng = Prng::new(0xF00D);
    let kinds = ["a", "b", "c"];
    for i in 1..=40i64 {
        d.insert(
            "items",
            vec![
                i.into(),
                format!("item{i}").into(),
                (*rng.pick(&kinds)).into(),
                ((rng.range(1, 1000) as f64) / 10.0).into(),
                rng.range(0, 50).into(),
                Date::new(
                    2020 + rng.range(0, 5) as i32,
                    rng.range(1, 12) as u8,
                    rng.range(1, 28) as u8,
                )
                .into(),
            ],
        )
        .unwrap();
    }
    for i in 1..=120i64 {
        d.insert(
            "orders",
            vec![i.into(), rng.range(1, 40).into(), rng.range(1, 9).into()],
        )
        .unwrap();
    }
    d
}

fn num_col() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("price"), Just("stock"), Just("id")]
}

fn any_col() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("id"),
        Just("name"),
        Just("kind"),
        Just("price"),
        Just("stock"),
    ]
}

fn cmp() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("="),
        Just("!="),
        Just("<"),
        Just("<="),
        Just(">"),
        Just(">=")
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_filters_never_panic_and_respect_limit(
        col in num_col(),
        op in cmp(),
        v in 0..120i64,
        limit in 1..10u64,
        desc in any::<bool>(),
    ) {
        let d = db();
        let engine = SqlEngine::new();
        let sql = format!(
            "SELECT name FROM items WHERE {col} {op} {v} ORDER BY {col} {} LIMIT {limit}",
            if desc { "DESC" } else { "ASC" }
        );
        let rs = engine.run_sql(&sql, &d).unwrap();
        prop_assert!(rs.rows.len() <= limit as usize);
        prop_assert!(rs.ordered);
    }

    #[test]
    fn filter_agrees_with_reference_implementation(
        op in cmp(),
        v in 0..1000i64,
    ) {
        let d = db();
        let engine = SqlEngine::new();
        let sql = format!("SELECT id FROM items WHERE stock {op} {v}");
        let rs = engine.run_sql(&sql, &d).unwrap();
        // reference: manual scan
        let binop = match op {
            "=" => BinOp::Eq,
            "!=" => BinOp::Neq,
            "<" => BinOp::Lt,
            "<=" => BinOp::Le,
            ">" => BinOp::Gt,
            _ => BinOp::Ge,
        };
        let expected: Vec<i64> = d
            .rows_of("items")
            .unwrap()
            .iter()
            .filter(|r| {
                let stock = match &r[4] {
                    Value::Int(i) => *i,
                    _ => unreachable!(),
                };
                match binop {
                    BinOp::Eq => stock == v,
                    BinOp::Neq => stock != v,
                    BinOp::Lt => stock < v,
                    BinOp::Le => stock <= v,
                    BinOp::Gt => stock > v,
                    _ => stock >= v,
                }
            })
            .map(|r| match &r[0] {
                Value::Int(i) => *i,
                _ => unreachable!(),
            })
            .collect();
        let mut got: Vec<i64> = rs
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Int(i) => *i,
                other => panic!("{other:?}"),
            })
            .collect();
        let mut expected = expected;
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn distinct_projection_has_no_duplicates(col in any_col()) {
        let d = db();
        let rs = SqlEngine::new()
            .run_sql(&format!("SELECT DISTINCT {col} FROM items"), &d)
            .unwrap();
        let mut seen = std::collections::HashSet::new();
        for row in &rs.rows {
            prop_assert!(seen.insert(row[0].canonical()));
        }
    }

    #[test]
    fn group_count_sums_to_table_size(col in prop_oneof![Just("kind"), Just("stock")]) {
        let d = db();
        let rs = SqlEngine::new()
            .run_sql(&format!("SELECT {col}, COUNT(*) FROM items GROUP BY {col}"), &d)
            .unwrap();
        let total: i64 = rs
            .rows
            .iter()
            .map(|r| match &r[1] {
                Value::Int(i) => *i,
                other => panic!("{other:?}"),
            })
            .sum();
        prop_assert_eq!(total, 40);
    }

    #[test]
    fn join_cardinality_matches_child_rows_with_valid_fk(qty in 1..9i64) {
        let d = db();
        let engine = SqlEngine::new();
        let joined = engine
            .run_sql(
                &format!(
                    "SELECT COUNT(*) FROM orders JOIN items ON orders.item_id = items.id \
                     WHERE orders.qty = {qty}"
                ),
                &d,
            )
            .unwrap();
        let plain = engine
            .run_sql(&format!("SELECT COUNT(*) FROM orders WHERE qty = {qty}"), &d)
            .unwrap();
        // every order references a valid item, so the join is lossless
        prop_assert_eq!(joined.rows[0][0].clone(), plain.rows[0][0].clone());
    }

    #[test]
    fn order_by_produces_sorted_output(desc in any::<bool>()) {
        let d = db();
        let dir = if desc { "DESC" } else { "ASC" };
        let rs = SqlEngine::new()
            .run_sql(&format!("SELECT price FROM items ORDER BY price {dir}"), &d)
            .unwrap();
        let vals: Vec<f64> = rs
            .rows
            .iter()
            .map(|r| r[0].as_f64().unwrap())
            .collect();
        for w in vals.windows(2) {
            if desc {
                prop_assert!(w[0] >= w[1]);
            } else {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn set_ops_obey_set_algebra(v in 0..50i64) {
        let d = db();
        let engine = SqlEngine::new();
        let a = format!("SELECT kind FROM items WHERE stock > {v}");
        let b = "SELECT kind FROM items".to_string();
        // A INTERSECT B == distinct(A) when A ⊆ B
        let inter = engine.run_sql(&format!("{a} INTERSECT {b}"), &d).unwrap();
        let dist_a = engine
            .run_sql(&format!("SELECT DISTINCT kind FROM items WHERE stock > {v}"), &d)
            .unwrap();
        prop_assert!(inter.same_result(&dist_a));
        // A EXCEPT B is empty when A ⊆ B
        let except = engine.run_sql(&format!("{a} EXCEPT {b}"), &d).unwrap();
        prop_assert!(except.rows.is_empty());
    }
}
