//! NULL / three-valued-logic edge cases, checked *differentially*: every
//! query runs through both the reference tree-walk interpreter and the
//! planned pipeline, and the two must agree before the expected rows are
//! asserted (ISSUE 4 satellite). These are the cases where SQL engines
//! classically diverge — NULL join keys, `NOT (x = NULL)`, NULL ordering,
//! DISTINCT over NULLs, aggregates skipping NULLs — pinned here so the
//! fuzzer's differential oracle has a human-readable spec to point at.
//!
//! Dialect notes asserted below (deliberate, SQLite-flavoured choices):
//! - `IN (list)` ignores NULLs in the list: `x NOT IN (1, NULL)` can
//!   return true, unlike standard SQL's UNKNOWN.
//! - ORDER BY uses a total order with NULLs *first* ascending (so last
//!   descending).

use nli_core::{Column, DataType, Database, Schema, Table, Value};
use nli_sql::interp::run_tree_walk;
use nli_sql::parser::parse_query;
use nli_sql::{ResultSet, SqlEngine};

fn db() -> Database {
    let schema = {
        let mut s = Schema::new(
            "null_lab",
            vec![
                Table::new(
                    "people",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("name", DataType::Text),
                        Column::new("age", DataType::Int),
                        Column::new("team_id", DataType::Int),
                    ],
                ),
                Table::new(
                    "teams",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("city", DataType::Text),
                    ],
                ),
            ],
        );
        s.add_foreign_key("people", "team_id", "teams", "id")
            .unwrap();
        s
    };
    let mut db = Database::empty(schema);
    db.insert_all(
        "teams",
        vec![
            vec![Value::Int(1), Value::Text("Oslo".into())],
            vec![Value::Int(2), Value::Null],
        ],
    )
    .unwrap();
    db.insert_all(
        "people",
        vec![
            vec![
                Value::Int(1),
                Value::Text("Ana".into()),
                Value::Int(30),
                Value::Int(1),
            ],
            vec![
                Value::Int(2),
                Value::Text("Bo".into()),
                Value::Null,
                Value::Int(2),
            ],
            vec![Value::Int(3), Value::Null, Value::Int(25), Value::Null],
            vec![
                Value::Int(4),
                Value::Text("Ana".into()),
                Value::Null,
                Value::Null,
            ],
        ],
    )
    .unwrap();
    db
}

/// Run through interpreter and planner; assert they agree; return interp's
/// result for the expectation asserts.
fn both(sql: &str, db: &Database) -> ResultSet {
    let q = parse_query(sql).unwrap_or_else(|e| panic!("parse {sql}: {e}"));
    let a = run_tree_walk(&q, db).unwrap_or_else(|e| panic!("interp {sql}: {e}"));
    let b = SqlEngine::new()
        .prepare_ast(&q, &db.schema)
        .and_then(|p| p.execute(db))
        .unwrap_or_else(|e| panic!("plan {sql}: {e}"));
    assert!(
        b.matches_canonical(&a.to_canonical()),
        "interp/plan diverge on {sql}:\n  interp: {:?}\n  plan:   {:?}",
        a.rows,
        b.rows
    );
    a
}

fn ints(rs: &ResultSet) -> Vec<Option<i64>> {
    rs.rows
        .iter()
        .map(|r| match &r[0] {
            Value::Int(i) => Some(*i),
            Value::Null => None,
            other => panic!("expected int/null, got {other}"),
        })
        .collect()
}

#[test]
fn null_join_keys_never_match() {
    // people 3 and 4 have NULL team_id: hash joins drop NULL keys on both
    // the build and probe sides, so only ids 1 and 2 appear.
    let rs = both(
        "SELECT people.id FROM people JOIN teams ON people.team_id = teams.id ORDER BY people.id",
        &db(),
    );
    assert_eq!(ints(&rs), vec![Some(1), Some(2)]);
}

#[test]
fn where_join_spelling_also_drops_null_keys() {
    // the same join written as a WHERE equijoin (planner extracts it into
    // a hash join; interp filters a cross product) must agree too
    let rs = both(
        "SELECT people.id FROM people, teams WHERE people.team_id = teams.id ORDER BY people.id",
        &db(),
    );
    assert_eq!(ints(&rs), vec![Some(1), Some(2)]);
}

#[test]
fn equals_null_is_never_true_and_not_doesnt_rescue_it() {
    // x = NULL is UNKNOWN for every row, and NOT(UNKNOWN) is still
    // UNKNOWN: both filters keep nothing.
    let rs = both("SELECT id FROM people WHERE age = NULL", &db());
    assert!(rs.rows.is_empty());
    let rs = both("SELECT id FROM people WHERE NOT (age = NULL)", &db());
    assert!(rs.rows.is_empty());
    // IS NULL is the total predicate that actually observes NULLs
    let rs = both("SELECT id FROM people WHERE age IS NULL ORDER BY id", &db());
    assert_eq!(ints(&rs), vec![Some(2), Some(4)]);
    let rs = both(
        "SELECT id FROM people WHERE age IS NOT NULL ORDER BY id",
        &db(),
    );
    assert_eq!(ints(&rs), vec![Some(1), Some(3)]);
}

#[test]
fn null_ordering_is_total_nulls_first_asc_last_desc() {
    let rs = both("SELECT age FROM people ORDER BY age ASC, id ASC", &db());
    assert_eq!(ints(&rs), vec![None, None, Some(25), Some(30)]);
    let rs = both("SELECT age FROM people ORDER BY age DESC, id ASC", &db());
    assert_eq!(ints(&rs), vec![Some(30), Some(25), None, None]);
}

#[test]
fn distinct_collapses_nulls_into_one_row() {
    let rs = both("SELECT DISTINCT age FROM people ORDER BY age", &db());
    assert_eq!(ints(&rs), vec![None, Some(25), Some(30)]);
}

#[test]
fn group_by_places_all_nulls_in_one_group() {
    let rs = both(
        "SELECT age, COUNT(*) FROM people GROUP BY age ORDER BY age",
        &db(),
    );
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Null, Value::Int(2)],
            vec![Value::Int(25), Value::Int(1)],
            vec![Value::Int(30), Value::Int(1)],
        ]
    );
}

#[test]
fn aggregates_skip_nulls_but_count_star_does_not() {
    let rs = both(
        "SELECT COUNT(*), COUNT(age), SUM(age), MIN(age), MAX(age) FROM people",
        &db(),
    );
    assert_eq!(
        rs.rows,
        vec![vec![
            Value::Int(4),
            Value::Int(2),
            Value::Int(55),
            Value::Int(25),
            Value::Int(30),
        ]]
    );
    // AVG divides by the non-NULL count, not the row count
    let rs = both("SELECT AVG(age) FROM people", &db());
    assert_eq!(rs.rows, vec![vec![Value::Float(27.5)]]);
    // aggregates over an all-NULL input produce NULL (COUNT produces 0)
    let rs = both(
        "SELECT SUM(age), AVG(age), MIN(age), COUNT(age) FROM people WHERE id = 2",
        &db(),
    );
    assert_eq!(
        rs.rows,
        vec![vec![Value::Null, Value::Null, Value::Null, Value::Int(0)]]
    );
}

#[test]
fn count_distinct_ignores_nulls() {
    let rs = both("SELECT COUNT(DISTINCT name) FROM people", &db());
    assert_eq!(rs.rows, vec![vec![Value::Int(2)]]); // Ana, Bo
}

#[test]
fn in_list_with_null_probe_or_null_element() {
    // NULL probe value: IN and NOT IN both skip the row (sql_eq on NULL
    // is no-verdict, so membership never confirms)
    let rs = both(
        "SELECT id FROM people WHERE age IN (25, 30) ORDER BY id",
        &db(),
    );
    assert_eq!(ints(&rs), vec![Some(1), Some(3)]);
    let rs = both(
        "SELECT id FROM people WHERE age NOT IN (25) ORDER BY id",
        &db(),
    );
    // dialect: rows with NULL age do not satisfy NOT IN either
    assert_eq!(ints(&rs), vec![Some(1)]);
    // dialect: a NULL *in the list* is ignored rather than poisoning the
    // whole NOT IN (SQLite's UNKNOWN-propagating behaviour is NOT copied)
    let rs = both(
        "SELECT id FROM people WHERE age NOT IN (25, NULL) ORDER BY id",
        &db(),
    );
    assert_eq!(ints(&rs), vec![Some(1)]);
}

#[test]
fn between_with_null_operand_filters_the_row() {
    let rs = both(
        "SELECT id FROM people WHERE age BETWEEN 20 AND 40 ORDER BY id",
        &db(),
    );
    assert_eq!(ints(&rs), vec![Some(1), Some(3)]);
    let rs = both(
        "SELECT id FROM people WHERE age NOT BETWEEN 20 AND 26 ORDER BY id",
        &db(),
    );
    // NULL age is UNKNOWN under NOT BETWEEN too
    assert_eq!(ints(&rs), vec![Some(1)]);
}

#[test]
fn like_on_null_text_is_unknown() {
    let rs = both(
        "SELECT id FROM people WHERE name LIKE 'A%' ORDER BY id",
        &db(),
    );
    assert_eq!(ints(&rs), vec![Some(1), Some(4)]);
    let rs = both(
        "SELECT id FROM people WHERE name NOT LIKE 'A%' ORDER BY id",
        &db(),
    );
    // id 3 (NULL name) appears in neither LIKE nor NOT LIKE
    assert_eq!(ints(&rs), vec![Some(2)]);
}

#[test]
fn null_boolean_connectives_follow_kleene_logic() {
    // UNKNOWN OR TRUE = TRUE; UNKNOWN AND TRUE = UNKNOWN (filtered)
    let rs = both(
        "SELECT id FROM people WHERE age > 20 OR id > 0 ORDER BY id",
        &db(),
    );
    assert_eq!(ints(&rs), vec![Some(1), Some(2), Some(3), Some(4)]);
    let rs = both(
        "SELECT id FROM people WHERE age > 20 AND id > 0 ORDER BY id",
        &db(),
    );
    assert_eq!(ints(&rs), vec![Some(1), Some(3)]);
}

#[test]
fn set_ops_treat_null_rows_as_equal() {
    // set-op results are unordered: compare canonical multisets
    // UNION dedups NULL with NULL ...
    let rs = both("SELECT age FROM people UNION SELECT age FROM people", &db());
    assert_eq!(
        rs.canonical_rows(),
        vec![
            vec!["25".to_string()],
            vec!["30".into()],
            vec!["NULL".into()]
        ]
    );
    // ... and EXCEPT removes the NULL rows
    let rs = both(
        "SELECT age FROM people EXCEPT SELECT age FROM people WHERE age IS NULL",
        &db(),
    );
    assert_eq!(
        rs.canonical_rows(),
        vec![vec!["25".to_string()], vec!["30".into()]]
    );
}

#[test]
fn arithmetic_on_null_yields_null_rows() {
    let rs = both("SELECT age + 1 FROM people ORDER BY id", &db());
    assert_eq!(ints(&rs), vec![Some(31), None, Some(26), None]);
}

#[test]
fn in_subquery_with_null_keys_on_both_sides() {
    // subquery returns {1, 2, NULL}; NULL team_ids never match
    let rs = both(
        "SELECT id FROM people WHERE team_id IN (SELECT id FROM teams) ORDER BY id",
        &db(),
    );
    assert_eq!(ints(&rs), vec![Some(1), Some(2)]);
    let rs = both(
        "SELECT id FROM people WHERE team_id NOT IN (SELECT id FROM teams) ORDER BY id",
        &db(),
    );
    assert!(rs.rows.is_empty());
}
