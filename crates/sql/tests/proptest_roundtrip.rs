//! Property-based fuzzing of the SQL frontend: for arbitrary well-formed
//! queries, the canonical printing must re-parse to the identical AST, and
//! normalization must be a fixed point. This is the strongest guarantee the
//! exact-match metrics rest on.

use nli_core::{Date, Value};
use nli_sql::{
    parse_query, AggFunc, BinOp, ColName, Expr, JoinCond, OrderItem, Query, Select, SelectItem,
    SetOp, TableRef,
};
use proptest::prelude::*;

/// Identifier that cannot collide with a SQL keyword.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("keyword collision", |s| {
        !matches!(
            s.as_str(),
            "select"
                | "from"
                | "where"
                | "group"
                | "by"
                | "having"
                | "order"
                | "limit"
                | "and"
                | "or"
                | "not"
                | "in"
                | "like"
                | "between"
                | "is"
                | "null"
                | "true"
                | "false"
                | "join"
                | "on"
                | "as"
                | "distinct"
                | "union"
                | "intersect"
                | "except"
                | "asc"
                | "desc"
                | "count"
                | "sum"
                | "avg"
                | "min"
                | "max"
                | "inner"
                | "all"
        )
    })
}

fn col_name() -> impl Strategy<Value = ColName> {
    (proptest::option::of(ident()), ident()).prop_map(|(t, c)| ColName {
        table: t,
        column: c,
    })
}

/// Literal values whose canonical spelling re-parses to themselves.
fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        // non-integral floats only (integral floats canonicalize to Int)
        (any::<i32>(), 1u8..100).prop_map(|(i, f)| Value::Float(i as f64 + f as f64 / 256.0)),
        // text that cannot be mistaken for a date
        "[a-zA-Z][a-zA-Z0-9 ']{0,10}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        (1990i32..2030, 1u8..=12, 1u8..=28).prop_map(|(y, m, d)| Value::Date(Date::new(y, m, d))),
    ]
}

fn agg_func() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Count),
        Just(AggFunc::Sum),
        Just(AggFunc::Avg),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
    ]
}

fn cmp_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Neq),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

/// A single predicate (comparison / LIKE / BETWEEN / IN / IS NULL).
fn predicate() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (col_name(), cmp_op(), literal()).prop_map(|(c, op, v)| Expr::binary(
            Expr::Column(c),
            op,
            Expr::Literal(v)
        )),
        (col_name(), "[a-z%_]{1,6}", any::<bool>()).prop_map(|(c, pattern, negated)| {
            Expr::Like {
                expr: Box::new(Expr::Column(c)),
                pattern,
                negated,
            }
        }),
        (col_name(), any::<i32>(), any::<i32>(), any::<bool>()).prop_map(|(c, lo, hi, negated)| {
            Expr::Between {
                expr: Box::new(Expr::Column(c)),
                low: Box::new(Expr::Literal(Value::Int(lo.min(hi) as i64))),
                high: Box::new(Expr::Literal(Value::Int(lo.max(hi) as i64))),
                negated,
            }
        }),
        (
            col_name(),
            proptest::collection::vec(literal(), 1..4),
            any::<bool>()
        )
            .prop_map(|(c, list, negated)| Expr::InList {
                expr: Box::new(Expr::Column(c)),
                list,
                negated,
            }),
        (col_name(), any::<bool>()).prop_map(|(c, negated)| Expr::IsNull {
            expr: Box::new(Expr::Column(c)),
            negated
        }),
    ]
}

/// Boolean combinations of predicates, bounded depth.
fn condition() -> impl Strategy<Value = Expr> {
    predicate().prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(a, BinOp::And, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::binary(a, BinOp::Or, b)),
        ]
    })
}

fn select_item() -> impl Strategy<Value = SelectItem> {
    prop_oneof![
        col_name().prop_map(|c| SelectItem::plain(Expr::Column(c))),
        (agg_func(), col_name(), any::<bool>()).prop_map(|(f, c, distinct)| SelectItem {
            expr: Expr::Agg {
                func: f,
                arg: Box::new(Expr::Column(c)),
                distinct
            },
            alias: None,
        }),
        Just(SelectItem::plain(Expr::count_star())),
        (col_name(), ident()).prop_map(|(c, alias)| SelectItem {
            expr: Expr::Column(c),
            alias: Some(alias),
        }),
    ]
}

fn select() -> impl Strategy<Value = Select> {
    (
        any::<bool>(),
        proptest::collection::vec(select_item(), 1..4),
        ident(),
        proptest::option::of((ident(), col_name(), col_name())),
        proptest::option::of(condition()),
        proptest::collection::vec(col_name().prop_map(Expr::Column), 0..3),
        proptest::option::of(condition()),
        proptest::collection::vec(
            (col_name(), any::<bool>()).prop_map(|(c, desc)| OrderItem {
                expr: Expr::Column(c),
                desc,
            }),
            0..3,
        ),
        proptest::option::of(0u64..1000),
    )
        .prop_map(
            |(
                distinct,
                items,
                table,
                join,
                where_clause,
                group_by,
                having_raw,
                order_by,
                limit,
            )| {
                let mut from = vec![TableRef { name: table }];
                let mut joins = Vec::new();
                if let Some((t2, l, r)) = join {
                    from.push(TableRef { name: t2 });
                    joins.push(JoinCond { left: l, right: r });
                }
                // HAVING is only well-formed under GROUP BY
                let having = if group_by.is_empty() {
                    None
                } else {
                    having_raw
                };
                Select {
                    distinct,
                    items,
                    from,
                    joins,
                    where_clause,
                    group_by,
                    having,
                    order_by,
                    limit,
                }
            },
        )
}

fn query() -> impl Strategy<Value = Query> {
    (
        select(),
        proptest::option::of((
            prop_oneof![
                Just(SetOp::Union),
                Just(SetOp::Intersect),
                Just(SetOp::Except)
            ],
            select(),
        )),
    )
        .prop_map(|(s, compound)| Query {
            select: s,
            compound: compound.map(|(op, rhs)| (op, Box::new(Query::single(rhs)))),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn print_parse_roundtrip(q in query()) {
        let text = q.to_string();
        let reparsed = parse_query(&text)
            .unwrap_or_else(|e| panic!("canonical text failed to parse: {e}\n{text}"));
        prop_assert_eq!(&reparsed, &q, "roundtrip changed the AST for: {}", text);
    }

    #[test]
    fn normalization_is_a_fixed_point_on_canonical_text(q in query()) {
        let text = q.to_string();
        let n = nli_sql::normalize::normalize(&text);
        prop_assert_eq!(&n, &text);
    }

    #[test]
    fn component_decomposition_is_reflexive(q in query()) {
        let c = nli_sql::decompose(&q);
        prop_assert!(c.matches(&c.clone()));
        let (m, t) = c.overlap(&c);
        prop_assert_eq!(m, t);
    }

    #[test]
    fn lowercased_keywords_reparse_identically(q in query()) {
        // keyword case is inessential; literals must be preserved though,
        // so only lowercase outside quotes
        let text = q.to_string();
        let mut lower = String::new();
        let mut in_str = false;
        for ch in text.chars() {
            if ch == '\'' { in_str = !in_str; }
            if in_str { lower.push(ch); } else { lower.extend(ch.to_lowercase()); }
        }
        let a = parse_query(&text).unwrap();
        let b = parse_query(&lower)
            .unwrap_or_else(|e| panic!("lowercased text failed: {e}\n{lower}"));
        prop_assert_eq!(a, b);
    }
}
