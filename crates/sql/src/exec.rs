//! In-memory SQL execution engine.
//!
//! Implements the survey's `E(e, D) → r` for the SQL task. The engine is a
//! straightforward interpreter: bind FROM, hash-join the chain, filter,
//! group/aggregate, project, de-duplicate, sort, limit, and apply set
//! operators. Uncorrelated subqueries are materialized once before row
//! evaluation (the Spider-class dialect has no correlated subqueries).
//!
//! Semantics follow SQLite where SQL leaves room: `LIKE` is
//! case-insensitive, non-aggregated select items in a grouped query take
//! the group's first row, aggregates over empty inputs yield `NULL`
//! (`COUNT` yields 0).

use crate::ast::{AggFunc, BinOp, ColName, Expr, Query, Select, SetOp};
use nli_core::{Database, ExecutionEngine, NliError, Result, Value};
use std::cmp::Ordering;
use std::collections::HashMap;

/// An executed result table `r`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
    /// Whether row order is semantically meaningful (the query had a
    /// top-level ORDER BY). Execution-match comparison is order-sensitive
    /// only when this is set.
    pub ordered: bool,
}

impl ResultSet {
    pub fn empty() -> Self {
        ResultSet { columns: Vec::new(), rows: Vec::new(), ordered: false }
    }

    /// Canonical multiset representation: each row canonicalized, then rows
    /// sorted. Two results with the same multiset of rows compare equal.
    pub fn canonical_rows(&self) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.canonical()).collect())
            .collect();
        rows.sort();
        rows
    }

    /// Execution-match comparison: order-sensitive iff either side is
    /// ordered; column *names* are ignored (only positions/values matter),
    /// mirroring standard execution-accuracy evaluation.
    pub fn same_result(&self, other: &ResultSet) -> bool {
        if self.ordered || other.ordered {
            if self.rows.len() != other.rows.len() {
                return false;
            }
            self.rows
                .iter()
                .zip(&other.rows)
                .all(|(a, b)| canonical_row(a) == canonical_row(b))
        } else {
            self.canonical_rows() == other.canonical_rows()
        }
    }
}

fn canonical_row(r: &[Value]) -> Vec<String> {
    r.iter().map(|v| v.canonical()).collect()
}

/// The SQL execution engine. Stateless; all state lives in the database.
#[derive(Debug, Clone, Copy, Default)]
pub struct SqlEngine;

impl SqlEngine {
    pub fn new() -> Self {
        SqlEngine
    }

    /// Execute a query string (parse + execute).
    pub fn run_sql(&self, sql: &str, db: &Database) -> Result<ResultSet> {
        let q = crate::parser::parse_query(sql)?;
        self.execute(&q, db)
    }
}

impl ExecutionEngine for SqlEngine {
    type Expr = Query;
    type Output = ResultSet;

    fn execute(&self, expr: &Query, db: &Database) -> Result<ResultSet> {
        exec_query(expr, db)
    }
}

fn exec_query(q: &Query, db: &Database) -> Result<ResultSet> {
    let mut left = exec_select(&q.select, db)?;
    if let Some((op, rhs)) = &q.compound {
        let right = exec_query(rhs, db)?;
        if !left.rows.is_empty()
            && !right.rows.is_empty()
            && left.columns.len() != right.columns.len()
        {
            return Err(NliError::Execution(format!(
                "{} arity mismatch: {} vs {}",
                op.name(),
                left.columns.len(),
                right.columns.len()
            )));
        }
        let mut set: Vec<Vec<Value>> = Vec::new();
        let key = |r: &[Value]| canonical_row(r);
        match op {
            SetOp::Union => {
                let mut seen = std::collections::HashSet::new();
                for row in left.rows.into_iter().chain(right.rows) {
                    if seen.insert(key(&row)) {
                        set.push(row);
                    }
                }
            }
            SetOp::Intersect => {
                let rkeys: std::collections::HashSet<_> =
                    right.rows.iter().map(|r| key(r)).collect();
                let mut seen = std::collections::HashSet::new();
                for row in left.rows {
                    let k = key(&row);
                    if rkeys.contains(&k) && seen.insert(k) {
                        set.push(row);
                    }
                }
            }
            SetOp::Except => {
                let rkeys: std::collections::HashSet<_> =
                    right.rows.iter().map(|r| key(r)).collect();
                let mut seen = std::collections::HashSet::new();
                for row in left.rows {
                    let k = key(&row);
                    if !rkeys.contains(&k) && seen.insert(k) {
                        set.push(row);
                    }
                }
            }
        }
        left.rows = set;
        left.ordered = false; // set ops discard ordering
    }
    Ok(left)
}

/// Binding environment: which tables are in scope and at which row offset.
struct Scope<'a> {
    db: &'a Database,
    /// `(table name, schema table index, column offset)` per FROM entry.
    bound: Vec<(String, usize, usize)>,
    width: usize,
}

impl<'a> Scope<'a> {
    fn bind(db: &'a Database, select: &Select) -> Result<Scope<'a>> {
        let mut bound = Vec::new();
        let mut offset = 0;
        for t in &select.from {
            let ti = db
                .schema
                .table_index(&t.name)
                .ok_or_else(|| NliError::UnknownTable(t.name.clone()))?;
            bound.push((t.name.to_lowercase(), ti, offset));
            offset += db.schema.tables[ti].columns.len();
        }
        Ok(Scope { db, bound, width: offset })
    }

    /// Resolve a column name to an offset in the joined row.
    fn resolve(&self, c: &ColName) -> Result<usize> {
        match &c.table {
            Some(t) => {
                let (_, ti, off) = self
                    .bound
                    .iter()
                    .find(|(name, _, _)| name == &t.to_lowercase())
                    .ok_or_else(|| NliError::UnknownTable(t.clone()))?;
                let ci = self.db.schema.tables[*ti]
                    .column_index(&c.column)
                    .ok_or_else(|| NliError::UnknownColumn(format!("{t}.{}", c.column)))?;
                Ok(off + ci)
            }
            None => {
                let mut hit = None;
                for (_, ti, off) in &self.bound {
                    if let Some(ci) = self.db.schema.tables[*ti].column_index(&c.column) {
                        if hit.is_some() {
                            return Err(NliError::AmbiguousColumn(c.column.clone()));
                        }
                        hit = Some(off + ci);
                    }
                }
                hit.ok_or_else(|| NliError::UnknownColumn(c.column.clone()))
            }
        }
    }

    /// All column names in scope, qualified when a name is ambiguous.
    fn output_columns(&self) -> Vec<String> {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for (_, ti, _) in &self.bound {
            for c in &self.db.schema.tables[*ti].columns {
                *counts.entry(c.name.as_str()).or_insert(0) += 1;
            }
        }
        let mut out = Vec::with_capacity(self.width);
        for (name, ti, _) in &self.bound {
            for c in &self.db.schema.tables[*ti].columns {
                if counts[c.name.as_str()] > 1 {
                    out.push(format!("{name}.{}", c.name));
                } else {
                    out.push(c.name.clone());
                }
            }
        }
        out
    }
}

fn exec_select(select: &Select, db: &Database) -> Result<ResultSet> {
    let scope = Scope::bind(db, select)?;
    let mut rows = join_from(select, db, &scope)?;

    // Materialize subqueries in WHERE/HAVING so row evaluation is pure.
    let where_clause = select
        .where_clause
        .as_ref()
        .map(|w| materialize_subqueries(w, db))
        .transpose()?;
    let having = select
        .having
        .as_ref()
        .map(|h| materialize_subqueries(h, db))
        .transpose()?;

    if let Some(w) = &where_clause {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if truthy(&eval_scalar(w, &row, &scope)?) {
                kept.push(row);
            }
        }
        rows = kept;
    }

    let is_aggregate = !select.group_by.is_empty()
        || select.items.iter().any(|i| i.expr.contains_aggregate())
        || having.as_ref().is_some_and(|h| h.contains_aggregate());

    let mut out_columns: Vec<String> = Vec::new();
    let mut out_rows: Vec<Vec<Value>> = Vec::new();
    // Sort keys aligned with out_rows, computed in the right context.
    let mut sort_keys: Vec<Vec<Value>> = Vec::new();
    let need_sort = !select.order_by.is_empty();

    if is_aggregate {
        // Group rows by the GROUP BY key (single group when absent).
        let mut groups: Vec<(Vec<String>, Vec<Vec<Value>>)> = Vec::new();
        let mut index: HashMap<Vec<String>, usize> = HashMap::new();
        for row in rows {
            let mut key = Vec::with_capacity(select.group_by.len());
            for g in &select.group_by {
                key.push(eval_scalar(g, &row, &scope)?.canonical());
            }
            match index.get(&key) {
                Some(&gi) => groups[gi].1.push(row),
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, vec![row]));
                }
            }
        }
        if groups.is_empty() && select.group_by.is_empty() {
            // Aggregates over an empty input still produce one row.
            groups.push((Vec::new(), Vec::new()));
        }
        for item in &select.items {
            out_columns.push(
                item.alias
                    .clone()
                    .unwrap_or_else(|| item.expr.to_string().to_lowercase()),
            );
        }
        for (_, grows) in &groups {
            if let Some(h) = &having {
                if !truthy(&eval_group(h, grows, &scope)?) {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(select.items.len());
            for item in &select.items {
                out.push(eval_group(&item.expr, grows, &scope)?);
            }
            if need_sort {
                let mut keys = Vec::with_capacity(select.order_by.len());
                for o in &select.order_by {
                    keys.push(eval_group(&o.expr, grows, &scope)?);
                }
                sort_keys.push(keys);
            }
            out_rows.push(out);
        }
    } else {
        // Plain projection.
        let star = select.items.len() == 1 && matches!(select.items[0].expr, Expr::Star);
        if star {
            out_columns = scope.output_columns();
        } else {
            for item in &select.items {
                if matches!(item.expr, Expr::Star) {
                    return Err(NliError::Execution(
                        "`*` must be the only select item".into(),
                    ));
                }
                out_columns.push(
                    item.alias
                        .clone()
                        .unwrap_or_else(|| item.expr.to_string().to_lowercase()),
                );
            }
        }
        for row in rows {
            if need_sort {
                let mut keys = Vec::with_capacity(select.order_by.len());
                for o in &select.order_by {
                    keys.push(eval_scalar(&o.expr, &row, &scope)?);
                }
                sort_keys.push(keys);
            }
            if star {
                out_rows.push(row);
            } else {
                let mut out = Vec::with_capacity(select.items.len());
                for item in &select.items {
                    out.push(eval_scalar(&item.expr, &row, &scope)?);
                }
                out_rows.push(out);
            }
        }
    }

    if need_sort {
        let mut order: Vec<usize> = (0..out_rows.len()).collect();
        order.sort_by(|&a, &b| {
            for (o, (ka, kb)) in select
                .order_by
                .iter()
                .zip(sort_keys[a].iter().zip(sort_keys[b].iter()))
            {
                let c = ka.total_cmp(kb);
                let c = if o.desc { c.reverse() } else { c };
                if c != Ordering::Equal {
                    return c;
                }
            }
            Ordering::Equal
        });
        out_rows = order.into_iter().map(|i| std::mem::take(&mut out_rows[i])).collect();
    }

    if select.distinct {
        let mut seen = std::collections::HashSet::new();
        out_rows.retain(|r| seen.insert(canonical_row(r)));
    }

    if let Some(l) = select.limit {
        out_rows.truncate(l as usize);
    }

    Ok(ResultSet { columns: out_columns, rows: out_rows, ordered: need_sort })
}

/// Build the joined row stream for the FROM clause. Explicit ON conditions
/// become hash joins; tables without a connecting condition are
/// cross-joined (their predicates, if any, live in WHERE).
fn join_from(select: &Select, db: &Database, scope: &Scope) -> Result<Vec<Vec<Value>>> {
    let mut rows: Vec<Vec<Value>> = db
        .rows(scope.bound[0].1).to_vec();
    let mut bound_width = db.schema.tables[scope.bound[0].1].columns.len();

    for (i, (_, ti, _)) in scope.bound.iter().enumerate().skip(1) {
        let new_rows = db.rows(*ti);
        let new_off = scope.bound[i].2;
        let new_width = db.schema.tables[*ti].columns.len();

        // Find a join condition connecting the new table to the bound part.
        let mut probe: Option<(usize, usize)> = None; // (bound offset, new-side column)
        for j in &select.joins {
            let l = scope.resolve(&j.left)?;
            let r = scope.resolve(&j.right)?;
            let (inner, outer) = if (new_off..new_off + new_width).contains(&l) {
                (l, r)
            } else if (new_off..new_off + new_width).contains(&r) {
                (r, l)
            } else {
                continue;
            };
            if outer < bound_width {
                probe = Some((outer, inner - new_off));
                break;
            }
        }

        let mut joined = Vec::new();
        match probe {
            Some((outer_off, inner_ci)) => {
                let mut table: HashMap<String, Vec<&Vec<Value>>> = HashMap::new();
                for nr in new_rows {
                    if nr[inner_ci].is_null() {
                        continue;
                    }
                    table.entry(nr[inner_ci].canonical()).or_default().push(nr);
                }
                for row in &rows {
                    let key = &row[outer_off];
                    if key.is_null() {
                        continue;
                    }
                    if let Some(matches) = table.get(&key.canonical()) {
                        for nr in matches {
                            let mut combined = row.clone();
                            combined.extend((*nr).clone());
                            joined.push(combined);
                        }
                    }
                }
            }
            None => {
                for row in &rows {
                    for nr in new_rows {
                        let mut combined = row.clone();
                        combined.extend(nr.clone());
                        joined.push(combined);
                    }
                }
            }
        }
        rows = joined;
        bound_width += new_width;
    }
    Ok(rows)
}

/// Replace uncorrelated subqueries with their materialized values.
fn materialize_subqueries(e: &Expr, db: &Database) -> Result<Expr> {
    Ok(match e {
        Expr::InSubquery { expr, query, negated } => {
            let rs = exec_query(query, db)?;
            if rs.columns.len() != 1 && !rs.rows.is_empty() && rs.rows[0].len() != 1 {
                return Err(NliError::Execution(
                    "IN subquery must produce one column".into(),
                ));
            }
            let list = rs.rows.into_iter().filter_map(|mut r| {
                if r.is_empty() { None } else { Some(r.swap_remove(0)) }
            });
            Expr::InList {
                expr: Box::new(materialize_subqueries(expr, db)?),
                list: list.collect(),
                negated: *negated,
            }
        }
        Expr::ScalarSubquery(q) => {
            let rs = exec_query(q, db)?;
            let v = rs
                .rows
                .first()
                .and_then(|r| r.first())
                .cloned()
                .unwrap_or(Value::Null);
            Expr::Literal(v)
        }
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(materialize_subqueries(left, db)?),
            op: *op,
            right: Box::new(materialize_subqueries(right, db)?),
        },
        Expr::Not(inner) => Expr::Not(Box::new(materialize_subqueries(inner, db)?)),
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(materialize_subqueries(expr, db)?),
            low: Box::new(materialize_subqueries(low, db)?),
            high: Box::new(materialize_subqueries(high, db)?),
            negated: *negated,
        },
        other => other.clone(),
    })
}

/// Truthiness of a predicate value: only `Bool(true)` passes (NULL and
/// everything else fails, per SQL three-valued logic).
fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

/// Evaluate an expression in scalar (per-row) context.
fn eval_scalar(e: &Expr, row: &[Value], scope: &Scope) -> Result<Value> {
    match e {
        Expr::Column(c) => Ok(row[scope.resolve(c)?].clone()),
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Star => Err(NliError::Execution("`*` in scalar context".into())),
        Expr::Agg { .. } => Err(NliError::Execution(
            "aggregate in row context (missing GROUP BY?)".into(),
        )),
        Expr::Binary { left, op, right } => {
            let l = eval_scalar(left, row, scope)?;
            let r = eval_scalar(right, row, scope)?;
            eval_binary(&l, *op, &r)
        }
        Expr::Not(inner) => Ok(match eval_scalar(inner, row, scope)? {
            Value::Bool(b) => Value::Bool(!b),
            Value::Null => Value::Null,
            other => {
                return Err(NliError::Execution(format!("NOT applied to {other}")))
            }
        }),
        Expr::Like { expr, pattern, negated } => {
            let v = eval_scalar(expr, row, scope)?;
            Ok(match v {
                Value::Null => Value::Null,
                Value::Text(s) => {
                    let m = like_match(pattern, &s);
                    Value::Bool(m != *negated)
                }
                other => {
                    // LIKE over non-text compares the canonical spelling,
                    // matching SQLite's affinity-light behaviour.
                    let m = like_match(pattern, &other.canonical());
                    Value::Bool(m != *negated)
                }
            })
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval_scalar(expr, row, scope)?;
            let lo = eval_scalar(low, row, scope)?;
            let hi = eval_scalar(high, row, scope)?;
            match (v.compare(&lo), v.compare(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != Ordering::Less && b != Ordering::Greater;
                    Ok(Value::Bool(inside != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::InList { expr, list, negated } => {
            let v = eval_scalar(expr, row, scope)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let found = list.iter().any(|x| v.sql_eq(x) == Some(true));
            Ok(Value::Bool(found != *negated))
        }
        Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => Err(NliError::Execution(
            "unmaterialized subquery reached evaluation".into(),
        )),
        Expr::IsNull { expr, negated } => {
            let v = eval_scalar(expr, row, scope)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
    }
}

/// Evaluate an expression in group context: aggregates consume the group's
/// rows; bare columns take the group's first row (SQLite-style).
fn eval_group(e: &Expr, rows: &[Vec<Value>], scope: &Scope) -> Result<Value> {
    match e {
        Expr::Agg { func, arg, distinct } => eval_agg(*func, arg, *distinct, rows, scope),
        Expr::Binary { left, op, right } => {
            let l = eval_group(left, rows, scope)?;
            let r = eval_group(right, rows, scope)?;
            eval_binary(&l, *op, &r)
        }
        Expr::Not(inner) => Ok(match eval_group(inner, rows, scope)? {
            Value::Bool(b) => Value::Bool(!b),
            Value::Null => Value::Null,
            other => return Err(NliError::Execution(format!("NOT applied to {other}"))),
        }),
        other => match rows.first() {
            Some(first) => eval_scalar(other, first, scope),
            None => Ok(Value::Null),
        },
    }
}

fn eval_agg(
    func: AggFunc,
    arg: &Expr,
    distinct: bool,
    rows: &[Vec<Value>],
    scope: &Scope,
) -> Result<Value> {
    if matches!(arg, Expr::Star) {
        if func != AggFunc::Count {
            return Err(NliError::Execution(format!("{}(*) is invalid", func.name())));
        }
        return Ok(Value::Int(rows.len() as i64));
    }
    let mut vals = Vec::with_capacity(rows.len());
    for row in rows {
        let v = eval_scalar(arg, row, scope)?;
        if !v.is_null() {
            vals.push(v);
        }
    }
    if distinct {
        let mut seen = std::collections::HashSet::new();
        vals.retain(|v| seen.insert(v.canonical()));
    }
    Ok(match func {
        AggFunc::Count => Value::Int(vals.len() as i64),
        AggFunc::Sum | AggFunc::Avg => {
            if vals.is_empty() {
                Value::Null
            } else {
                let mut sum = 0.0;
                let mut all_int = true;
                for v in &vals {
                    match v {
                        Value::Int(i) => sum += *i as f64,
                        Value::Float(f) => {
                            sum += f;
                            all_int = false;
                        }
                        other => {
                            return Err(NliError::Execution(format!(
                                "{} over non-numeric value {other}",
                                func.name()
                            )))
                        }
                    }
                }
                if func == AggFunc::Avg {
                    Value::Float(sum / vals.len() as f64)
                } else if all_int {
                    Value::Int(sum as i64)
                } else {
                    Value::Float(sum)
                }
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Value> = None;
            for v in vals {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let take_new = match v.compare(&b) {
                            Some(Ordering::Less) => func == AggFunc::Min,
                            Some(Ordering::Greater) => func == AggFunc::Max,
                            _ => false,
                        };
                        if take_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best.unwrap_or(Value::Null)
        }
    })
}

fn eval_binary(l: &Value, op: BinOp, r: &Value) -> Result<Value> {
    use BinOp::*;
    match op {
        And | Or => {
            let lb = as_tribool(l)?;
            let rb = as_tribool(r)?;
            Ok(match (op, lb, rb) {
                (And, Some(false), _) | (And, _, Some(false)) => Value::Bool(false),
                (And, Some(true), Some(true)) => Value::Bool(true),
                (Or, Some(true), _) | (Or, _, Some(true)) => Value::Bool(true),
                (Or, Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            })
        }
        Eq | Neq | Lt | Le | Gt | Ge => {
            let cmp = match l.compare(r) {
                Some(c) => c,
                None => {
                    // NULL operand → NULL; genuinely incomparable types are
                    // simply unequal (so `=` is false, `!=` true).
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    return Ok(match op {
                        Eq => Value::Bool(false),
                        Neq => Value::Bool(true),
                        _ => Value::Null,
                    });
                }
            };
            let b = match op {
                Eq => cmp == Ordering::Equal,
                Neq => cmp != Ordering::Equal,
                Lt => cmp == Ordering::Less,
                Le => cmp != Ordering::Greater,
                Gt => cmp == Ordering::Greater,
                Ge => cmp != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(NliError::Execution(format!(
                        "arithmetic on non-numeric operands: {l} {} {r}",
                        op.symbol()
                    )))
                }
            };
            let both_int =
                matches!(l, Value::Int(_)) && matches!(r, Value::Int(_)) && op != Div;
            let x = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Ok(Value::Null); // SQLite: division by zero is NULL
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(if both_int { Value::Int(x as i64) } else { Value::Float(x) })
        }
    }
}

fn as_tribool(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(*b)),
        Value::Null => Ok(None),
        other => Err(NliError::Execution(format!("expected boolean, got {other}"))),
    }
}

/// SQL LIKE with `%` (any run) and `_` (one char), case-insensitive.
fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.to_lowercase().chars().collect();
    let t: Vec<char> = text.to_lowercase().chars().collect();
    like_rec(&p, &t)
}

fn like_rec(p: &[char], t: &[char]) -> bool {
    match p.first() {
        None => t.is_empty(),
        Some('%') => {
            // collapse consecutive %
            let rest = &p[1..];
            (0..=t.len()).any(|k| like_rec(rest, &t[k..]))
        }
        Some('_') => !t.is_empty() && like_rec(&p[1..], &t[1..]),
        Some(&c) => !t.is_empty() && t[0] == c && like_rec(&p[1..], &t[1..]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Date, Schema, Table};

    /// The Fig. 2 sales database, plus a disconnected stores table.
    fn sales_db() -> Database {
        let mut schema = Schema::new(
            "sales_db",
            vec![
                Table::new(
                    "products",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("name", DataType::Text),
                        Column::new("category", DataType::Text),
                        Column::new("price", DataType::Float),
                    ],
                ),
                Table::new(
                    "sales",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("product_id", DataType::Int),
                        Column::new("amount", DataType::Float),
                        Column::new("sold_on", DataType::Date),
                    ],
                ),
            ],
        );
        schema
            .add_foreign_key("sales", "product_id", "products", "id")
            .unwrap();
        let mut db = Database::empty(schema);
        db.insert_all(
            "products",
            vec![
                vec![1.into(), "Widget".into(), "Tools".into(), 9.5.into()],
                vec![2.into(), "Gadget".into(), "Tools".into(), 19.0.into()],
                vec![3.into(), "Doohickey".into(), "Toys".into(), 4.25.into()],
            ],
        )
        .unwrap();
        db.insert_all(
            "sales",
            vec![
                vec![1.into(), 1.into(), 100.0.into(), Date::new(2024, 1, 15).into()],
                vec![2.into(), 1.into(), 150.0.into(), Date::new(2024, 2, 20).into()],
                vec![3.into(), 2.into(), 200.0.into(), Date::new(2024, 4, 2).into()],
                vec![4.into(), 3.into(), 50.0.into(), Date::new(2024, 4, 9).into()],
                vec![5.into(), Value::Null, 75.0.into(), Date::new(2024, 5, 1).into()],
            ],
        )
        .unwrap();
        db
    }

    fn run(sql: &str) -> ResultSet {
        SqlEngine::new().run_sql(sql, &sales_db()).unwrap()
    }

    #[test]
    fn select_star() {
        let r = run("SELECT * FROM products");
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.columns, vec!["id", "name", "category", "price"]);
    }

    #[test]
    fn where_filtering() {
        let r = run("SELECT name FROM products WHERE price > 5");
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn count_star_and_count_column() {
        let r = run("SELECT COUNT(*) FROM sales");
        assert_eq!(r.rows[0][0], Value::Int(5));
        // COUNT(col) skips NULLs
        let r = run("SELECT COUNT(product_id) FROM sales");
        assert_eq!(r.rows[0][0], Value::Int(4));
    }

    #[test]
    fn group_by_with_aggregates() {
        let r = run("SELECT category, SUM(price) FROM products GROUP BY category");
        let rows = r.canonical_rows();
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&vec!["Tools".to_string(), "28.5".to_string()]));
        assert!(rows.contains(&vec!["Toys".to_string(), "4.25".to_string()]));
    }

    #[test]
    fn having_filters_groups() {
        let r = run(
            "SELECT category FROM products GROUP BY category HAVING COUNT(*) > 1",
        );
        assert_eq!(r.rows, vec![vec![Value::from("Tools")]]);
    }

    #[test]
    fn join_on_fk() {
        let r = run(
            "SELECT products.name, sales.amount FROM sales JOIN products \
             ON sales.product_id = products.id",
        );
        assert_eq!(r.rows.len(), 4, "NULL product_id must not join");
    }

    #[test]
    fn join_grouped_revenue_by_category() {
        let r = run(
            "SELECT products.category, SUM(sales.amount) FROM sales JOIN products \
             ON sales.product_id = products.id GROUP BY products.category \
             ORDER BY SUM(sales.amount) DESC",
        );
        assert_eq!(
            r.canonical_rows(),
            vec![
                vec!["Tools".to_string(), "450".to_string()],
                vec!["Toys".to_string(), "50".to_string()],
            ]
        );
        assert!(r.ordered);
        assert_eq!(r.rows[0][0], Value::from("Tools"));
    }

    #[test]
    fn comma_from_with_where_equijoin_matches_explicit_join() {
        let a = run(
            "SELECT products.name FROM sales JOIN products ON sales.product_id = products.id",
        );
        let b = run(
            "SELECT products.name FROM sales, products WHERE sales.product_id = products.id",
        );
        assert!(a.same_result(&b));
    }

    #[test]
    fn order_by_and_limit() {
        let r = run("SELECT name FROM products ORDER BY price DESC LIMIT 2");
        assert_eq!(
            r.rows,
            vec![vec![Value::from("Gadget")], vec![Value::from("Widget")]]
        );
    }

    #[test]
    fn distinct() {
        let r = run("SELECT DISTINCT category FROM products");
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn like_patterns() {
        let r = run("SELECT name FROM products WHERE name LIKE '%get%'");
        assert_eq!(r.rows.len(), 2); // Widget, Gadget
        let r = run("SELECT name FROM products WHERE name LIKE '_adget'");
        assert_eq!(r.rows, vec![vec![Value::from("Gadget")]]);
        let r = run("SELECT name FROM products WHERE name NOT LIKE '%e%'");
        assert_eq!(r.rows.len(), 0);
    }

    #[test]
    fn between_and_in_list() {
        let r = run("SELECT name FROM products WHERE price BETWEEN 5 AND 10");
        assert_eq!(r.rows, vec![vec![Value::from("Widget")]]);
        let r = run("SELECT name FROM products WHERE category IN ('Toys', 'Food')");
        assert_eq!(r.rows, vec![vec![Value::from("Doohickey")]]);
        let r = run("SELECT name FROM products WHERE category NOT IN ('Toys')");
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn in_subquery() {
        let r = run(
            "SELECT name FROM products WHERE id IN \
             (SELECT product_id FROM sales WHERE amount > 120)",
        );
        let names = r.canonical_rows();
        assert_eq!(names, vec![vec!["Gadget".to_string()], vec!["Widget".to_string()]]);
    }

    #[test]
    fn scalar_subquery() {
        let r = run(
            "SELECT name FROM products WHERE price = (SELECT MAX(price) FROM products)",
        );
        assert_eq!(r.rows, vec![vec![Value::from("Gadget")]]);
    }

    #[test]
    fn set_operations() {
        let db = sales_db();
        let e = SqlEngine::new();
        let union = e
            .run_sql(
                "SELECT category FROM products UNION SELECT name FROM products",
                &db,
            )
            .unwrap();
        assert_eq!(union.rows.len(), 5); // 2 categories + 3 names
        let intersect = e
            .run_sql(
                "SELECT id FROM products INTERSECT SELECT product_id FROM sales",
                &db,
            )
            .unwrap();
        assert_eq!(intersect.rows.len(), 3);
        let except = e
            .run_sql(
                "SELECT id FROM products EXCEPT SELECT product_id FROM sales WHERE amount > 120",
                &db,
            )
            .unwrap();
        assert_eq!(except.rows.len(), 1); // only product 3
    }

    #[test]
    fn null_semantics_in_where() {
        // NULL product_id row must not satisfy either branch.
        let pos = run("SELECT COUNT(*) FROM sales WHERE product_id = 1");
        let neg = run("SELECT COUNT(*) FROM sales WHERE product_id != 1");
        let total = run("SELECT COUNT(*) FROM sales");
        assert_eq!(pos.rows[0][0], Value::Int(2));
        assert_eq!(neg.rows[0][0], Value::Int(2));
        assert_eq!(total.rows[0][0], Value::Int(5));
        let isnull = run("SELECT COUNT(*) FROM sales WHERE product_id IS NULL");
        assert_eq!(isnull.rows[0][0], Value::Int(1));
    }

    #[test]
    fn avg_and_min_max() {
        let r = run("SELECT AVG(price), MIN(price), MAX(price) FROM products");
        assert_eq!(r.rows[0][1], Value::Float(4.25));
        assert_eq!(r.rows[0][2], Value::Float(19.0));
        match &r.rows[0][0] {
            Value::Float(f) => assert!((f - 10.916_666_666_666_666).abs() < 1e-9),
            other => panic!("avg not float: {other:?}"),
        }
    }

    #[test]
    fn aggregates_over_empty_input() {
        let r = run("SELECT COUNT(*), SUM(price), MAX(price) FROM products WHERE price > 100");
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert!(r.rows[0][1].is_null());
        assert!(r.rows[0][2].is_null());
    }

    #[test]
    fn empty_group_by_produces_no_rows() {
        let r = run(
            "SELECT category, COUNT(*) FROM products WHERE price > 100 GROUP BY category",
        );
        assert!(r.rows.is_empty());
    }

    #[test]
    fn arithmetic_in_projection() {
        let r = run("SELECT price * 2 FROM products WHERE id = 1");
        assert_eq!(r.rows[0][0], Value::Float(19.0));
        let r = run("SELECT id + 1 FROM products WHERE id = 1");
        assert_eq!(r.rows[0][0], Value::Int(2));
    }

    #[test]
    fn division_by_zero_is_null() {
        let r = run("SELECT price / 0 FROM products WHERE id = 1");
        assert!(r.rows[0][0].is_null());
    }

    #[test]
    fn date_comparison() {
        let r = run("SELECT COUNT(*) FROM sales WHERE sold_on >= '2024-04-01'");
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn execution_errors_surface() {
        let e = SqlEngine::new();
        let db = sales_db();
        assert!(e.run_sql("SELECT x FROM products", &db).is_err());
        assert!(e.run_sql("SELECT name FROM nope", &db).is_err());
        assert!(e.run_sql("SELECT SUM(name) FROM products", &db).is_err());
        assert!(e.run_sql("SELECT id FROM products WHERE name + 1 = 2", &db).is_err());
        // ambiguous unqualified column across joined tables
        assert!(e
            .run_sql(
                "SELECT id FROM products JOIN sales ON sales.product_id = products.id",
                &db
            )
            .is_err());
    }

    #[test]
    fn result_set_comparison_semantics() {
        let a = ResultSet {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            ordered: false,
        };
        let b = ResultSet {
            columns: vec!["y".into()],
            rows: vec![vec![Value::Int(2)], vec![Value::Int(1)]],
            ordered: false,
        };
        assert!(a.same_result(&b), "unordered results compare as multisets");
        let c = ResultSet { ordered: true, ..b.clone() };
        assert!(!a.same_result(&c), "ordered comparison is positional");
    }

    #[test]
    fn count_distinct_execution() {
        let r = run("SELECT COUNT(DISTINCT category) FROM products");
        assert_eq!(r.rows[0][0], Value::Int(2));
    }

    #[test]
    fn union_arity_mismatch_errors() {
        let e = SqlEngine::new();
        let db = sales_db();
        assert!(e
            .run_sql("SELECT id, name FROM products UNION SELECT id FROM products", &db)
            .is_err());
    }
}
