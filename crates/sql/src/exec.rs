//! Physical SQL execution over compiled plans.
//!
//! Implements the survey's `E(e, D) → r` for the SQL task as a two-stage
//! pipeline: [`crate::plan::plan_query`] compiles an AST into a schema-bound
//! [`QueryPlan`] (name resolution, hash-join extraction, predicate
//! pushdown), and this module executes plans: scan (with pushed-down
//! filters), hash/cross join, residual filter, group/aggregate, project,
//! sort, de-duplicate, limit, and set operators.
//!
//! [`SqlEngine`] fronts the pipeline with a schema-fingerprinted LRU
//! [`PlanCache`], so re-running one query text across many database
//! variants that share a schema (test-suite evaluation) parses and plans
//! exactly once. [`SqlEngine::run_sql`] keeps the original parse-and-go
//! signature as a thin shim over `prepare` + `execute`.
//!
//! Semantics follow SQLite where SQL leaves room: `LIKE` is
//! case-insensitive, non-aggregated select items in a grouped query take
//! the group's first row, aggregates over empty inputs yield `NULL`
//! (`COUNT` yields 0). The seed tree-walking interpreter survives as
//! [`crate::interp`] and is held equivalent by a differential property
//! test.

use crate::ast::{AggFunc, BinOp, Query, SetOp};
use crate::explain::{render_plan, AnalyzedSql, OpStats, PlanProfile, SelectProfile};
use crate::plan::{plan_query, plan_query_with_stats, PlanExpr, QueryPlan, SelectPlan};
use nli_core::{
    obs, CacheStats, Database, ExecutionEngine, NliError, PlanCache, PrepareEngine, Result, Schema,
    Value,
};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Cached span histograms for the pipeline stages (DESIGN.md §3.3):
/// `sql.parse` and `sql.plan` are timed inside the plan-cache build
/// closure, so they fire once per cache miss; `sql.execute` fires on every
/// [`PreparedSql::execute`] and `sql.explain_analyze` on every instrumented
/// run. Handles are resolved once — the per-call cost is two `Instant`
/// reads and a few relaxed atomic adds.
struct SqlObs {
    parse: obs::Histogram,
    plan: obs::Histogram,
    execute: obs::Histogram,
    explain_analyze: obs::Histogram,
}

fn sql_obs() -> &'static SqlObs {
    static OBS: OnceLock<SqlObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = obs::global();
        SqlObs {
            parse: r.span_histogram("sql.parse"),
            plan: r.span_histogram("sql.plan"),
            execute: r.span_histogram("sql.execute"),
            explain_analyze: r.span_histogram("sql.explain_analyze"),
        }
    })
}

/// An executed result table `r`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
    /// Whether row order is semantically meaningful (the query had a
    /// top-level ORDER BY). Execution-match comparison is order-sensitive
    /// only when this is set.
    pub ordered: bool,
}

impl ResultSet {
    pub fn empty() -> Self {
        ResultSet {
            columns: Vec::new(),
            rows: Vec::new(),
            ordered: false,
        }
    }

    /// Canonical multiset representation: each row canonicalized, then rows
    /// sorted. Two results with the same multiset of rows compare equal.
    pub fn canonical_rows(&self) -> Vec<Vec<String>> {
        let mut rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.canonical()).collect())
            .collect();
        rows.sort();
        rows
    }

    /// Execution-match comparison: order-sensitive iff either side is
    /// ordered; column *names* are ignored (only positions/values matter),
    /// mirroring standard execution-accuracy evaluation.
    pub fn same_result(&self, other: &ResultSet) -> bool {
        if self.ordered || other.ordered {
            if self.rows.len() != other.rows.len() {
                return false;
            }
            self.rows
                .iter()
                .zip(&other.rows)
                .all(|(a, b)| canonical_row(a) == canonical_row(b))
        } else {
            self.canonical_rows() == other.canonical_rows()
        }
    }
}

pub(crate) fn canonical_row(r: &[Value]) -> Vec<String> {
    r.iter().map(|v| v.canonical()).collect()
}

/// A result's comparison form, canonicalized once. Built for one-vs-many
/// comparison loops (test-suite matching compares one gold result per
/// variant against predictions): the owning side pays canonicalization a
/// single time instead of once per [`ResultSet::same_result`] call.
#[derive(Debug, Clone)]
pub struct CanonicalResult {
    ordered: bool,
    /// Canonical rows in result order (ordered comparison).
    sequence: Vec<Vec<String>>,
    /// Canonical rows sorted (multiset comparison).
    multiset: Vec<Vec<String>>,
}

impl ResultSet {
    /// Precompute this result's canonical comparison form.
    pub fn to_canonical(&self) -> CanonicalResult {
        let sequence: Vec<Vec<String>> = self.rows.iter().map(|r| canonical_row(r)).collect();
        let mut multiset = sequence.clone();
        multiset.sort();
        CanonicalResult {
            ordered: self.ordered,
            sequence,
            multiset,
        }
    }

    /// Exactly [`ResultSet::same_result`], but the other side is already
    /// canonical.
    pub fn matches_canonical(&self, other: &CanonicalResult) -> bool {
        if self.ordered || other.ordered {
            self.rows.len() == other.sequence.len()
                && self
                    .rows
                    .iter()
                    .zip(&other.sequence)
                    .all(|(a, b)| &canonical_row(a) == b)
        } else {
            self.canonical_rows() == other.multiset
        }
    }
}

/// A query compiled against one schema, executable on any database whose
/// schema shares the same [`Schema::fingerprint`]. Cheap to clone (the plan
/// is shared).
#[derive(Debug, Clone)]
pub struct PreparedSql {
    plan: Arc<QueryPlan>,
    fingerprint: u64,
}

impl PreparedSql {
    /// The compiled plan.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Fingerprint of the schema this statement was prepared against.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Output column names (fixed at plan time).
    pub fn columns(&self) -> &[String] {
        &self.plan.select.columns
    }

    /// Run the plan. The database must match the prepared schema
    /// structurally; executing against a different schema is a misuse the
    /// engine reports rather than silently mis-resolving columns.
    pub fn execute(&self, db: &Database) -> Result<ResultSet> {
        self.check_fingerprint(db)?;
        let _span = obs::global().trace_span("sql.execute");
        let _timing = sql_obs().execute.time();
        exec_plan(&self.plan, db)
    }

    /// Pretty-print the compiled plan as an operator tree (no execution).
    /// Deterministic text, stable across runs — the `EXPLAIN` side of the
    /// golden tests.
    pub fn explain(&self) -> String {
        render_plan(&self.plan, None, false)
    }

    /// Execute under the instrumented path, collecting per-operator
    /// [`OpStats`], and return the result together with the profile
    /// ([`AnalyzedSql`]). Row counts and counters in the profile are
    /// deterministic; wall-clock timings are not.
    pub fn explain_analyze(&self, db: &Database) -> Result<AnalyzedSql> {
        self.check_fingerprint(db)?;
        let _span = obs::global().trace_span("sql.explain_analyze");
        let _timing = sql_obs().explain_analyze.time();
        let mut profile = PlanProfile::default();
        let result = exec_plan_profiled(&self.plan, db, Some(&mut profile))?;
        Ok(AnalyzedSql {
            plan: Arc::clone(&self.plan),
            profile,
            result,
        })
    }

    fn check_fingerprint(&self, db: &Database) -> Result<()> {
        if db.schema.fingerprint() != self.fingerprint {
            return Err(NliError::Execution(
                "prepared statement executed against a structurally different schema".into(),
            ));
        }
        Ok(())
    }
}

/// The SQL execution engine: parse → plan → execute, with a
/// schema-fingerprinted plan cache in front of the first two stages.
/// Cloning shares the cache.
#[derive(Debug, Clone)]
pub struct SqlEngine {
    cache: Arc<PlanCache<QueryPlan>>,
    /// Number of times a query string was actually parsed (cache misses in
    /// [`SqlEngine::prepare`]); lets tests pin "parse once per
    /// (query, schema)" down exactly.
    parses: Arc<AtomicU64>,
}

impl SqlEngine {
    pub fn new() -> Self {
        SqlEngine::from_cache(PlanCache::default())
    }

    /// An engine whose plan cache holds at most `capacity` entries.
    pub fn with_cache_capacity(capacity: usize) -> Self {
        SqlEngine::from_cache(PlanCache::with_capacity(capacity))
    }

    /// Every engine mirrors its cache counters into the global [`obs`]
    /// registry under `plan_cache.*`; engines sharing a process aggregate
    /// there, while [`SqlEngine::cache_stats`] stays per-engine.
    fn from_cache(cache: PlanCache<QueryPlan>) -> Self {
        cache.attach_obs(obs::global(), "plan_cache");
        SqlEngine {
            cache: Arc::new(cache),
            parses: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Compile `sql` against `schema`, reusing a cached plan when this
    /// engine has seen the same `(sql, schema fingerprint)` before.
    pub fn prepare(&self, sql: &str, schema: &Schema) -> Result<PreparedSql> {
        let fingerprint = schema.fingerprint();
        let plan = self.cache.get_or_insert(sql, fingerprint, 0, || {
            self.parses.fetch_add(1, AtomicOrdering::Relaxed);
            let q = {
                let _span = obs::global().trace_span("sql.parse");
                let _timing = sql_obs().parse.time();
                crate::parser::parse_query(sql)?
            };
            let _span = obs::global().trace_span("sql.plan");
            let _timing = sql_obs().plan.time();
            plan_query(&q, schema)
        })?;
        Ok(PreparedSql { plan, fingerprint })
    }

    /// Compile an already-parsed query, skipping the parser entirely. The
    /// cache key is the query's canonical SQL rendering, so semantically
    /// identical ASTs share one plan.
    pub fn prepare_ast(&self, q: &Query, schema: &Schema) -> Result<PreparedSql> {
        let fingerprint = schema.fingerprint();
        let key = q.to_string();
        let plan = self.cache.get_or_insert(&key, fingerprint, 0, || {
            let _span = obs::global().trace_span("sql.plan");
            let _timing = sql_obs().plan.time();
            plan_query(q, schema)
        })?;
        Ok(PreparedSql { plan, fingerprint })
    }

    /// Compile `sql` with the cost-based planner, consulting `db`'s table
    /// statistics. The cached plan is keyed on `(sql, schema fingerprint,
    /// stats epoch)`, so mutating the database re-plans on next prepare
    /// while unmutated databases keep hitting the cache.
    pub fn prepare_on(&self, sql: &str, db: &Database) -> Result<PreparedSql> {
        let fingerprint = db.schema.fingerprint();
        let epoch = db.stats_epoch();
        let plan = self.cache.get_or_insert(sql, fingerprint, epoch, || {
            self.parses.fetch_add(1, AtomicOrdering::Relaxed);
            let q = {
                let _span = obs::global().trace_span("sql.parse");
                let _timing = sql_obs().parse.time();
                crate::parser::parse_query(sql)?
            };
            let _span = obs::global().trace_span("sql.plan");
            let _timing = sql_obs().plan.time();
            plan_query_with_stats(&q, &db.schema, &db.stats())
        })?;
        Ok(PreparedSql { plan, fingerprint })
    }

    /// [`SqlEngine::prepare_on`] for an already-parsed query: cost-based
    /// planning over `db`'s statistics, keyed by the canonical SQL
    /// rendering plus the stats epoch.
    pub fn prepare_ast_on(&self, q: &Query, db: &Database) -> Result<PreparedSql> {
        let fingerprint = db.schema.fingerprint();
        let epoch = db.stats_epoch();
        let key = q.to_string();
        let plan = self.cache.get_or_insert(&key, fingerprint, epoch, || {
            let _span = obs::global().trace_span("sql.plan");
            let _timing = sql_obs().plan.time();
            plan_query_with_stats(q, &db.schema, &db.stats())
        })?;
        Ok(PreparedSql { plan, fingerprint })
    }

    /// Execute a query string (parse + plan + execute). Compatibility shim
    /// over [`SqlEngine::prepare`]; repeated calls with the same text and
    /// schema hit the plan cache.
    pub fn run_sql(&self, sql: &str, db: &Database) -> Result<ResultSet> {
        self.prepare(sql, &db.schema)?.execute(db)
    }

    /// Plan-cache effectiveness counters for this engine.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// How many times [`SqlEngine::prepare`] actually invoked the parser.
    pub fn parse_count(&self) -> u64 {
        self.parses.load(AtomicOrdering::Relaxed)
    }
}

impl Default for SqlEngine {
    fn default() -> Self {
        SqlEngine::new()
    }
}

impl ExecutionEngine for SqlEngine {
    type Expr = Query;
    type Output = ResultSet;

    fn execute(&self, expr: &Query, db: &Database) -> Result<ResultSet> {
        self.prepare_ast(expr, &db.schema)?.execute(db)
    }
}

impl PrepareEngine for SqlEngine {
    type Prepared = PreparedSql;

    fn prepare(&self, source: &str, schema: &Schema) -> Result<PreparedSql> {
        SqlEngine::prepare(self, source, schema)
    }

    fn execute_prepared(&self, prepared: &PreparedSql, db: &Database) -> Result<ResultSet> {
        prepared.execute(db)
    }
}

pub(crate) fn exec_plan(plan: &QueryPlan, db: &Database) -> Result<ResultSet> {
    exec_plan_profiled(plan, db, None)
}

/// Start a stage timer only when profiling.
pub(crate) fn tick(profiling: bool) -> Option<Instant> {
    profiling.then(Instant::now)
}

/// Elapsed µs since [`tick`], 0 when not profiling.
pub(crate) fn tock(start: Option<Instant>) -> u64 {
    start.map_or(0, |s| s.elapsed().as_micros() as u64)
}

pub(crate) fn exec_plan_profiled(
    plan: &QueryPlan,
    db: &Database,
    mut prof: Option<&mut PlanProfile>,
) -> Result<ResultSet> {
    let left =
        exec_select_plan_profiled(&plan.select, db, prof.as_deref_mut().map(|p| &mut p.select))?;
    match &plan.compound {
        Some((op, rhs)) => {
            let mut rhs_prof = prof.is_some().then(PlanProfile::default);
            let right = exec_plan_profiled(rhs, db, rhs_prof.as_mut())?;
            let start = tick(prof.is_some());
            let rows_in = left.rows.len() + right.rows.len();
            let merged = apply_set_op(left, *op, right)?;
            if let Some(p) = prof {
                let mut st = OpStats::flow(rows_in, merged.rows.len());
                st.wall_micros = tock(start);
                p.set_op = Some(st);
                p.compound = rhs_prof.map(Box::new);
            }
            Ok(merged)
        }
        None => Ok(left),
    }
}

/// Apply a set operator. The arity check is deliberately lenient — it only
/// fires when both sides produced rows — matching the reference
/// interpreter.
pub(crate) fn apply_set_op(mut left: ResultSet, op: SetOp, right: ResultSet) -> Result<ResultSet> {
    if !left.rows.is_empty() && !right.rows.is_empty() && left.columns.len() != right.columns.len()
    {
        return Err(NliError::Execution(format!(
            "{} arity mismatch: {} vs {}",
            op.name(),
            left.columns.len(),
            right.columns.len()
        )));
    }
    let mut set: Vec<Vec<Value>> = Vec::new();
    let key = |r: &[Value]| canonical_row(r);
    match op {
        SetOp::Union => {
            let mut seen = std::collections::HashSet::new();
            for row in left.rows.into_iter().chain(right.rows) {
                if seen.insert(key(&row)) {
                    set.push(row);
                }
            }
        }
        SetOp::Intersect => {
            let rkeys: std::collections::HashSet<_> = right.rows.iter().map(|r| key(r)).collect();
            let mut seen = std::collections::HashSet::new();
            for row in left.rows {
                let k = key(&row);
                if rkeys.contains(&k) && seen.insert(k) {
                    set.push(row);
                }
            }
        }
        SetOp::Except => {
            let rkeys: std::collections::HashSet<_> = right.rows.iter().map(|r| key(r)).collect();
            let mut seen = std::collections::HashSet::new();
            for row in left.rows {
                let k = key(&row);
                if !rkeys.contains(&k) && seen.insert(k) {
                    set.push(row);
                }
            }
        }
    }
    left.rows = set;
    left.ordered = false; // set ops discard ordering
    Ok(left)
}

/// Execute one SELECT block. The physical operators live in the
/// vectorized executor ([`crate::vexec`]); this shim keeps the historical
/// entry point (and its tests) in place.
fn exec_select_plan_profiled(
    p: &SelectPlan,
    db: &Database,
    prof: Option<&mut SelectProfile>,
) -> Result<ResultSet> {
    crate::vexec::exec_select(p, db, prof)
}

/// Replace compiled subquery plans with their materialized values for one
/// database. Recursion mirrors the reference interpreter exactly: only
/// `AND`/`OR`/comparison trees, `NOT`, and `BETWEEN` are descended.
pub(crate) fn materialize_subplans(e: &PlanExpr, db: &Database) -> Result<PlanExpr> {
    Ok(match e {
        PlanExpr::InPlan {
            expr,
            plan,
            negated,
        } => {
            let rs = exec_plan(plan, db)?;
            if rs.columns.len() != 1 && !rs.rows.is_empty() && rs.rows[0].len() != 1 {
                return Err(NliError::Execution(
                    "IN subquery must produce one column".into(),
                ));
            }
            let list = rs.rows.into_iter().filter_map(|mut r| {
                if r.is_empty() {
                    None
                } else {
                    Some(r.swap_remove(0))
                }
            });
            PlanExpr::InList {
                expr: Box::new(materialize_subplans(expr, db)?),
                list: list.collect(),
                negated: *negated,
            }
        }
        PlanExpr::ScalarPlan(plan) => {
            let rs = exec_plan(plan, db)?;
            let v = rs
                .rows
                .first()
                .and_then(|r| r.first())
                .cloned()
                .unwrap_or(Value::Null);
            PlanExpr::Literal(v)
        }
        PlanExpr::Binary { left, op, right } => PlanExpr::Binary {
            left: Box::new(materialize_subplans(left, db)?),
            op: *op,
            right: Box::new(materialize_subplans(right, db)?),
        },
        PlanExpr::Not(inner) => PlanExpr::Not(Box::new(materialize_subplans(inner, db)?)),
        PlanExpr::Between {
            expr,
            low,
            high,
            negated,
        } => PlanExpr::Between {
            expr: Box::new(materialize_subplans(expr, db)?),
            low: Box::new(materialize_subplans(low, db)?),
            high: Box::new(materialize_subplans(high, db)?),
            negated: *negated,
        },
        other => other.clone(),
    })
}

/// Truthiness of a predicate value: only `Bool(true)` passes (NULL and
/// everything else fails, per SQL three-valued logic).
pub(crate) fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

/// Evaluate a bound expression in scalar (per-row) context. The
/// vectorized executor falls back to this for any chunk its kernels
/// decline, so error behaviour stays byte-compatible.
pub(crate) fn eval_expr(e: &PlanExpr, row: &[Value]) -> Result<Value> {
    match e {
        PlanExpr::Col(o) => Ok(row[*o].clone()),
        PlanExpr::Literal(v) => Ok(v.clone()),
        PlanExpr::Star => Err(NliError::Execution("`*` in scalar context".into())),
        PlanExpr::Agg { .. } => Err(NliError::Execution(
            "aggregate in row context (missing GROUP BY?)".into(),
        )),
        PlanExpr::Binary { left, op, right } => {
            let l = eval_expr(left, row)?;
            let r = eval_expr(right, row)?;
            eval_binary(&l, *op, &r)
        }
        PlanExpr::Not(inner) => Ok(match eval_expr(inner, row)? {
            Value::Bool(b) => Value::Bool(!b),
            Value::Null => Value::Null,
            other => return Err(NliError::Execution(format!("NOT applied to {other}"))),
        }),
        PlanExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_expr(expr, row)?;
            Ok(match v {
                Value::Null => Value::Null,
                Value::Text(s) => {
                    let m = like_match(pattern, &s);
                    Value::Bool(m != *negated)
                }
                other => {
                    // LIKE over non-text compares the canonical spelling,
                    // matching SQLite's affinity-light behaviour.
                    let m = like_match(pattern, &other.canonical());
                    Value::Bool(m != *negated)
                }
            })
        }
        PlanExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_expr(expr, row)?;
            let lo = eval_expr(low, row)?;
            let hi = eval_expr(high, row)?;
            match (v.compare(&lo), v.compare(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != Ordering::Less && b != Ordering::Greater;
                    Ok(Value::Bool(inside != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        PlanExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_expr(expr, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let found = list.iter().any(|x| v.sql_eq(x) == Some(true));
            Ok(Value::Bool(found != *negated))
        }
        PlanExpr::InPlan { .. } | PlanExpr::ScalarPlan(_) => Err(NliError::Execution(
            "unmaterialized subquery reached evaluation".into(),
        )),
        PlanExpr::IsNull { expr, negated } => {
            let v = eval_expr(expr, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
    }
}

/// Fold already-collected non-NULL aggregate inputs. This is the shared
/// aggregate body: the vectorized executor's typed fast paths reproduce
/// it for Int/Float columns, and every other case funnels through here.
pub(crate) fn agg_from_values(
    func: AggFunc,
    mut vals: Vec<Value>,
    distinct: bool,
) -> Result<Value> {
    if distinct {
        let mut seen = std::collections::HashSet::new();
        vals.retain(|v| seen.insert(v.canonical()));
    }
    Ok(match func {
        AggFunc::Count => Value::Int(vals.len() as i64),
        AggFunc::Sum | AggFunc::Avg => {
            if vals.is_empty() {
                Value::Null
            } else {
                let mut sum = 0.0;
                let mut all_int = true;
                for v in &vals {
                    match v {
                        Value::Int(i) => sum += *i as f64,
                        Value::Float(f) => {
                            sum += f;
                            all_int = false;
                        }
                        other => {
                            return Err(NliError::Execution(format!(
                                "{} over non-numeric value {other}",
                                func.name()
                            )))
                        }
                    }
                }
                if func == AggFunc::Avg {
                    Value::Float(sum / vals.len() as f64)
                } else if all_int {
                    Value::Int(sum as i64)
                } else {
                    Value::Float(sum)
                }
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Value> = None;
            for v in vals {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let take_new = match v.compare(&b) {
                            Some(Ordering::Less) => func == AggFunc::Min,
                            Some(Ordering::Greater) => func == AggFunc::Max,
                            _ => false,
                        };
                        if take_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best.unwrap_or(Value::Null)
        }
    })
}

pub(crate) fn eval_binary(l: &Value, op: BinOp, r: &Value) -> Result<Value> {
    use BinOp::*;
    match op {
        And | Or => {
            let lb = as_tribool(l)?;
            let rb = as_tribool(r)?;
            Ok(match (op, lb, rb) {
                (And, Some(false), _) | (And, _, Some(false)) => Value::Bool(false),
                (And, Some(true), Some(true)) => Value::Bool(true),
                (Or, Some(true), _) | (Or, _, Some(true)) => Value::Bool(true),
                (Or, Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            })
        }
        Eq | Neq | Lt | Le | Gt | Ge => {
            let cmp = match l.compare(r) {
                Some(c) => c,
                None => {
                    // NULL operand → NULL; genuinely incomparable types are
                    // simply unequal (so `=` is false, `!=` true).
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    return Ok(match op {
                        Eq => Value::Bool(false),
                        Neq => Value::Bool(true),
                        _ => Value::Null,
                    });
                }
            };
            let b = match op {
                Eq => cmp == Ordering::Equal,
                Neq => cmp != Ordering::Equal,
                Lt => cmp == Ordering::Less,
                Le => cmp != Ordering::Greater,
                Gt => cmp == Ordering::Greater,
                Ge => cmp != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(NliError::Execution(format!(
                        "arithmetic on non-numeric operands: {l} {} {r}",
                        op.symbol()
                    )))
                }
            };
            let both_int = matches!(l, Value::Int(_)) && matches!(r, Value::Int(_)) && op != Div;
            let x = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Ok(Value::Null); // SQLite: division by zero is NULL
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(if both_int {
                Value::Int(x as i64)
            } else {
                Value::Float(x)
            })
        }
    }
}

pub(crate) fn as_tribool(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(*b)),
        Value::Null => Ok(None),
        other => Err(NliError::Execution(format!(
            "expected boolean, got {other}"
        ))),
    }
}

/// SQL LIKE with `%` (any run) and `_` (one char), case-insensitive.
pub(crate) fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.to_lowercase().chars().collect();
    let t: Vec<char> = text.to_lowercase().chars().collect();
    like_rec(&p, &t)
}

fn like_rec(p: &[char], t: &[char]) -> bool {
    match p.first() {
        None => t.is_empty(),
        Some('%') => {
            // collapse consecutive %
            let rest = &p[1..];
            (0..=t.len()).any(|k| like_rec(rest, &t[k..]))
        }
        Some('_') => !t.is_empty() && like_rec(&p[1..], &t[1..]),
        Some(&c) => !t.is_empty() && t[0] == c && like_rec(&p[1..], &t[1..]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Date, Schema, Table};

    /// The Fig. 2 sales database, plus a disconnected stores table.
    fn sales_db() -> Database {
        let mut schema = Schema::new(
            "sales_db",
            vec![
                Table::new(
                    "products",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("name", DataType::Text),
                        Column::new("category", DataType::Text),
                        Column::new("price", DataType::Float),
                    ],
                ),
                Table::new(
                    "sales",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("product_id", DataType::Int),
                        Column::new("amount", DataType::Float),
                        Column::new("sold_on", DataType::Date),
                    ],
                ),
            ],
        );
        schema
            .add_foreign_key("sales", "product_id", "products", "id")
            .unwrap();
        let mut db = Database::empty(schema);
        db.insert_all(
            "products",
            vec![
                vec![1.into(), "Widget".into(), "Tools".into(), 9.5.into()],
                vec![2.into(), "Gadget".into(), "Tools".into(), 19.0.into()],
                vec![3.into(), "Doohickey".into(), "Toys".into(), 4.25.into()],
            ],
        )
        .unwrap();
        db.insert_all(
            "sales",
            vec![
                vec![
                    1.into(),
                    1.into(),
                    100.0.into(),
                    Date::new(2024, 1, 15).into(),
                ],
                vec![
                    2.into(),
                    1.into(),
                    150.0.into(),
                    Date::new(2024, 2, 20).into(),
                ],
                vec![
                    3.into(),
                    2.into(),
                    200.0.into(),
                    Date::new(2024, 4, 2).into(),
                ],
                vec![
                    4.into(),
                    3.into(),
                    50.0.into(),
                    Date::new(2024, 4, 9).into(),
                ],
                vec![
                    5.into(),
                    Value::Null,
                    75.0.into(),
                    Date::new(2024, 5, 1).into(),
                ],
            ],
        )
        .unwrap();
        db
    }

    fn run(sql: &str) -> ResultSet {
        SqlEngine::new().run_sql(sql, &sales_db()).unwrap()
    }

    #[test]
    fn select_star() {
        let r = run("SELECT * FROM products");
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.columns, vec!["id", "name", "category", "price"]);
    }

    #[test]
    fn where_filtering() {
        let r = run("SELECT name FROM products WHERE price > 5");
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn count_star_and_count_column() {
        let r = run("SELECT COUNT(*) FROM sales");
        assert_eq!(r.rows[0][0], Value::Int(5));
        // COUNT(col) skips NULLs
        let r = run("SELECT COUNT(product_id) FROM sales");
        assert_eq!(r.rows[0][0], Value::Int(4));
    }

    #[test]
    fn group_by_with_aggregates() {
        let r = run("SELECT category, SUM(price) FROM products GROUP BY category");
        let rows = r.canonical_rows();
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&vec!["Tools".to_string(), "28.5".to_string()]));
        assert!(rows.contains(&vec!["Toys".to_string(), "4.25".to_string()]));
    }

    #[test]
    fn having_filters_groups() {
        let r = run("SELECT category FROM products GROUP BY category HAVING COUNT(*) > 1");
        assert_eq!(r.rows, vec![vec![Value::from("Tools")]]);
    }

    #[test]
    fn join_on_fk() {
        let r = run(
            "SELECT products.name, sales.amount FROM sales JOIN products \
             ON sales.product_id = products.id",
        );
        assert_eq!(r.rows.len(), 4, "NULL product_id must not join");
    }

    #[test]
    fn join_grouped_revenue_by_category() {
        let r = run(
            "SELECT products.category, SUM(sales.amount) FROM sales JOIN products \
             ON sales.product_id = products.id GROUP BY products.category \
             ORDER BY SUM(sales.amount) DESC",
        );
        assert_eq!(
            r.canonical_rows(),
            vec![
                vec!["Tools".to_string(), "450".to_string()],
                vec!["Toys".to_string(), "50".to_string()],
            ]
        );
        assert!(r.ordered);
        assert_eq!(r.rows[0][0], Value::from("Tools"));
    }

    #[test]
    fn comma_from_with_where_equijoin_matches_explicit_join() {
        let a =
            run("SELECT products.name FROM sales JOIN products ON sales.product_id = products.id");
        let b =
            run("SELECT products.name FROM sales, products WHERE sales.product_id = products.id");
        assert!(a.same_result(&b));
    }

    #[test]
    fn order_by_and_limit() {
        let r = run("SELECT name FROM products ORDER BY price DESC LIMIT 2");
        assert_eq!(
            r.rows,
            vec![vec![Value::from("Gadget")], vec![Value::from("Widget")]]
        );
    }

    #[test]
    fn distinct() {
        let r = run("SELECT DISTINCT category FROM products");
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn like_patterns() {
        let r = run("SELECT name FROM products WHERE name LIKE '%get%'");
        assert_eq!(r.rows.len(), 2); // Widget, Gadget
        let r = run("SELECT name FROM products WHERE name LIKE '_adget'");
        assert_eq!(r.rows, vec![vec![Value::from("Gadget")]]);
        let r = run("SELECT name FROM products WHERE name NOT LIKE '%e%'");
        assert_eq!(r.rows.len(), 0);
    }

    #[test]
    fn between_and_in_list() {
        let r = run("SELECT name FROM products WHERE price BETWEEN 5 AND 10");
        assert_eq!(r.rows, vec![vec![Value::from("Widget")]]);
        let r = run("SELECT name FROM products WHERE category IN ('Toys', 'Food')");
        assert_eq!(r.rows, vec![vec![Value::from("Doohickey")]]);
        let r = run("SELECT name FROM products WHERE category NOT IN ('Toys')");
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn in_subquery() {
        let r = run("SELECT name FROM products WHERE id IN \
             (SELECT product_id FROM sales WHERE amount > 120)");
        let names = r.canonical_rows();
        assert_eq!(
            names,
            vec![vec!["Gadget".to_string()], vec!["Widget".to_string()]]
        );
    }

    #[test]
    fn scalar_subquery() {
        let r = run("SELECT name FROM products WHERE price = (SELECT MAX(price) FROM products)");
        assert_eq!(r.rows, vec![vec![Value::from("Gadget")]]);
    }

    #[test]
    fn set_operations() {
        let db = sales_db();
        let e = SqlEngine::new();
        let union = e
            .run_sql(
                "SELECT category FROM products UNION SELECT name FROM products",
                &db,
            )
            .unwrap();
        assert_eq!(union.rows.len(), 5); // 2 categories + 3 names
        let intersect = e
            .run_sql(
                "SELECT id FROM products INTERSECT SELECT product_id FROM sales",
                &db,
            )
            .unwrap();
        assert_eq!(intersect.rows.len(), 3);
        let except = e
            .run_sql(
                "SELECT id FROM products EXCEPT SELECT product_id FROM sales WHERE amount > 120",
                &db,
            )
            .unwrap();
        assert_eq!(except.rows.len(), 1); // only product 3
    }

    #[test]
    fn null_semantics_in_where() {
        // NULL product_id row must not satisfy either branch.
        let pos = run("SELECT COUNT(*) FROM sales WHERE product_id = 1");
        let neg = run("SELECT COUNT(*) FROM sales WHERE product_id != 1");
        let total = run("SELECT COUNT(*) FROM sales");
        assert_eq!(pos.rows[0][0], Value::Int(2));
        assert_eq!(neg.rows[0][0], Value::Int(2));
        assert_eq!(total.rows[0][0], Value::Int(5));
        let isnull = run("SELECT COUNT(*) FROM sales WHERE product_id IS NULL");
        assert_eq!(isnull.rows[0][0], Value::Int(1));
    }

    #[test]
    fn avg_and_min_max() {
        let r = run("SELECT AVG(price), MIN(price), MAX(price) FROM products");
        assert_eq!(r.rows[0][1], Value::Float(4.25));
        assert_eq!(r.rows[0][2], Value::Float(19.0));
        match &r.rows[0][0] {
            Value::Float(f) => assert!((f - 10.916_666_666_666_666).abs() < 1e-9),
            other => panic!("avg not float: {other:?}"),
        }
    }

    #[test]
    fn aggregates_over_empty_input() {
        let r = run("SELECT COUNT(*), SUM(price), MAX(price) FROM products WHERE price > 100");
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert!(r.rows[0][1].is_null());
        assert!(r.rows[0][2].is_null());
    }

    #[test]
    fn empty_group_by_produces_no_rows() {
        let r = run("SELECT category, COUNT(*) FROM products WHERE price > 100 GROUP BY category");
        assert!(r.rows.is_empty());
    }

    #[test]
    fn arithmetic_in_projection() {
        let r = run("SELECT price * 2 FROM products WHERE id = 1");
        assert_eq!(r.rows[0][0], Value::Float(19.0));
        let r = run("SELECT id + 1 FROM products WHERE id = 1");
        assert_eq!(r.rows[0][0], Value::Int(2));
    }

    #[test]
    fn division_by_zero_is_null() {
        let r = run("SELECT price / 0 FROM products WHERE id = 1");
        assert!(r.rows[0][0].is_null());
    }

    #[test]
    fn date_comparison() {
        let r = run("SELECT COUNT(*) FROM sales WHERE sold_on >= '2024-04-01'");
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn execution_errors_surface() {
        let e = SqlEngine::new();
        let db = sales_db();
        assert!(e.run_sql("SELECT x FROM products", &db).is_err());
        assert!(e.run_sql("SELECT name FROM nope", &db).is_err());
        assert!(e.run_sql("SELECT SUM(name) FROM products", &db).is_err());
        assert!(e
            .run_sql("SELECT id FROM products WHERE name + 1 = 2", &db)
            .is_err());
        // ambiguous unqualified column across joined tables
        assert!(e
            .run_sql(
                "SELECT id FROM products JOIN sales ON sales.product_id = products.id",
                &db
            )
            .is_err());
    }

    #[test]
    fn result_set_comparison_semantics() {
        let a = ResultSet {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            ordered: false,
        };
        let b = ResultSet {
            columns: vec!["y".into()],
            rows: vec![vec![Value::Int(2)], vec![Value::Int(1)]],
            ordered: false,
        };
        assert!(a.same_result(&b), "unordered results compare as multisets");
        let c = ResultSet {
            ordered: true,
            ..b.clone()
        };
        assert!(!a.same_result(&c), "ordered comparison is positional");
        // the precomputed form must reach the same verdicts in both
        // directions and both orderedness regimes
        for (x, y) in [(&a, &b), (&b, &a), (&a, &c), (&c, &a), (&c, &c)] {
            assert_eq!(x.same_result(y), x.matches_canonical(&y.to_canonical()));
        }
    }

    #[test]
    fn count_distinct_execution() {
        let r = run("SELECT COUNT(DISTINCT category) FROM products");
        assert_eq!(r.rows[0][0], Value::Int(2));
    }

    #[test]
    fn union_arity_mismatch_errors() {
        let e = SqlEngine::new();
        let db = sales_db();
        assert!(e
            .run_sql(
                "SELECT id, name FROM products UNION SELECT id FROM products",
                &db
            )
            .is_err());
    }

    // ---- prepared-pipeline tests ------------------------------------------

    /// Operator-level check: a hand-built hash-join step (sales ⋈ products
    /// on product_id = id) joins exactly the matching rows and drops NULL
    /// keys on both sides.
    #[test]
    fn hash_join_operator_joins_matching_rows() {
        use crate::plan::{BuildSide, JoinKind, JoinStep, ScanNode};
        let p = SelectPlan {
            scans: vec![
                ScanNode {
                    table: 1,
                    table_name: "sales".into(),
                    offset: 0,
                    width: 4,
                    filter: None,
                    est_rows: None,
                },
                ScanNode {
                    table: 0,
                    table_name: "products".into(),
                    offset: 4,
                    width: 4,
                    filter: None,
                    est_rows: None,
                },
            ],
            exec_order: vec![0, 1],
            joins: vec![JoinStep {
                kind: JoinKind::Hash {
                    probe_off: 1,
                    build_col: 0,
                    build_side: BuildSide::New,
                },
                est_rows: None,
            }],
            residual: None,
            aggregate: false,
            group_by: Vec::new(),
            having: None,
            star: true,
            items: vec![PlanExpr::Star],
            columns: (0..8).map(|i| format!("c{i}")).collect(),
            joined_columns: (0..8).map(|i| format!("c{i}")).collect(),
            order_by: Vec::new(),
            distinct: false,
            limit: None,
        };
        let rs = exec_select_plan_profiled(&p, &sales_db(), None).unwrap();
        assert_eq!(
            rs.rows.len(),
            4,
            "4 sales match a product; the NULL key joins nothing"
        );
        for row in &rs.rows {
            assert_eq!(row.len(), 8);
            assert_eq!(
                row[1].canonical(),
                row[4].canonical(),
                "every joined row must satisfy the equi-join key"
            );
        }
    }

    /// The acceptance property of the plan cache: one parse + one plan per
    /// (query text, schema fingerprint), however many databases the
    /// statement runs against.
    #[test]
    fn prepared_cache_parses_once_per_query_and_schema() {
        let engine = SqlEngine::new();
        let db = sales_db();
        let sql = "SELECT name FROM products WHERE price > 5";
        let baseline = run(sql);
        for _ in 0..32 {
            let r = engine.run_sql(sql, &db).unwrap();
            assert!(r.same_result(&baseline));
        }
        assert_eq!(
            engine.parse_count(),
            1,
            "32 executions must share one parse"
        );
        let s = engine.cache_stats();
        assert_eq!((s.misses, s.hits), (1, 31));

        // A structurally different schema is a different cache key: the
        // same text re-parses exactly once more.
        let mut wide_schema = db.schema.clone();
        wide_schema.tables[1]
            .columns
            .push(Column::new("channel", DataType::Text));
        let mut wide_db = Database::empty(wide_schema);
        wide_db.insert_all("products", db.rows(0).to_vec()).unwrap();
        engine.run_sql(sql, &wide_db).unwrap();
        assert_eq!(
            engine.parse_count(),
            2,
            "schema change must invalidate by key miss"
        );
    }

    #[test]
    fn prepare_surfaces_binding_errors_before_execution() {
        let engine = SqlEngine::new();
        let schema = sales_db().schema;
        assert!(engine
            .prepare("SELECT nope FROM products", &schema)
            .is_err());
        assert!(engine.prepare("SELECT name FROM nowhere", &schema).is_err());
        // errors are not cached: both attempts parse
        assert_eq!(engine.parse_count(), 2);
    }

    #[test]
    fn prepared_statement_rejects_mismatched_schema() {
        let engine = SqlEngine::new();
        let db = sales_db();
        let prepared = engine
            .prepare("SELECT name FROM products", &db.schema)
            .unwrap();
        assert_eq!(prepared.columns(), ["name"]);

        let other = Database::empty(Schema::new(
            "other",
            vec![Table::new(
                "products",
                vec![Column::new("name", DataType::Text)],
            )],
        ));
        let err = prepared.execute(&other).unwrap_err();
        assert!(matches!(err, NliError::Execution(_)));
        // via the trait, against the right database, it runs fine
        let rs = PrepareEngine::execute_prepared(&engine, &prepared, &db).unwrap();
        assert_eq!(rs.rows.len(), 3);
    }

    // ---- set-operation edge cases -----------------------------------------

    #[test]
    fn set_op_arity_check_skips_empty_sides() {
        let e = SqlEngine::new();
        let db = sales_db();
        // Left side is empty: the lenient runtime check must not fire even
        // though the arities (2 vs 1) disagree.
        let r = e
            .run_sql(
                "SELECT id, name FROM products WHERE price > 100 UNION SELECT id FROM products",
                &db,
            )
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        // Same mismatch with the right side empty.
        let r = e
            .run_sql(
                "SELECT id, name FROM products UNION SELECT id FROM products WHERE price > 100",
                &db,
            )
            .unwrap();
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn set_ops_reset_the_ordered_flag() {
        let r = run("SELECT id FROM products ORDER BY id UNION SELECT id FROM products");
        assert!(
            !r.ordered,
            "set ops discard ordering even with an inner ORDER BY"
        );
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn set_ops_eliminate_duplicates() {
        // UNION dedups across sides...
        let r = run("SELECT category FROM products UNION SELECT category FROM products");
        assert_eq!(r.rows.len(), 2);
        // ...INTERSECT and EXCEPT dedup within the left side.
        let r = run("SELECT category FROM products INTERSECT SELECT category FROM products");
        assert_eq!(r.rows.len(), 2, "duplicate 'Tools' rows must collapse");
        let r = run("SELECT category FROM products EXCEPT SELECT name FROM products");
        assert_eq!(r.rows.len(), 2);
    }
}
