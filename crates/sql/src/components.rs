//! Spider-style component decomposition for exact-set-match evaluation.
//!
//! Exact set match (Yu et al., 2018) decomposes a query into clause-level
//! components and compares each as a *set*, so inessential ordering
//! (`SELECT a, b` vs `SELECT b, a`; conjunct order in WHERE) doesn't count
//! as an error, while any missing/extra condition still does.

use crate::ast::{BinOp, Expr, Query};
use std::collections::BTreeSet;

/// The decomposed clause sets of one query (plus, recursively, any compound
/// right-hand side). All strings use the canonical AST spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryComponents {
    pub distinct: bool,
    pub select: BTreeSet<String>,
    pub from: BTreeSet<String>,
    /// Join conditions with the two sides sorted, so `a = b` matches
    /// `b = a`.
    pub joins: BTreeSet<String>,
    /// Top-level WHERE conjuncts (AND-separated). OR-groups stay single
    /// strings with their disjuncts sorted.
    pub where_conjuncts: BTreeSet<String>,
    pub group_by: BTreeSet<String>,
    pub having: BTreeSet<String>,
    /// ORDER BY is order-sensitive.
    pub order_by: Vec<String>,
    pub limit: Option<u64>,
    pub set_op: Option<String>,
    pub compound: Option<Box<QueryComponents>>,
}

/// Decompose a query into its clause components.
pub fn decompose(q: &Query) -> QueryComponents {
    let s = &q.select;
    let select = s.items.iter().map(|i| i.expr.to_string()).collect();
    let from = s.from.iter().map(|t| t.name.clone()).collect();
    let joins = s
        .joins
        .iter()
        .map(|j| {
            let mut sides = [j.left.to_string(), j.right.to_string()];
            sides.sort();
            format!("{} = {}", sides[0], sides[1])
        })
        .collect();
    let where_conjuncts = s.where_clause.as_ref().map(conjuncts).unwrap_or_default();
    let group_by = s.group_by.iter().map(|g| g.to_string()).collect();
    let having = s.having.as_ref().map(conjuncts).unwrap_or_default();
    let order_by = s.order_by.iter().map(|o| o.to_string()).collect();
    let (set_op, compound) = match &q.compound {
        Some((op, rhs)) => (Some(op.name().to_string()), Some(Box::new(decompose(rhs)))),
        None => (None, None),
    };
    QueryComponents {
        distinct: s.distinct,
        select,
        from,
        joins,
        where_conjuncts,
        group_by,
        having,
        order_by,
        limit: s.limit,
        set_op,
        compound,
    }
}

/// Split an expression into its top-level AND conjuncts; each OR-group is
/// rendered with sorted disjuncts.
fn conjuncts(e: &Expr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_conjuncts(e, &mut out);
    out
}

fn collect_conjuncts(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Binary {
            left,
            op: BinOp::And,
            right,
        } => {
            collect_conjuncts(left, out);
            collect_conjuncts(right, out);
        }
        Expr::Binary {
            left,
            op: BinOp::Or,
            right,
        } => {
            let mut disjuncts = BTreeSet::new();
            collect_disjuncts(left, &mut disjuncts);
            collect_disjuncts(right, &mut disjuncts);
            out.insert(disjuncts.into_iter().collect::<Vec<_>>().join(" OR "));
        }
        other => {
            out.insert(other.to_string());
        }
    }
}

fn collect_disjuncts(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Binary {
            left,
            op: BinOp::Or,
            right,
        } => {
            collect_disjuncts(left, out);
            collect_disjuncts(right, out);
        }
        other => {
            out.insert(other.to_string());
        }
    }
}

impl QueryComponents {
    /// Exact set match: every component equal (sets as sets, ORDER BY as a
    /// sequence).
    pub fn matches(&self, other: &QueryComponents) -> bool {
        self == other
    }

    /// Partial credit: `(matched component slots, total component slots)`
    /// across both queries' union of non-empty components. Used for
    /// component-match F1 reporting.
    pub fn overlap(&self, other: &QueryComponents) -> (usize, usize) {
        let mut matched = 0;
        let mut total = 0;
        let mut cmp_set = |a: &BTreeSet<String>, b: &BTreeSet<String>| {
            if a.is_empty() && b.is_empty() {
                return;
            }
            total += 1;
            if a == b {
                matched += 1;
            }
        };
        cmp_set(&self.select, &other.select);
        cmp_set(&self.from, &other.from);
        cmp_set(&self.joins, &other.joins);
        cmp_set(&self.where_conjuncts, &other.where_conjuncts);
        cmp_set(&self.group_by, &other.group_by);
        cmp_set(&self.having, &other.having);
        if !(self.order_by.is_empty() && other.order_by.is_empty()) {
            total += 1;
            if self.order_by == other.order_by {
                matched += 1;
            }
        }
        if self.limit.is_some() || other.limit.is_some() {
            total += 1;
            if self.limit == other.limit {
                matched += 1;
            }
        }
        if self.distinct || other.distinct {
            total += 1;
            if self.distinct == other.distinct {
                matched += 1;
            }
        }
        match (&self.compound, &other.compound) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                total += 1;
                if self.set_op == other.set_op {
                    matched += 1;
                }
                let (m, t) = a.overlap(b);
                matched += m;
                total += t;
            }
            _ => {
                total += 1; // set-op presence mismatch
            }
        }
        (matched, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn comps(sql: &str) -> QueryComponents {
        decompose(&parse_query(sql).unwrap())
    }

    #[test]
    fn select_order_is_irrelevant() {
        let a = comps("SELECT a, b FROM t");
        let b = comps("SELECT b, a FROM t");
        assert!(a.matches(&b));
    }

    #[test]
    fn conjunct_order_is_irrelevant() {
        let a = comps("SELECT a FROM t WHERE x = 1 AND y = 2");
        let b = comps("SELECT a FROM t WHERE y = 2 AND x = 1");
        assert!(a.matches(&b));
    }

    #[test]
    fn join_sides_are_symmetric() {
        let a = comps("SELECT a FROM t JOIN u ON t.id = u.t_id");
        let b = comps("SELECT a FROM t JOIN u ON u.t_id = t.id");
        assert!(a.matches(&b));
    }

    #[test]
    fn or_groups_sorted_but_not_flattened_into_conjuncts() {
        let a = comps("SELECT a FROM t WHERE x = 1 OR y = 2");
        let b = comps("SELECT a FROM t WHERE y = 2 OR x = 1");
        let c = comps("SELECT a FROM t WHERE x = 1 AND y = 2");
        assert!(a.matches(&b));
        assert!(!a.matches(&c));
    }

    #[test]
    fn missing_condition_fails_match() {
        let a = comps("SELECT a FROM t WHERE x = 1 AND y = 2");
        let b = comps("SELECT a FROM t WHERE x = 1");
        assert!(!a.matches(&b));
        let (m, t) = a.overlap(&b);
        assert!(m < t);
        assert!(m >= 2); // select and from still match
    }

    #[test]
    fn order_by_is_order_sensitive() {
        let a = comps("SELECT a FROM t ORDER BY x ASC, y DESC");
        let b = comps("SELECT a FROM t ORDER BY y DESC, x ASC");
        assert!(!a.matches(&b));
    }

    #[test]
    fn limit_and_distinct_count_as_components() {
        let a = comps("SELECT DISTINCT a FROM t LIMIT 5");
        let b = comps("SELECT a FROM t LIMIT 5");
        assert!(!a.matches(&b));
        let (m, t) = a.overlap(&b);
        assert_eq!(t, 4); // select, from, limit, distinct
        assert_eq!(m, 3);
    }

    #[test]
    fn compound_queries_compare_recursively() {
        let a = comps("SELECT a FROM t UNION SELECT a FROM u");
        let b = comps("SELECT a FROM t UNION SELECT a FROM u");
        let c = comps("SELECT a FROM t EXCEPT SELECT a FROM u");
        assert!(a.matches(&b));
        assert!(!a.matches(&c));
        let (m, t) = a.overlap(&c);
        assert!(m < t);
    }

    #[test]
    fn overlap_of_identical_queries_is_total() {
        let a = comps("SELECT a FROM t WHERE x = 1 GROUP BY a HAVING COUNT(*) > 1");
        let (m, t) = a.overlap(&a);
        assert_eq!(m, t);
        assert!(t >= 5);
    }
}
